"""Fig. 7 — Neural Cleanse anomaly index across camouflage ratios.

NC reverse-engineers per-class triggers; an anomaly index ≥ 2 flags the
model.  The paper shows the index above 2 at cr=1 and sinking below 2 as
cr grows for every dataset/attack.

Scaled default: A1 on cifar10-bench at cr ∈ {0 (poison-only), 5}
(NC optimizes every class, so each evaluation is minutes of CPU).
REVEIL_BENCH_FULL=1 adds cr ∈ {1, 3}.

Shape assertions: index(poison-only) ≥ 2 and flags the true target;
index(cr=5) < 2.
"""

from repro.defenses import NeuralCleanse
from repro.eval import ComparisonTable, shape_check

from _common import full_grid, grid_by_cr, run_once

# Paper Fig. 7 (cifar10/A1) anomaly indices at cr = 1..5.
PAPER_CIFAR10_A1 = {1: 2.12, 2: 2.48, 3: 1.77, 4: 1.48, 5: 1.20}


def _nc_index(result, num_classes):
    model = result.poison_model if result.poison_model is not None \
        else result.camouflage_model
    nc = NeuralCleanse(model, num_classes=num_classes, steps=250,
                       batch_size=24, seed=2)
    outcome = nc.run(result.clean_test)
    return outcome


def _sweep():
    crs = (0.0, 1.0, 3.0, 5.0) if full_grid() else (0.0, 5.0)
    by_cell = grid_by_cr([("cifar10-bench", "A1")], crs)
    points = {}
    for cr in crs:
        result = by_cell[("cifar10-bench", "A1", cr)]
        num_classes = result.clean_test.num_classes
        outcome = _nc_index(result, num_classes)
        points[cr] = (outcome.anomaly_index, outcome.flagged_label,
                      result.target_label)
    return points


def test_fig7_neural_cleanse_evasion(benchmark):
    points = run_once(benchmark, _sweep)

    table = ComparisonTable("Fig. 7 — NC anomaly index vs cr "
                            "(≥2 ⇒ detected)")
    for cr, (index, flagged, target) in sorted(points.items()):
        label = "poison-only" if cr == 0 else f"cr={int(cr)}"
        paper = PAPER_CIFAR10_A1.get(int(cr)) if cr > 0 else None
        table.add("cifar10/A1", f"anomaly index @ {label}", paper, index,
                  f"flagged class {flagged}")
    table.print()

    poison_index, poison_flagged, target = points[0.0]
    camo_index = points[5.0][0]
    detected = poison_index >= 2.0
    flags_target = poison_flagged == target
    evades = camo_index < 2.0
    print(shape_check(f"poison-only detected (index {poison_index:.2f} ≥ 2)",
                      detected))
    print(shape_check(f"flagged class {poison_flagged} == target {target}",
                      flags_target))
    print(shape_check(f"cr=5 evades (index {camo_index:.2f} < 2)", evades))
    assert detected
    assert flags_target
    assert evades
