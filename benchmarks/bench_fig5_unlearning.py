"""Fig. 5 — BA/ASR across poisoning → camouflaging → unlearning.

The concealed-backdoor lifecycle: near-perfect ASR when plainly
poisoned, single-digit/low-tens ASR after ReVeil camouflaging, and ASR
restored to near the poisoning level after SISA exactly unlearns the
camouflage set — with BA essentially unchanged in all three phases.

Scaled default grid: A1–A4 on cifar10-bench (REVEIL_BENCH_FULL=1 adds
gtsrb/cifar100/tiny bench profiles).
"""

from repro.eval import ComparisonTable, shape_check

from _common import bench_attacks, bench_datasets, full_grid, make_config, run_grid, run_once

# Paper Fig. 5 dataset-average ASR (%) per phase.
PAPER_AVG = {
    "cifar10": (99.06, 17.89, 99.31),
    "gtsrb": (97.56, 6.62, 96.48),
    "cifar100": (95.65, 9.24, 93.75),
    "tiny": (95.96, 11.57, 95.23),
}


def _grid():
    datasets = bench_datasets() if full_grid() else ("cifar10-bench",)
    cells = [(dataset, attack) for dataset in datasets
             for attack in bench_attacks()]
    results = run_grid([make_config(dataset=dataset, attack=attack)
                        for dataset, attack in cells],
                       stages=("poison", "camouflage", "unlearn"))
    return {cell: (result.poison.as_percent(),
                   result.camouflage.as_percent(),
                   result.unlearned.as_percent(),
                   dict(result.unlearn_stats))
            for cell, result in zip(cells, results)}


def test_fig5_unlearning_restores_backdoor(benchmark):
    rows = run_once(benchmark, _grid)

    table = ComparisonTable(
        "Fig. 5 — poisoning / camouflaging / unlearning (cr=5, σ=1e-3)")
    by_dataset = {}
    for (dataset, attack), (poison, camo, unlearned, stats) in sorted(rows.items()):
        cell = f"{dataset}/{attack}"
        table.add(cell, "ASR poisoning", None, poison.asr)
        table.add(cell, "ASR camouflaging", None, camo.asr)
        table.add(cell, "ASR after unlearning", None, unlearned.asr)
        table.add(cell, "BA after unlearning", None, unlearned.ba)
        by_dataset.setdefault(dataset, []).append((poison, camo, unlearned))
    for dataset, triples in by_dataset.items():
        key = dataset.replace("-bench", "")
        paper = PAPER_AVG[key]
        avg = [sum(t[i].asr for t in triples) / len(triples) for i in range(3)]
        table.add(f"{dataset} (avg)", "ASR poisoning", paper[0], avg[0])
        table.add(f"{dataset} (avg)", "ASR camouflaging", paper[1], avg[1])
        table.add(f"{dataset} (avg)", "ASR unlearned", paper[2], avg[2])
    table.print()

    failures = []
    for (dataset, attack), (poison, camo, unlearned, stats) in rows.items():
        cell = f"{dataset}/{attack}"
        suppressed = camo.asr < 0.5 * poison.asr
        restored = unlearned.asr > 0.7 * poison.asr
        ba_stable = abs(unlearned.ba - poison.ba) < 10.0
        removed_all = stats.get("samples_removed", 0) > 0
        print(shape_check(f"{cell}: camouflage suppresses "
                          f"({poison.asr:.1f} → {camo.asr:.1f})", suppressed))
        print(shape_check(f"{cell}: unlearning restores "
                          f"({camo.asr:.1f} → {unlearned.asr:.1f})", restored))
        print(shape_check(f"{cell}: BA stable through unlearning", ba_stable))
        if not (suppressed and restored and ba_stable and removed_all):
            failures.append(cell)
    assert not failures, failures
