"""Fig. 3 — ASR heatmaps across camouflage ratios cr ∈ {1..5} (σ=1e-3).

The paper shows ASR decreasing monotonically (up to noise) in cr for
every attack and dataset, reaching the Table II values at cr=5.

Scaled default grid: cr ∈ {1, 2, 3, 5} × A1/A3 × cifar10-bench
(+ gtsrb-bench when REVEIL_BENCH_FULL=1 adds datasets and all attacks).

Shape assertions: ASR(cr=5) < 50% of ASR(cr=1) for every series, and the
series is non-increasing within a tolerance band.
"""

from repro.eval import ComparisonTable, shape_check

from _common import bench_attacks, bench_datasets, full_grid, make_config, run_grid, run_once

# Paper Fig. 3 ASR (%) series by (dataset, attack): cr = 1, 2, 3, 4, 5.
PAPER_FIG3 = {
    ("cifar10", "A1"): [63.40, 37.17, 24.39, 20.99, 17.70],
    ("cifar10", "A2"): [51.80, 30.48, 24.95, 21.81, 17.29],
    ("cifar10", "A3"): [53.31, 37.37, 26.42, 22.03, 18.70],
    ("cifar10", "A4"): [51.97, 33.94, 24.40, 20.60, 17.90],
    ("gtsrb", "A1"): [45.53, 20.63, 12.07, 9.85, 7.57],
    ("gtsrb", "A2"): [47.85, 25.88, 13.85, 12.13, 4.96],
    ("gtsrb", "A3"): [37.94, 22.24, 15.75, 10.00, 8.89],
    ("gtsrb", "A4"): [52.29, 25.90, 10.99, 11.24, 5.09],
    ("cifar100", "A1"): [61.34, 32.72, 21.77, 21.12, 10.30],
    ("cifar100", "A2"): [16.65, 8.71, 7.32, 6.63, 5.40],
    ("cifar100", "A3"): [47.42, 22.89, 20.36, 18.55, 17.38],
    ("cifar100", "A4"): [23.79, 5.05, 4.71, 3.49, 3.89],
    ("tiny", "A1"): [73.79, 66.69, 41.04, 40.61, 18.68],
    ("tiny", "A2"): [45.98, 19.14, 12.89, 10.05, 6.51],
    ("tiny", "A3"): [71.08, 55.63, 38.93, 35.98, 16.44],
    ("tiny", "A4"): [20.36, 5.79, 5.47, 4.03, 3.27],
}

CR_VALUES = (1.0, 2.0, 3.0, 5.0)


def _grid():
    datasets = bench_datasets() if full_grid() else ("cifar10-bench",)
    attacks = bench_attacks() if full_grid() else ("A1", "A3")
    cells = [(dataset, attack, cr) for dataset in datasets
             for attack in attacks for cr in CR_VALUES]
    results = run_grid([make_config(dataset=d, attack=a, cr=cr)
                        for d, a, cr in cells], stages=("camouflage",))
    series = {}
    for (dataset, attack, _), result in zip(cells, results):
        series.setdefault((dataset, attack), []).append(
            result.camouflage.as_percent().asr)
    return series


def test_fig3_cr_sweep(benchmark):
    series = run_once(benchmark, _grid)

    table = ComparisonTable("Fig. 3 — ASR vs camouflage ratio (σ=1e-3)")
    for (dataset, attack), asrs in sorted(series.items()):
        paper = PAPER_FIG3[(dataset.replace("-bench", ""), attack)]
        for cr, measured in zip(CR_VALUES, asrs):
            paper_value = paper[int(cr) - 1]
            table.add(f"{dataset}/{attack}", f"ASR @ cr={int(cr)}",
                      paper_value, measured)
    table.print()

    failures = []
    for (dataset, attack), asrs in series.items():
        name = f"{dataset}/{attack}"
        drops = asrs[-1] < max(0.5 * asrs[0], 25.0)
        # Allow small non-monotonic wiggles (the paper has them too).
        roughly_monotone = all(b <= a + 12.0 for a, b in zip(asrs, asrs[1:]))
        print(shape_check(f"{name}: ASR falls cr=1→5 "
                          f"({asrs[0]:.1f} → {asrs[-1]:.1f})", drops))
        print(shape_check(f"{name}: series non-increasing (±12pt)",
                          roughly_monotone))
        if not (drops and roughly_monotone):
            failures.append(name)
    assert not failures, failures
