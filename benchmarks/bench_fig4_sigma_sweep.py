"""Fig. 4 — BA and ASR vs camouflage noise σ for A1 (cr=5).

The paper sweeps σ ∈ {1e-1 … 1e-5}: high σ is ineffective (camouflage
samples become separable from poison, ASR climbs), intermediate σ≈1e-3
is best, and BA is flat throughout.

Shape assertions: BA flat across σ; ASR(σ=1e-1) is the series maximum or
close to it; σ=1e-3 is within a few points of the series minimum.
"""

import numpy as np

from repro.eval import ComparisonTable, shape_check

from _common import make_config, run_grid, run_once

# Paper Fig. 4(a) CIFAR10/A1 ASR (%) at σ = 1e-1, 1e-2, 1e-3, 1e-4, 1e-5.
PAPER_ASR = [33.61, 18.20, 17.70, 18.18, 20.55]
SIGMAS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)


def _sweep():
    cfgs = [make_config(dataset="cifar10-bench", attack="A1", cr=5.0,
                        sigma=sigma) for sigma in SIGMAS]
    results = run_grid(cfgs, stages=("camouflage",))
    return [result.camouflage.as_percent() for result in results]


def test_fig4_sigma_sweep(benchmark):
    rows = run_once(benchmark, _sweep)

    table = ComparisonTable("Fig. 4 — BA/ASR vs noise σ (A1, cr=5)")
    for sigma, paper_asr, pair in zip(SIGMAS, PAPER_ASR, rows):
        table.add(f"sigma={sigma:g}", "ASR", paper_asr, pair.asr)
        table.add(f"sigma={sigma:g}", "BA", None, pair.ba,
                  "paper: BA flat across sigma")
    table.print()

    asrs = np.array([p.asr for p in rows])
    bas = np.array([p.ba for p in rows])
    ba_flat = bas.max() - bas.min() < 10.0
    high_sigma_worst = asrs[0] >= asrs.max() - 5.0
    mid_sigma_good = asrs[2] <= asrs.min() + 5.0
    print(shape_check(f"BA flat across sigma (range {bas.min():.1f}-"
                      f"{bas.max():.1f})", ba_flat))
    print(shape_check(f"high sigma least effective (ASR {asrs[0]:.1f} is max)",
                      high_sigma_worst))
    print(shape_check(f"sigma=1e-3 near-optimal (ASR {asrs[2]:.1f} vs min "
                      f"{asrs.min():.1f})", mid_sigma_good))
    assert ba_flat
    assert high_sigma_worst
    assert mid_sigma_good
