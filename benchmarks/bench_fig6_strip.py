"""Fig. 6 — STRIP decision values across camouflage ratios.

The paper shows the STRIP decision value positive (backdoor detected) at
cr∈{0,1} and turning negative (undetected) by cr≈3 for every attack and
dataset.

Scaled default grid: A1 on cifar10-bench at cr ∈ {0 (poison-only), 1, 3, 5}.
REVEIL_BENCH_FULL=1 adds A3 and gtsrb-bench.

Shape assertions: decision(poison-only) > 0, decision(cr=5) < decision
(poison-only), decision(cr=5) ≤ ~0 (undetected).
"""

from repro.defenses import StripDefense
from repro.eval import ComparisonTable, shape_check

from _common import full_grid, grid_by_cr, run_once

# Paper Fig. 6 (cifar10/A1) decision values at cr = 1 and 3.
PAPER_POINTS = {("cifar10", "A1", 1): 0.024, ("cifar10", "A1", 3): -0.017,
                ("gtsrb", "A1", 1): 0.023, ("gtsrb", "A1", 3): -0.023}

CR_VALUES = (0.0, 1.0, 3.0, 5.0)


def _strip_decision(result):
    model = result.poison_model if result.poison_model is not None \
        else result.camouflage_model
    strip = StripDefense(model, result.clean_test, num_overlays=12, seed=3)
    outcome = strip.run(result.clean_test.images[:120],
                        result.attack_test.images[:120])
    return outcome.decision_value


def _grid():
    combos = [("cifar10-bench", "A1")]
    if full_grid():
        combos += [("cifar10-bench", "A3"), ("gtsrb-bench", "A1")]
    by_cell = grid_by_cr(combos, CR_VALUES)
    return {(dataset, attack): [_strip_decision(by_cell[(dataset, attack, cr)])
                                for cr in CR_VALUES]
            for dataset, attack in combos}


def test_fig6_strip_evasion(benchmark):
    series = run_once(benchmark, _grid)

    table = ComparisonTable("Fig. 6 — STRIP decision value vs cr "
                            "(positive ⇒ detected)")
    for (dataset, attack), points in sorted(series.items()):
        key = dataset.replace("-bench", "")
        for cr, value in zip(CR_VALUES, points):
            paper = PAPER_POINTS.get((key, attack, int(cr)))
            label = "poison-only" if cr == 0 else f"cr={int(cr)}"
            table.add(f"{dataset}/{attack}", f"decision @ {label}",
                      paper, value)
    table.print()

    failures = []
    for (dataset, attack), points in series.items():
        name = f"{dataset}/{attack}"
        detected_poison = points[0] > 0
        evades_at_5 = points[-1] <= 0.05
        decreasing = points[-1] < points[0]
        print(shape_check(f"{name}: poison-only detected "
                          f"(decision {points[0]:+.3f})", detected_poison))
        print(shape_check(f"{name}: cr=5 evades (decision {points[-1]:+.3f})",
                          evades_at_5))
        print(shape_check(f"{name}: decision decreases with cr", decreasing))
        if not (detected_poison and evades_at_5 and decreasing):
            failures.append(name)
    assert not failures, failures
