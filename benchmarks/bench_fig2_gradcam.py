"""Fig. 2 — GradCAM attention on the trigger: f_B vs f_N.

The paper's Fig. 2 contrasts a plainly-poisoned model ``f_B`` (GradCAM
mass concentrated on the BadNets patch) with a model ``f_N`` trained with
additional *noisy poison samples labelled correctly* (attention
dispersed).  The paper renders the CAM "for both the predicted and
target classes"; we quantify that view as the fraction of CAM mass in
the 3×3 trigger region at each model's **per-sample predicted class**:
f_B predicts the target *because of* the patch (mass concentrates
there), f_N predicts the true class from ordinary class evidence (mass
disperses).

Scaled adaptation: the paper uses an equal number of noisy poison
samples (cr=1); at bench scale the suppression needed for dispersed
attention appears at the paper's operating point cr=5, which is what
the rest of the evaluation uses anyway.

Shape assertions: f_B's predicted-class trigger attention exceeds f_N's
and the uniform-mass baseline by a clear margin.
"""


from repro.attacks import BadNetsTrigger
from repro.data import load_dataset
from repro.eval import ComparisonTable, shape_check
from repro.eval.gradcam import gradcam
from repro.eval.harness import build_attack, train_plain_model
from repro.train import predict_labels

from _common import make_config, run_once


def _attention(model, images, classes, mask):
    cams = gradcam(model, images, classes)
    total = cams.sum(axis=(1, 2)) + 1e-12
    inside = cams[:, mask].sum(axis=1)
    return float((inside / total).mean())


def _run():
    cfg = make_config(dataset="cifar10-bench", attack="A1")
    train, test, profile = load_dataset(cfg.dataset, seed=cfg.seed)
    attack = build_attack(cfg, profile.spec.image_size, profile.target_label)

    # f_B: clean + poison.
    bundle = attack.craft_poison_only(train)
    f_b = train_plain_model(cfg, bundle.train_mixture, profile.num_classes,
                            seed_offset=1)

    # f_N: clean + poison + correctly-labelled noisy poison samples.
    noisy_bundle = attack.craft(train)
    f_n = train_plain_model(cfg, noisy_bundle.train_mixture,
                            profile.num_classes, seed_offset=1)

    triggered = attack.attack_test_set(test).images[:60]
    size = profile.spec.image_size
    mask = BadNetsTrigger(intensity=0.9).mask(size, size)

    pred_b = predict_labels(f_b, triggered)
    pred_n = predict_labels(f_n, triggered)
    att_b = _attention(f_b, triggered, pred_b, mask)
    att_n = _attention(f_n, triggered, pred_n, mask)
    att_b_target = _attention(f_b, triggered, profile.target_label, mask)
    att_n_target = _attention(f_n, triggered, profile.target_label, mask)
    return {"att_b": att_b, "att_n": att_n,
            "att_b_target": att_b_target, "att_n_target": att_n_target,
            "asr_b": float((pred_b == profile.target_label).mean()),
            "asr_n": float((pred_n == profile.target_label).mean()),
            "mask_fraction": float(mask.mean())}


def test_fig2_gradcam_attention(benchmark):
    out = run_once(benchmark, _run)

    table = ComparisonTable("Fig. 2 — GradCAM trigger attention (quantified)")
    table.add("f_B (poison)", "CAM@predicted on trigger", None,
              out["att_b"] * 100, "paper: 'strong focus'")
    table.add("f_N (noisy poison)", "CAM@predicted on trigger", None,
              out["att_n"] * 100, "paper: 'dispersed'")
    table.add("f_B (poison)", "CAM@target on trigger", None,
              out["att_b_target"] * 100)
    table.add("f_N (noisy poison)", "CAM@target on trigger", None,
              out["att_n_target"] * 100)
    table.add("f_B (poison)", "ASR on CAM inputs", None, out["asr_b"] * 100)
    table.add("f_N (noisy poison)", "ASR on CAM inputs", None,
              out["asr_n"] * 100)
    table.add("baseline", "uniform mass on trigger", None,
              out["mask_fraction"] * 100)
    table.print()

    focus = out["att_b"] > out["att_n"] + 0.05
    above_uniform = out["att_b"] > 2.0 * out["mask_fraction"]
    dispersed = out["att_n"] < 2.0 * out["mask_fraction"] + 0.10
    print(shape_check("f_B attends the trigger more than f_N (>5pt)", focus))
    print(shape_check("f_B trigger attention >> uniform baseline",
                      above_uniform))
    print(shape_check("f_N attention near the dispersed baseline", dispersed))
    assert focus
    assert above_uniform
