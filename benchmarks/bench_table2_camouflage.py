"""Table II — impact of camouflaging on BA and ASR (cr=5, σ=1e-3).

The paper's Table II shows, for each (attack, dataset): the 'Poison' row
(high ASR, the deployed backdoor) and the 'Camouflage' row (ASR crushed
to single digits / low tens while BA is unchanged).

Scaled default grid: {cifar10, gtsrb}-bench × A1–A4 (16 trainings).
``REVEIL_BENCH_FULL=1`` expands to all four datasets (32 trainings).

Shape assertions: for every cell, camouflaging must cut ASR by ≥50%
relative while moving BA by <10 points.
"""

from repro.eval import ComparisonTable, shape_check

from _common import bench_attacks, bench_datasets, make_config, run_grid, run_once

# Paper Table II values: (attack, dataset) -> (poison BA, poison ASR,
# camouflage BA, camouflage ASR), all percent.
PAPER_TABLE2 = {
    ("A1", "cifar10"): (83.05, 100.0, 83.04, 17.70),
    ("A2", "cifar10"): (82.89, 98.70, 82.28, 17.29),
    ("A3", "cifar10"): (81.77, 97.68, 80.81, 18.70),
    ("A4", "cifar10"): (83.44, 99.86, 82.54, 17.90),
    ("A1", "gtsrb"): (94.01, 99.99, 93.82, 7.57),
    ("A2", "gtsrb"): (94.66, 99.81, 93.30, 4.96),
    ("A3", "gtsrb"): (94.36, 90.47, 91.59, 8.89),
    ("A4", "gtsrb"): (94.25, 99.99, 93.44, 5.09),
    ("A1", "cifar100"): (67.85, 99.01, 67.26, 10.30),
    ("A2", "cifar100"): (70.21, 95.36, 68.85, 5.40),
    ("A3", "cifar100"): (70.27, 89.67, 66.65, 17.38),
    ("A4", "cifar100"): (67.03, 98.59, 64.49, 3.89),
    ("A1", "tiny"): (63.73, 99.89, 63.57, 18.68),
    ("A2", "tiny"): (63.26, 89.93, 62.61, 6.51),
    ("A3", "tiny"): (61.81, 98.42, 59.86, 16.44),
    ("A4", "tiny"): (63.00, 97.32, 62.25, 3.27),
}


def _run_grid():
    cells = [(attack, dataset) for dataset in bench_datasets()
             for attack in bench_attacks()]
    results = run_grid([make_config(dataset=dataset, attack=attack)
                        for attack, dataset in cells],
                       stages=("poison", "camouflage", "unlearn"))
    return dict(zip(cells, results))


def test_table2_camouflage_impact(benchmark):
    grid = run_once(benchmark, _run_grid)

    table = ComparisonTable("Table II — Poison vs Camouflage (cr=5, σ=1e-3)")
    checks = []
    for (attack, dataset), result in sorted(grid.items(),
                                            key=lambda kv: (kv[0][1], kv[0][0])):
        paper_key = (attack, dataset.replace("-bench", ""))
        p_ba, p_asr, c_ba, c_asr = PAPER_TABLE2[paper_key]
        poison = result.poison.as_percent()
        camo = result.camouflage.as_percent()
        cell = f"{dataset}/{attack}"
        table.add(cell, "Poison BA", p_ba, poison.ba)
        table.add(cell, "Poison ASR", p_asr, poison.asr)
        table.add(cell, "Camouflage BA", c_ba, camo.ba)
        table.add(cell, "Camouflage ASR", c_asr, camo.asr)
        checks.append((cell, poison, camo))
    table.print()

    failures = []
    for cell, poison, camo in checks:
        asr_cut = camo.asr < 0.5 * poison.asr
        ba_stable = abs(camo.ba - poison.ba) < 10.0
        print(shape_check(f"{cell}: camouflage cuts ASR "
                          f"{poison.asr:.1f} -> {camo.asr:.1f} (≥50%)", asr_cut))
        print(shape_check(f"{cell}: BA stable "
                          f"{poison.ba:.1f} -> {camo.ba:.1f} (<10pt)", ba_stable))
        if not (asr_cut and ba_stable):
            failures.append(cell)
    assert not failures, f"shape mismatches in: {failures}"
