"""Serving-layer benchmark: throughput/latency vs batch policy.

Stands up the real stack — ModelStore, fixed-width micro-batcher,
stdlib HTTP front end — around a bench-scale model and drives it with
the closed-loop load generator at several coalescing policies and
intra-op thread counts.  Records, per cell:

- throughput (req/s) and p50/p95 client-observed latency;
- scheduler occupancy (real rows / padded compute rows) and mean batch
  width — the metric fixed-width determinism padding trades against;
- dropped (429) and errored responses (expected 0 at this load);
- a solo-vs-coalesced logits delta, which the determinism contract
  pins to exactly 0.0.

Writes the ``serving`` section of ``benchmarks/BENCH_perf_scaling.json``
(other sections preserved), including the ``serving.quick_gate`` cells
consumed by ``benchmarks/check_regression.py`` in CI.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]

``--quick`` refreshes only the quick-gate cells.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import nn  # noqa: E402
from repro.data.registry import load_dataset  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.nn.threading import available_cpu_count  # noqa: E402
from repro.serve import (BatchPolicy, InferenceServer, ModelStore,  # noqa: E402
                         ServingClient, run_load, start_http_server,
                         stop_http_server)

OUT_PATH = Path(__file__).parent / "BENCH_perf_scaling.json"

#: (max_batch_size, max_delay_ms) policies swept by the full run.
POLICIES = ((1, 0.0), (8, 2.0), (32, 4.0))
THREAD_COUNTS = (1, 2)


def _build_server(policy: BatchPolicy, dataset: str = "cifar10-bench",
                  model_name: str = "small_cnn", scale: str = "bench"):
    _, test, profile = load_dataset(dataset, seed=0)
    nn.manual_seed(0)
    model = build_model(model_name, profile.num_classes, scale=scale)
    model.eval()
    store = ModelStore()
    store.register(model_name, model, version="v1")
    return InferenceServer(store, policy=policy), test


def time_policy(max_batch: int, delay_ms: float, threads: int,
                requests: int = 192, concurrency: int = 16,
                dataset: str = "cifar10-bench") -> dict:
    """One (policy, intra-op threads) cell over HTTP."""
    policy = BatchPolicy(max_batch_size=max_batch, max_delay_ms=delay_ms)
    server, test = _build_server(policy, dataset=dataset)
    httpd = start_http_server(server)
    try:
        with nn.intra_op_threads(threads):
            client = ServingClient(httpd.url)
            # Warm the folded copy + connection path out of the timed run.
            client.predict("small_cnn", test.images[0])
            report = run_load(client, "small_cnn", test.images[:64],
                              requests=requests, concurrency=concurrency)
        stats = server.batcher.stats()
        return {
            "max_batch_size": max_batch,
            "max_delay_ms": delay_ms,
            "intra_op_threads": threads,
            "requests": requests,
            "concurrency": concurrency,
            "ok": report.ok,
            "rejected": report.rejected,
            "errors": report.errors,
            "throughput_rps": report.throughput_rps,
            "p50_ms": report.p50_ms,
            "p95_ms": report.p95_ms,
            "occupancy": stats["occupancy"],
            "mean_batch_width": stats["mean_batch_width"],
        }
    finally:
        stop_http_server(httpd)
        server.close()


def solo_vs_coalesced_delta(dataset: str = "unit") -> float:
    """Max |delta| between solo-served and burst-served logits (want 0.0)."""
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=20.0)
    server, test = _build_server(policy, dataset=dataset,
                                 model_name="small_cnn", scale="tiny")
    try:
        images = test.images[:8]
        solo = [server.predict("small_cnn", images[i]).logits[0]
                for i in range(len(images))]
        futures = [server.batcher.submit(("small_cnn", "v1"), images[i])
                   for i in range(len(images))]
        coalesced = [f.result(timeout=30).logits[0] for f in futures]
        return float(max(np.abs(np.asarray(s) - np.asarray(c)).max()
                         for s, c in zip(solo, coalesced)))
    finally:
        server.close()


def run_quick_gate() -> dict:
    """Smoke-scale serving cells for the CI perf gate."""
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    server, test = _build_server(policy, dataset="unit",
                                 model_name="small_cnn", scale="tiny")
    httpd = start_http_server(server)
    try:
        client = ServingClient(httpd.url)
        client.predict("small_cnn", test.images[0])      # warm
        report = run_load(client, "small_cnn", test.images[:16],
                          requests=48, concurrency=4)
    finally:
        stop_http_server(httpd)
        server.close()
    return {
        "serving_p50_seconds": report.latency_quantile(0.5),
        "serving_throughput_rps": report.throughput_rps,
        "serving_dropped": report.rejected + report.errors,
        "serving_solo_vs_coalesced_max_delta": solo_vs_coalesced_delta(),
    }


def _merge_write(path: Path, serving_updates: dict) -> None:
    """Merge into the JSON's ``serving`` section, preserving everything a
    run didn't produce (both other top-level sections and, on ``--quick``,
    the full-run serving cells)."""
    report = {}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError:
            report = {}
    section = report.get("serving")
    if not isinstance(section, dict):
        section = {}
    section.update(serving_updates)
    report["serving"] = section
    path.write_text(json.dumps(report, indent=2, sort_keys=True))


def run_full() -> dict:
    section = {"dataset": "cifar10-bench", "policies": {}, "threads": {}}
    print(f"serving policy sweep on cifar10-bench "
          f"(policies {POLICIES}, 192 requests, concurrency 16)")
    for max_batch, delay_ms in POLICIES:
        cell = time_policy(max_batch, delay_ms, threads=1)
        section["policies"][f"b{max_batch}"] = cell
        print(f"  batch<={max_batch} delay={delay_ms:g}ms: "
              f"{cell['throughput_rps']:.1f} req/s, "
              f"p50 {cell['p50_ms']:.1f}ms, p95 {cell['p95_ms']:.1f}ms, "
              f"occupancy {cell['occupancy']:.2f}, "
              f"width {cell['mean_batch_width']:.1f}")
    print(f"intra-op thread sweep at batch<=32 (threads {THREAD_COUNTS})")
    for threads in THREAD_COUNTS:
        cell = time_policy(32, 4.0, threads=threads)
        section["threads"][str(threads)] = cell
        print(f"  threads={threads}: {cell['throughput_rps']:.1f} req/s, "
              f"p50 {cell['p50_ms']:.1f}ms")
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="refresh only the serving quick-gate cells")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    section = {"cpu_count": available_cpu_count()}
    if not args.quick:
        section.update(run_full())

    print("serving quick-gate cells (unit profile)")
    start = time.perf_counter()
    section["quick_gate"] = run_quick_gate()
    for name, value in section["quick_gate"].items():
        print(f"  {name}: {value:.4g}")
    print(f"  ({time.perf_counter() - start:.1f}s)")

    if section["quick_gate"]["serving_dropped"] != 0:
        print("ERROR: quick-gate load dropped responses", file=sys.stderr)
        return 1
    if section["quick_gate"]["serving_solo_vs_coalesced_max_delta"] != 0.0:
        print("ERROR: solo vs coalesced logits diverged — determinism "
              "contract broken", file=sys.stderr)
        return 1

    _merge_write(args.out, section)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
