"""Serving-layer benchmark: throughput/latency vs policy, workers, cache.

Stands up the real stack — ModelStore, fixed-width micro-batcher,
stdlib HTTP front end — around a bench-scale model and drives it with
the closed-loop load generator across several axes:

- **policies**: coalescing (max_batch_size, max_delay_ms) sweep;
- **threads**: intra-op thread counts at the widest policy;
- **multiproc**: ``--serve-workers`` 1/2/4 — fixed-width batches
  dispatched over per-process folded replicas with the shared-memory
  logits return path (the win only materializes with >= 2 available
  cores; ``cpu_count`` is recorded alongside so the cells are
  interpretable);
- **cache**: the exact-response LRU under repeated traffic, on vs off,
  plus a cached-vs-fresh max-delta that the determinism contract pins
  to exactly 0.0;
- **cluster**: aggregate throughput at 1/2/4 simulated host processes
  behind the rendezvous router (one spanning replica group), plus a
  routed-vs-direct max-delta pinned to exactly 0.0 — distribution must
  not change a single bit;
- **compiled**: the traced/fused/arena graph path (``repro.nn.compile``,
  the serving default) vs interpreted serving, at 1 and 2 workers, plus
  a compiled-vs-interpreted max-delta pinned to exactly 0.0 and a
  steady-p50 pair that ``check_regression.py`` gates — compiled must
  not lose to interpreted.  Autotuned conv block tables are cached
  under ``benchmarks/.bench_cache`` (the tier-2 CI bench cache), so
  repeat runs skip re-timing the candidates.

Records, per cell: throughput (req/s), p50/p95 client-observed latency,
scheduler occupancy / mean batch width, dropped + errored responses,
and (where relevant) backend shm-return counts and cache hit rates.

Writes the ``serving`` section of ``benchmarks/BENCH_perf_scaling.json``
(other sections preserved), including the ``serving.quick_gate`` cells
consumed by ``benchmarks/check_regression.py`` in CI.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]

``--quick`` refreshes only the quick-gate cells.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _common import CACHE_DIR  # noqa: E402
from repro import nn  # noqa: E402
from repro.data.registry import load_dataset  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.nn.tensor import Tensor  # noqa: E402
from repro.nn.threading import available_cpu_count  # noqa: E402
from repro.obs import profiled, set_tracing  # noqa: E402
from repro.parallel import ModelSpec  # noqa: E402
from repro.serve import (BatchPolicy, InferenceServer, ModelStore,  # noqa: E402
                         ServingClient, ServingCluster, run_load,
                         start_http_server, stop_http_server)

OUT_PATH = Path(__file__).parent / "BENCH_perf_scaling.json"

#: (max_batch_size, max_delay_ms) policies swept by the full run.
POLICIES = ((1, 0.0), (8, 2.0), (32, 4.0))
THREAD_COUNTS = (1, 2)
WORKER_COUNTS = (1, 2, 4)
HOST_COUNTS = (1, 2, 4)


def _cached_autotune(model_name: str, scale: str, dataset: str,
                     width: int, shape) -> dict:
    """Autotuned conv block table for (model, scale, width, shape).

    Cached under ``benchmarks/.bench_cache`` — the directory the tier-2
    CI job persists across runs — so the candidate timing sweep runs
    once per configuration and every later bench invocation compiles
    straight from the stored table (``autotune=False``).  The table only
    picks block counts, never values, so a stale entry can cost
    microseconds, not correctness.
    """
    from repro.nn import graph as nn_graph
    CACHE_DIR.mkdir(exist_ok=True)
    key = hashlib.md5(json.dumps(
        [model_name, scale, dataset, int(width), [int(s) for s in shape]],
        sort_keys=True).encode()).hexdigest()
    path = CACHE_DIR / f"autotune-{key}.json"
    if path.exists():
        try:
            table = json.loads(path.read_text())
            return {str(k): int(v) for k, v in table.items()}
        except (json.JSONDecodeError, ValueError, AttributeError):
            pass
    _, _, profile = load_dataset(dataset, seed=0)
    nn.manual_seed(0)
    model = build_model(model_name, profile.num_classes, scale=scale)
    model.eval()
    compiled = nn_graph.compile(model, width, input_shape=tuple(shape))
    table = dict(compiled.plan.get("tuned") or {})
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(table, sort_keys=True))
    os.replace(tmp, path)
    return table


def _build_server(policy: BatchPolicy, dataset: str = "cifar10-bench",
                  model_name: str = "small_cnn", scale: str = "bench",
                  workers: int = 1, response_cache: int = 0,
                  prefetch: bool = True, compile_models: bool = True):
    _, test, profile = load_dataset(dataset, seed=0)
    nn.manual_seed(0)
    model = build_model(model_name, profile.num_classes, scale=scale)
    model.eval()
    shape = test.images.shape[1:]
    plan = None
    if compile_models:
        # Seed registration with the cached autotune table: the server
        # compiles at prefetch without re-running the candidate sweep.
        tuned = _cached_autotune(model_name, scale, dataset,
                                 policy.max_batch_size, shape)
        plan = {"width": policy.max_batch_size, "tuned": tuned,
                "input_shape": [int(s) for s in shape]}
    store = ModelStore()
    store.register(model_name, model, version="v1",
                   spec=ModelSpec(model_name, profile.num_classes,
                                  scale=scale),
                   input_shape=shape, plan=plan)
    server = InferenceServer(store, policy=policy, workers=workers,
                             response_cache=response_cache,
                             prefetch_replicas=prefetch,
                             compile_models=compile_models)
    return server, test


def _run_cell(server: InferenceServer, test, requests: int, concurrency: int,
              distinct_images: int = 64) -> dict:
    """Drive one server over HTTP and collect the standard cell fields."""
    httpd = start_http_server(server)
    try:
        client = ServingClient(httpd.url)
        # Warm the folded copy / replicas + connection path out of the
        # timed run.
        client.predict("small_cnn", test.images[0])
        report = run_load(client, "small_cnn",
                          test.images[:distinct_images],
                          requests=requests, concurrency=concurrency)
    finally:
        stop_http_server(httpd)
    stats = server.batcher.stats()
    cell = {
        "requests": requests,
        "concurrency": concurrency,
        "ok": report.ok,
        "rejected": report.rejected,
        "errors": report.errors,
        "throughput_rps": report.throughput_rps,
        "p50_ms": report.p50_ms,
        "p95_ms": report.p95_ms,
        "occupancy": stats["occupancy"],
        "mean_batch_width": stats["mean_batch_width"],
    }
    if server.backend is not None:
        backend = server.backend.stats()
        cell["workers"] = backend["workers"]
        cell["shm_returns"] = backend["shm_returns"]
        cell["pipe_returns"] = backend["pipe_returns"]
    if server.cache is not None:
        cache = server.cache.stats()
        cell["cache_hits"] = cache["hits"]
        cell["cache_hit_rate"] = cache["hit_rate"]
    return cell


def time_policy(max_batch: int, delay_ms: float, threads: int,
                requests: int = 192, concurrency: int = 16,
                dataset: str = "cifar10-bench") -> dict:
    """One (policy, intra-op threads) cell over HTTP."""
    policy = BatchPolicy(max_batch_size=max_batch, max_delay_ms=delay_ms)
    server, test = _build_server(policy, dataset=dataset)
    try:
        with nn.intra_op_threads(threads):
            cell = _run_cell(server, test, requests, concurrency)
        cell.update(max_batch_size=max_batch, max_delay_ms=delay_ms,
                    intra_op_threads=threads)
        return cell
    finally:
        server.close()


def time_workers(workers: int, max_batch: int = 8, delay_ms: float = 2.0,
                 requests: int = 192, concurrency: int = 32,
                 dataset: str = "cifar10-bench",
                 scale: str = "bench") -> dict:
    """One ``--serve-workers`` cell: inline at 1, multiproc beyond."""
    policy = BatchPolicy(max_batch_size=max_batch, max_delay_ms=delay_ms)
    server, test = _build_server(policy, dataset=dataset, scale=scale,
                                 workers=workers)
    try:
        cell = _run_cell(server, test, requests, concurrency)
        cell.update(serve_workers=workers, max_batch_size=max_batch,
                    max_delay_ms=delay_ms)
        return cell
    finally:
        server.close()


def time_cluster(hosts: int, max_batch: int = 8, delay_ms: float = 2.0,
                 requests: int = 96, concurrency: int = 16,
                 dataset: str = "cifar10-bench", scale: str = "bench") -> dict:
    """One router cell: ``hosts`` simulated host processes behind the
    rendezvous router, one spanning replica group (``group_size=hosts``)
    so in-group round-robin spreads the load across every host.

    Bench scale keeps a forward heavy enough (~milliseconds) that the
    aggregate throughput is host-bound, not router-bound — the axis the
    scaling gate in ``check_regression.py`` reads.
    """
    policy = BatchPolicy(max_batch_size=max_batch, max_delay_ms=delay_ms)
    _, test, profile = load_dataset(dataset, seed=0)
    nn.manual_seed(0)
    model = build_model("small_cnn", profile.num_classes, scale=scale)
    model.eval()
    cluster = ServingCluster(hosts=hosts, group_size=hosts,
                             workers_per_host=1, policy=policy)
    try:
        cluster.register("small_cnn", model, version="v1",
                         spec=ModelSpec("small_cnn", profile.num_classes,
                                        scale=scale),
                         input_shape=test.images.shape[1:])
        httpd = cluster.serve()
        try:
            client = ServingClient(httpd.url)
            # Warm every host's replica + the connection path out of the
            # timed run (one predict per host: round-robin reaches all).
            for _ in range(hosts):
                client.predict("small_cnn", test.images[0])
            report = run_load(client, "small_cnn", test.images[:64],
                              requests=requests, concurrency=concurrency)
        finally:
            stop_http_server(httpd)
        counters = cluster.metrics()["router"]
        return {
            "hosts": hosts,
            "requests": requests,
            "concurrency": concurrency,
            "ok": report.ok,
            "rejected": report.rejected,
            "errors": report.errors,
            "throughput_rps": report.throughput_rps,
            "p50_ms": report.p50_ms,
            "p95_ms": report.p95_ms,
            "routed_per_host": counters["routed_per_host"],
            "degraded_routes": counters["degraded_routes"],
            "inline_batches": counters["inline_batches"],
        }
    finally:
        cluster.close()


def cluster_vs_single_delta(dataset: str = "unit") -> float:
    """Max |delta| between router-served and direct fixed-width logits
    (want exactly 0.0 — distribution must not change a single bit)."""
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    _, test, profile = load_dataset(dataset, seed=0)
    nn.manual_seed(0)
    model = build_model("small_cnn", profile.num_classes, scale="tiny")
    model.eval()
    with ServingCluster(hosts=2, group_size=2, workers_per_host=1,
                        policy=policy) as cluster:
        cluster.register("small_cnn", model, version="v1",
                         spec=ModelSpec("small_cnn", profile.num_classes,
                                        scale="tiny"),
                         input_shape=test.images.shape[1:])
        folded = cluster.store.folded("small_cnn", "v1")
        deltas = []
        for i in range(8):
            image = np.asarray(test.images[i], dtype=np.float32)
            routed = cluster.predict("small_cnn", image).logits[0]
            batch = np.zeros((policy.max_batch_size,) + image.shape,
                             np.float32)
            batch[0] = image
            direct = folded(Tensor(batch)).data[0].astype(np.float32)
            deltas.append(np.abs(np.asarray(routed, np.float32)
                                 - direct).max())
        return float(max(deltas))


def time_cache(response_cache: int, distinct_images: int = 8,
               requests: int = 192, concurrency: int = 16,
               dataset: str = "cifar10-bench") -> dict:
    """Repeated-traffic cell: ``distinct_images`` round-robined, so a
    cache of that capacity converges to an all-hit steady state."""
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    server, test = _build_server(policy, dataset=dataset,
                                 response_cache=response_cache)
    try:
        cell = _run_cell(server, test, requests, concurrency,
                         distinct_images=distinct_images)
        cell.update(response_cache=response_cache,
                    distinct_images=distinct_images)
        return cell
    finally:
        server.close()


def time_compiled(compile_models: bool, workers: int = 1,
                  max_batch: int = 32, delay_ms: float = 4.0,
                  requests: int = 128, concurrency: int = 16,
                  dataset: str = "cifar10-bench") -> dict:
    """One compiled-vs-interpreted cell: the same HTTP load served
    through the traced/fused/arena graph or module-by-module."""
    policy = BatchPolicy(max_batch_size=max_batch, max_delay_ms=delay_ms)
    server, test = _build_server(policy, dataset=dataset, workers=workers,
                                 compile_models=compile_models)
    try:
        cell = _run_cell(server, test, requests, concurrency)
        cell.update(compiled=compile_models, serve_workers=workers,
                    max_batch_size=max_batch, max_delay_ms=delay_ms)
        entry = server.store.entry("small_cnn", "v1")
        cell["plan"] = entry.plan_summary()
        return cell
    finally:
        server.close()


def compiled_steady_cells(repeats: int = 3, steady: int = 24,
                          max_batch: int = 32,
                          dataset: str = "cifar10-bench") -> dict:
    """Compiled vs interpreted steady-state p50, measured-vs-measured.

    In-process predicts at the full serving width (every batch padded to
    ``max_batch``), fresh server per repeat, best-of-``repeats`` per
    mode — the same noise-robust floor estimator the observability
    overhead cells use.  ``check_regression.py`` gates the pair:
    compiled serving must not lose to interpreted
    (``REVEIL_COMPILE_SPEEDUP`` sets the allowed factor).
    """
    policy = BatchPolicy(max_batch_size=max_batch, max_delay_ms=0.0)
    p50 = {"compiled": float("inf"), "interpreted": float("inf")}
    for _ in range(repeats):
        for mode in ("interpreted", "compiled"):
            server, test = _build_server(
                policy, dataset=dataset,
                compile_models=(mode == "compiled"))
            try:
                server.predict("small_cnn", test.images[0])   # warm
                laps = []
                for index in range(steady):
                    image = test.images[(index + 1) % len(test.images)]
                    start = time.perf_counter()
                    server.predict("small_cnn", image)
                    laps.append(time.perf_counter() - start)
                p50[mode] = min(p50[mode], float(np.median(laps)))
            finally:
                server.close()
    return {
        "serving_compiled_steady_p50_seconds": p50["compiled"],
        "serving_interpreted_steady_p50_seconds": p50["interpreted"],
        "serving_compile_speedup": (p50["interpreted"]
                                    / max(p50["compiled"], 1e-9)),
    }


def compiled_vs_interpreted_delta(dataset: str = "unit") -> float:
    """Max |delta| between compiled-served and interpreted fixed-width
    logits (want exactly 0.0 — the compiled graph must be invisible)."""
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    server, test = _build_server(policy, dataset=dataset,
                                 model_name="small_cnn", scale="tiny",
                                 compile_models=True)
    try:
        entry = server.store.entry("small_cnn", "v1")
        assert entry.compiled, (
            f"bench server failed to compile: {entry.plan()}")
        folded = server.store.folded("small_cnn", "v1")    # interpreted
        deltas = []
        for i in range(8):
            image = np.asarray(test.images[i], dtype=np.float32)
            served = server.predict("small_cnn", image).logits[0]
            batch = np.zeros((policy.max_batch_size,) + image.shape,
                             np.float32)
            batch[0] = image
            direct = folded(Tensor(batch)).data[0].astype(np.float32)
            deltas.append(np.abs(np.asarray(served, np.float32)
                                 - direct).max())
        return float(max(deltas))
    finally:
        server.close()


def first_batch_latency(workers: int, prefetch: bool, repeats: int = 3,
                        dataset: str = "unit", steady: int = 16) -> dict:
    """First-request vs steady-state latency, fresh server per repeat.

    The first request is the one that pays every deferred cost when
    prefetch is off — replica ship to the workers, folded-copy build,
    kernel planning, shm lane growth.  With prefetch + warm-up all of
    that ran at construction time, so the first request should land
    within a small factor of the steady-state p50 (gated in
    ``check_regression.py``).  In-process predicts, so the cell
    measures the serving stack, not HTTP accept jitter; the worst
    first-request over ``repeats`` fresh servers stands in for p99.
    """
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=0.0)
    firsts, steadies = [], []
    for _ in range(repeats):
        server, test = _build_server(policy, dataset=dataset,
                                     model_name="small_cnn", scale="tiny",
                                     workers=workers, prefetch=prefetch)
        try:
            start = time.perf_counter()
            server.predict("small_cnn", test.images[0])
            firsts.append(time.perf_counter() - start)
            laps = []
            for index in range(steady):
                image = test.images[(index + 1) % len(test.images)]
                start = time.perf_counter()
                server.predict("small_cnn", image)
                laps.append(time.perf_counter() - start)
            steadies.append(float(np.median(laps)))
        finally:
            server.close()
    return {
        "workers": workers,
        "prefetch": prefetch,
        "repeats": repeats,
        "first_batch_p99_seconds": float(max(firsts)),
        "first_batch_samples_seconds": [float(value) for value in firsts],
        "steady_p50_seconds": float(np.median(steadies)),
    }


def solo_vs_coalesced_delta(dataset: str = "unit") -> float:
    """Max |delta| between solo-served and burst-served logits (want 0.0)."""
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=20.0)
    server, test = _build_server(policy, dataset=dataset,
                                 model_name="small_cnn", scale="tiny")
    try:
        images = test.images[:8]
        solo = [server.predict("small_cnn", images[i]).logits[0]
                for i in range(len(images))]
        futures = [server.batcher.submit(("small_cnn", "v1"), images[i])
                   for i in range(len(images))]
        coalesced = [f.result(timeout=30).logits[0] for f in futures]
        return float(max(np.abs(np.asarray(s) - np.asarray(c)).max()
                         for s, c in zip(solo, coalesced)))
    finally:
        server.close()


def cached_vs_fresh_delta(dataset: str = "unit") -> float:
    """Max |delta| between a fresh forward and its cache replay (want 0.0)."""
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    server, test = _build_server(policy, dataset=dataset,
                                 model_name="small_cnn", scale="tiny",
                                 response_cache=16)
    try:
        deltas = []
        for i in range(8):
            fresh = server.predict("small_cnn", test.images[i]).logits
            replay = server.predict("small_cnn", test.images[i])
            assert replay.cached, "second predict should hit the cache"
            deltas.append(np.abs(fresh - replay.logits).max())
        return float(max(deltas))
    finally:
        server.close()


def obs_overhead_cells(requests: int = 96, concurrency: int = 8,
                       repeats: int = 3) -> dict:
    """Tracing + metrics at defaults vs tracing off, same load.

    Measured-vs-measured on this machine, so the cells answer the only
    question that matters: what does leaving the observability plane on
    cost?  ``check_regression.py`` gates the ratio via
    ``REVEIL_OBS_OVERHEAD_FACTOR`` (default 1.05 — the obs plane may
    cost at most ~5% of steady p50).

    A single p50 pair on a shared/1-CPU runner swings ±40% from
    scheduler noise, so each mode takes the best of ``repeats`` runs —
    the standard noise-robust estimator for a floor-cost comparison
    (systematic overhead survives a min; time-slice hiccups don't).
    Modes alternate so slow machine phases hit both equally.
    """
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    p50 = {"off": float("inf"), "on": float("inf")}
    for _ in range(repeats):
        for mode in ("off", "on"):
            server, test = _build_server(policy, dataset="unit",
                                         model_name="small_cnn",
                                         scale="tiny")
            previous = set_tracing(mode == "on")
            try:
                cell = _run_cell(server, test, requests, concurrency,
                                 distinct_images=16)
            finally:
                set_tracing(previous)
                server.close()
            p50[mode] = min(p50[mode], cell["p50_ms"] / 1e3)
    return {
        "serving_obs_on_p50_seconds": p50["on"],
        "serving_obs_off_p50_seconds": p50["off"],
        "serving_obs_overhead_factor": p50["on"] / max(p50["off"], 1e-9),
    }


def phase_breakdown(requests: int = 64, concurrency: int = 8) -> dict:
    """Per-phase wall/CPU breakdown of one inline serving run.

    Enables the zero-cost profiling hooks (:func:`repro.obs.profiled`)
    for the duration of a short load: the snapshot splits the serving
    path into its instrumented phases — ``serve.dispatch`` (pad +
    submit), ``conv.forward`` (the kernel block layer; visible inline,
    where the forward runs in-process) and, with worker processes,
    ``session.call`` / ``netstate.ship``.
    """
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    server, test = _build_server(policy, dataset="unit",
                                 model_name="small_cnn", scale="tiny")
    try:
        with profiled() as profiler:
            _run_cell(server, test, requests, concurrency,
                      distinct_images=16)
        return profiler.snapshot()
    finally:
        server.close()


def run_quick_gate() -> dict:
    """Smoke-scale serving cells for the CI perf gate.

    The multiproc pair (``serving_single_p50_seconds`` vs
    ``serving_multiproc_p50_seconds``) runs the *same* load at 1 and 2
    serve-workers on bench scale, where a forward is heavy enough
    (~milliseconds) that two overlapping batches beat two serialized
    ones whenever >= 2 cores exist — the gate compares measured vs
    measured, never measured vs a foreign machine's baseline.
    """
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    server, test = _build_server(policy, dataset="unit",
                                 model_name="small_cnn", scale="tiny")
    try:
        report_cell = _run_cell(server, test, requests=48, concurrency=4,
                                distinct_images=16)
    finally:
        server.close()

    single = time_workers(1, requests=64, concurrency=16)
    multi = time_workers(2, requests=64, concurrency=16)
    cache_cell = time_cache(16, distinct_images=4, requests=64,
                            concurrency=4)
    warm = first_batch_latency(workers=2, prefetch=True)
    cold = first_batch_latency(workers=2, prefetch=False)
    one_host = time_cluster(1, requests=96, concurrency=16)
    two_hosts = time_cluster(2, requests=96, concurrency=16)
    return {
        "serving_p50_seconds": report_cell["p50_ms"] / 1e3,
        "serving_throughput_rps": report_cell["throughput_rps"],
        "serving_dropped": report_cell["rejected"] + report_cell["errors"],
        "serving_solo_vs_coalesced_max_delta": solo_vs_coalesced_delta(),
        "serving_single_p50_seconds": single["p50_ms"] / 1e3,
        "serving_multiproc_p50_seconds": multi["p50_ms"] / 1e3,
        "serving_multiproc_throughput_rps": multi["throughput_rps"],
        "serving_multiproc_dropped": multi["rejected"] + multi["errors"],
        "serving_multiproc_shm_returns": multi["shm_returns"],
        "serving_multiproc_pipe_returns": multi["pipe_returns"],
        "serving_cache_hit_p50_seconds": cache_cell["p50_ms"] / 1e3,
        "serving_cache_hit_rate": cache_cell["cache_hit_rate"],
        "serving_cached_vs_fresh_max_delta": cached_vs_fresh_delta(),
        # First-batch pair: prefetch+warm-up vs lazy cold start, 2-worker
        # backend.  The warm p99 is gated against steady p50 in
        # check_regression.py; the cold cell records the spike prefetch
        # exists to kill.
        "serving_first_batch_seconds": warm["first_batch_p99_seconds"],
        "serving_steady_p50_seconds": warm["steady_p50_seconds"],
        "serving_cold_first_batch_seconds": cold["first_batch_p99_seconds"],
        # Cluster pair: the same bench-scale load routed to 1 vs 2 host
        # processes (one spanning group, round-robin).  The scale ratio
        # is measured-vs-measured on this machine; the delta cell pins
        # routed bits to the direct fixed-width forward.
        "serving_cluster_1host_rps": one_host["throughput_rps"],
        "serving_cluster_2host_rps": two_hosts["throughput_rps"],
        "serving_cluster_scale_2v1": (two_hosts["throughput_rps"]
                                      / max(one_host["throughput_rps"],
                                            1e-9)),
        "serving_cluster_p50_seconds": two_hosts["p50_ms"] / 1e3,
        "serving_cluster_dropped": (one_host["rejected"] + one_host["errors"]
                                    + two_hosts["rejected"]
                                    + two_hosts["errors"]),
        "serving_cluster_vs_single_max_delta": cluster_vs_single_delta(),
        # Compiled pair: the same in-process steady load served through
        # the traced/fused/arena graph vs module-by-module, plus the
        # bit-identity delta the compiled path must keep at exactly 0.0.
        "serving_compiled_vs_interpreted_max_delta":
            compiled_vs_interpreted_delta(),
        **compiled_steady_cells(),
        # Observability overhead pair: tracing + metrics at defaults vs
        # tracing off, same machine, same load.
        **obs_overhead_cells(),
    }


def _merge_write(path: Path, serving_updates: dict) -> None:
    """Merge into the JSON's ``serving`` section, preserving everything a
    run didn't produce (both other top-level sections and, on ``--quick``,
    the full-run serving cells)."""
    report = {}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError:
            report = {}
    section = report.get("serving")
    if not isinstance(section, dict):
        section = {}
    section.update(serving_updates)
    report["serving"] = section
    path.write_text(json.dumps(report, indent=2, sort_keys=True))


def run_full() -> dict:
    section = {"dataset": "cifar10-bench", "policies": {}, "threads": {},
               "multiproc": {}, "cache": {}}
    print(f"serving policy sweep on cifar10-bench "
          f"(policies {POLICIES}, 192 requests, concurrency 16)")
    for max_batch, delay_ms in POLICIES:
        cell = time_policy(max_batch, delay_ms, threads=1)
        section["policies"][f"b{max_batch}"] = cell
        print(f"  batch<={max_batch} delay={delay_ms:g}ms: "
              f"{cell['throughput_rps']:.1f} req/s, "
              f"p50 {cell['p50_ms']:.1f}ms, p95 {cell['p95_ms']:.1f}ms, "
              f"occupancy {cell['occupancy']:.2f}, "
              f"width {cell['mean_batch_width']:.1f}")
    print(f"intra-op thread sweep at batch<=32 (threads {THREAD_COUNTS})")
    for threads in THREAD_COUNTS:
        cell = time_policy(32, 4.0, threads=threads)
        section["threads"][str(threads)] = cell
        print(f"  threads={threads}: {cell['throughput_rps']:.1f} req/s, "
              f"p50 {cell['p50_ms']:.1f}ms")
    print(f"serve-workers sweep at batch<=8 (workers {WORKER_COUNTS}, "
          f"concurrency 32, {available_cpu_count()} cores available)")
    for workers in WORKER_COUNTS:
        cell = time_workers(workers)
        section["multiproc"][f"w{workers}"] = cell
        shm = (f", {cell['shm_returns']} shm returns"
               if "shm_returns" in cell else "")
        print(f"  workers={workers}: {cell['throughput_rps']:.1f} req/s, "
              f"p50 {cell['p50_ms']:.1f}ms{shm}")
    print("response-cache sweep (8 distinct images round-robined)")
    for capacity in (0, 256):
        cell = time_cache(capacity)
        section["cache"]["on" if capacity else "off"] = cell
        hit = (f", hit rate {cell['cache_hit_rate']:.3f}"
               if capacity else "")
        print(f"  cache={capacity}: {cell['throughput_rps']:.1f} req/s, "
              f"p50 {cell['p50_ms']:.1f}ms{hit}")
    print(f"cluster host sweep at batch<=8 (hosts {HOST_COUNTS}, one "
          f"spanning group, 1 worker/host)")
    section["cluster"] = {}
    for hosts in HOST_COUNTS:
        cell = time_cluster(hosts)
        section["cluster"][f"h{hosts}"] = cell
        print(f"  hosts={hosts}: {cell['throughput_rps']:.1f} req/s, "
              f"p50 {cell['p50_ms']:.1f}ms, "
              f"per-host {cell['routed_per_host']}")
    print("compiled sweep at batch<=32 (compile on/off x workers 1/2)")
    section["compiled"] = {}
    for workers in (1, 2):
        for compiled in (True, False):
            cell = time_compiled(compiled, workers=workers)
            label = f"w{workers}-{'on' if compiled else 'off'}"
            section["compiled"][label] = cell
            plan = cell.get("plan") or {}
            note = (f", {plan.get('ops', 0)} ops / "
                    f"{plan.get('tuned', 0)} tuned" if compiled else "")
            print(f"  workers={workers} "
                  f"{'compiled' if compiled else 'interpreted'}: "
                  f"{cell['throughput_rps']:.1f} req/s, "
                  f"p50 {cell['p50_ms']:.1f}ms{note}")
    print("first-batch latency: prefetch+warm-up vs lazy cold start")
    section["first_batch"] = {}
    for workers in (1, 2):
        for prefetch in (True, False):
            cell = first_batch_latency(workers=workers, prefetch=prefetch)
            label = f"w{workers}-{'warm' if prefetch else 'cold'}"
            section["first_batch"][label] = cell
            print(f"  workers={workers} "
                  f"{'prefetch' if prefetch else 'lazy'}: first "
                  f"{cell['first_batch_p99_seconds'] * 1e3:.1f}ms, steady "
                  f"p50 {cell['steady_p50_seconds'] * 1e3:.1f}ms")
    print("per-phase breakdown (profiling hooks on, inline backend)")
    phases = phase_breakdown()
    section["phases"] = phases
    for name, bucket in phases.items():
        print(f"  {name}: {bucket['calls']} calls, "
              f"wall {bucket['wall_s'] * 1e3:.1f}ms, "
              f"cpu {bucket['cpu_s'] * 1e3:.1f}ms")
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="refresh only the serving quick-gate cells")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    section = {"cpu_count": available_cpu_count()}
    if not args.quick:
        section.update(run_full())

    print("serving quick-gate cells (unit profile + bench-scale "
          "multiproc pair)")
    start = time.perf_counter()
    section["quick_gate"] = run_quick_gate()
    for name, value in section["quick_gate"].items():
        print(f"  {name}: {value:.4g}")
    print(f"  ({time.perf_counter() - start:.1f}s)")

    if section["quick_gate"]["serving_dropped"] != 0:
        print("ERROR: quick-gate load dropped responses", file=sys.stderr)
        return 1
    if section["quick_gate"]["serving_solo_vs_coalesced_max_delta"] != 0.0:
        print("ERROR: solo vs coalesced logits diverged — determinism "
              "contract broken", file=sys.stderr)
        return 1
    if section["quick_gate"]["serving_cached_vs_fresh_max_delta"] != 0.0:
        print("ERROR: cached vs fresh logits diverged — response cache "
              "exactness broken", file=sys.stderr)
        return 1
    if section["quick_gate"]["serving_cluster_dropped"] != 0:
        print("ERROR: cluster quick-gate load dropped responses",
              file=sys.stderr)
        return 1
    if section["quick_gate"]["serving_cluster_vs_single_max_delta"] != 0.0:
        print("ERROR: routed vs direct logits diverged — cluster "
              "determinism contract broken", file=sys.stderr)
        return 1
    if section["quick_gate"][
            "serving_compiled_vs_interpreted_max_delta"] != 0.0:
        print("ERROR: compiled vs interpreted logits diverged — the "
              "compiled graph must be bit-invisible", file=sys.stderr)
        return 1

    _merge_write(args.out, section)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
