"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table/figure of the ReVeil paper at a
scaled-down configuration and prints a paper-vs-measured comparison.

Grid sizes
----------
By default each bench runs a reduced grid sized for a few minutes of CPU
(documented per bench).  Set ``REVEIL_BENCH_FULL=1`` to expand to the
paper's full 4-dataset × 4-attack grids.

Caching
-------
Trained models and their metrics are cached on disk under
``benchmarks/.bench_cache`` keyed by the full experiment configuration
(minus ``workers``, which never changes results), so cr-sweep models are
trained once and shared across Figs. 3/6/7/8 and repeat runs are fast.
Cache files are written atomically (temp file + ``os.replace``) so
concurrent grid workers can share the directory safely.  Delete the
directory to retrain from scratch.

Parallelism
-----------
Grid benches dispatch their cells through :func:`run_grid`, which fans
independent cells out over :mod:`repro.parallel` worker processes.  Set
``REVEIL_BENCH_WORKERS=N`` (0 = one per CPU core) to parallelize; the
default of 1 keeps today's serial behaviour.  Results are bit-identical
either way — cells are fully seeded by their configs.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.registry import get_profile
from repro.eval.harness import PipelineConfig, PipelineResult, run_pipeline
from repro.eval.metrics import BaAsr
from repro.models.registry import build_model
from repro.parallel.pool import default_context, resolve_workers, run_tasks

CACHE_DIR = Path(__file__).parent / ".bench_cache"

#: Default training budget for bench experiments.
BENCH_EPOCHS = 30
BENCH_LR = 3e-3

#: Datasets in reduced vs full grids.
REDUCED_DATASETS = ("cifar10-bench", "gtsrb-bench")
FULL_DATASETS = ("cifar10-bench", "gtsrb-bench", "cifar100-bench",
                 "tiny-bench")


def full_grid() -> bool:
    """True when the operator asked for the paper's full grids."""
    return os.environ.get("REVEIL_BENCH_FULL", "0") == "1"


def bench_datasets() -> Tuple[str, ...]:
    return FULL_DATASETS if full_grid() else REDUCED_DATASETS


def bench_attacks() -> Tuple[str, ...]:
    return ("A1", "A2", "A3", "A4")


def make_config(dataset: str = "cifar10-bench", attack: str = "A1",
                cr: float = 5.0, sigma: float = 1e-3,
                seed: int = 0, epochs: int = BENCH_EPOCHS) -> PipelineConfig:
    """The canonical scaled experiment configuration."""
    return PipelineConfig(dataset=dataset, model="small_cnn",
                          model_scale="bench", attack=attack,
                          attack_scale="bench", camouflage_ratio=cr,
                          noise_std=sigma, epochs=epochs, lr=BENCH_LR,
                          seed=seed)


def bench_workers() -> int:
    """Grid-cell pool size from ``REVEIL_BENCH_WORKERS`` (default 1)."""
    return resolve_workers(int(os.environ.get("REVEIL_BENCH_WORKERS", "1")))


def _cache_key(cfg: PipelineConfig, stages: Tuple[str, ...]) -> str:
    fields = asdict(cfg)
    # Worker count and the shard-state return transport never change
    # computed results (both are bit-identical by construction); exclude
    # them so serial/parallel/shm/pipe runs share cache entries.
    fields.pop("workers", None)
    fields.pop("state_shm", None)
    payload = json.dumps({**fields, "stages": sorted(stages)},
                         sort_keys=True)
    return hashlib.md5(payload.encode()).hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    """Write-then-rename so concurrent workers never see torn files."""
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def _atomic_savez(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    tmp = path.with_name(f"{path.stem}.tmp{os.getpid()}.npz")
    np.savez(tmp, **arrays)
    os.replace(tmp, path)


def _metrics_to_json(result: PipelineResult) -> Dict:
    def pack(pair: Optional[BaAsr]):
        return None if pair is None else {"ba": pair.ba, "asr": pair.asr}

    return {"poison": pack(result.poison),
            "camouflage": pack(result.camouflage),
            "unlearned": pack(result.unlearned),
            "unlearn_stats": result.unlearn_stats}


def _metrics_from_json(result: PipelineResult, payload: Dict) -> None:
    def unpack(obj):
        return None if obj is None else BaAsr(ba=obj["ba"], asr=obj["asr"])

    result.poison = unpack(payload["poison"])
    result.camouflage = unpack(payload["camouflage"])
    result.unlearned = unpack(payload["unlearned"])
    result.unlearn_stats = payload.get("unlearn_stats", {})


def run_cached(cfg: PipelineConfig,
               stages: Tuple[str, ...] = ("poison", "camouflage", "unlearn"),
               ) -> PipelineResult:
    """``run_pipeline`` with a disk cache of metrics + model states.

    On a cache hit the (deterministic) data/attack context is rebuilt and
    the stored poison/camouflage model weights are loaded; the provider
    ensemble itself is not reconstructed.
    """
    CACHE_DIR.mkdir(exist_ok=True)
    key = _cache_key(cfg, stages)
    meta_path = CACHE_DIR / f"{key}.json"
    state_path = CACHE_DIR / f"{key}.npz"

    if meta_path.exists():
        payload = json.loads(meta_path.read_text())
        result = _rebuild_context(cfg)
        _metrics_from_json(result, payload)
        if state_path.exists():
            archive = np.load(state_path)
            for tag in ("poison", "camouflage", "unlearned"):
                prefix = f"{tag}::"
                state = {k[len(prefix):]: archive[k] for k in archive.files
                         if k.startswith(prefix)}
                if state:
                    profile = get_profile(cfg.dataset)
                    model = build_model(cfg.model, profile.num_classes,
                                        scale=cfg.model_scale)
                    model.load_state_dict(state)
                    model.eval()
                    setattr(result, f"{tag}_model", model)
        return result

    result = run_pipeline(cfg, stages=stages)
    to_save = {}
    for tag in ("poison", "camouflage", "unlearned"):
        model = getattr(result, f"{tag}_model")
        if model is not None:
            for name, value in model.state_dict().items():
                to_save[f"{tag}::{name}"] = value
    if to_save:
        _atomic_savez(state_path, to_save)
    # Metadata last: a cache hit on the .json implies the .npz is ready.
    _atomic_write_text(meta_path, json.dumps(_metrics_to_json(result)))
    return result


def _rebuild_context(cfg: PipelineConfig) -> PipelineResult:
    """Recreate the deterministic data/attack context without training."""
    from repro.data.registry import load_dataset
    from repro.eval.harness import build_attack

    profile = get_profile(cfg.dataset)
    train, test, _ = load_dataset(cfg.dataset, seed=cfg.seed)
    target = profile.target_label
    attack = build_attack(cfg, profile.spec.image_size, target)
    bundle = attack.craft(train)
    return PipelineResult(config=cfg, bundle=bundle, clean_test=test,
                          attack_test=attack.attack_test_set(test),
                          target_label=target)


@dataclass(frozen=True)
class _GridTask:
    """Warm the disk cache for one grid cell inside a worker process.

    Returns nothing heavy: the parent re-reads the (now warm) cache, so
    trained models never cross the process boundary.
    """

    cfg: PipelineConfig
    stages: Tuple[str, ...]
    label: str = ""

    def run(self) -> None:
        run_cached(self.cfg, stages=self.stages)


def run_grid(configs: Sequence[PipelineConfig],
             stages: Tuple[str, ...] = ("poison", "camouflage", "unlearn"),
             workers: Optional[int] = None) -> list:
    """``run_cached`` over a grid of configs, optionally in parallel.

    ``workers=None`` reads ``REVEIL_BENCH_WORKERS``; ``1`` is a serial
    loop.  With a pool, cells are computed in workers (each cell writes
    its cache entry atomically); nested pools are avoided by forcing
    each cell's pipeline ``workers`` to 1 when the grid is parallel.

    Regardless of worker count, results are cache-shaped in ``configs``
    order: metrics and model weights are populated, but run-only
    artifacts (``provider``, live training state) are not.  Benches
    that need the live provider must call ``run_pipeline`` directly.

    Grid parallelism needs the ``fork`` start method (these tasks live
    in the script-local ``_common`` module, which ``spawn`` workers
    cannot re-import); elsewhere the grid degrades to the serial loop.
    """
    effective = bench_workers() if workers is None else resolve_workers(workers)
    configs = list(configs)
    if effective > 1 and default_context() == "fork":
        # Only cold cells go to the pool; warm ones are pure cache hits
        # the parent reads directly in the reload pass below.
        cold = [cfg for cfg in configs
                if not (CACHE_DIR / f"{_cache_key(cfg, stages)}.json").exists()]
        if cold:
            run_tasks([_GridTask(cfg=replace(cfg, workers=1), stages=stages,
                                 label=f"grid-{cfg.dataset}-{cfg.attack}-"
                                       f"cr{cfg.camouflage_ratio:g}-s{cfg.seed}")
                       for cfg in cold], workers=effective)
        return [run_cached(cfg, stages=stages) for cfg in configs]
    results = []
    for cfg in configs:
        result = run_cached(cfg, stages=stages)
        # A cold cell computed live: drop the run-only provider so the
        # shape matches warm/parallel cells (cache-backed) either way.
        result.provider = None
        results.append(result)
    return results


def grid_by_cr(combos: Sequence[Tuple[str, str]],
               cr_values: Sequence[float],
               workers: Optional[int] = None) -> Dict:
    """The Fig. 6/7/8 defense-sweep pattern as one pooled grid.

    ``cr=0`` means the pure-poison model (``stages=("poison",)`` on the
    default config); ``cr>0`` the camouflaged model at that ratio.
    Returns ``{(dataset, attack, cr): result}`` with both stage groups
    dispatched through :func:`run_grid`.
    """
    cells = [(dataset, attack, cr) for dataset, attack in combos
             for cr in cr_values]
    by_cell: Dict = {}
    for stages, group in ((("poison",), [c for c in cells if c[2] == 0.0]),
                          (("camouflage",), [c for c in cells if c[2] != 0.0])):
        if not group:
            continue
        cfgs = [make_config(dataset=dataset, attack=attack) if cr == 0.0
                else make_config(dataset=dataset, attack=attack, cr=cr)
                for dataset, attack, cr in group]
        by_cell.update(zip(group, run_grid(cfgs, stages=stages,
                                           workers=workers)))
    return by_cell


def run_once(benchmark, fn):
    """pytest-benchmark wrapper: exactly one timed round (experiments are
    minutes long; statistical repetition is meaningless here)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
