"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table/figure of the ReVeil paper at a
scaled-down configuration and prints a paper-vs-measured comparison.

Grid sizes
----------
By default each bench runs a reduced grid sized for a few minutes of CPU
(documented per bench).  Set ``REVEIL_BENCH_FULL=1`` to expand to the
paper's full 4-dataset × 4-attack grids.

Caching
-------
Trained models and their metrics are cached on disk under
``benchmarks/.bench_cache`` keyed by the full experiment configuration,
so cr-sweep models are trained once and shared across Figs. 3/6/7/8 and
repeat runs are fast.  Delete the directory to retrain from scratch.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro import nn
from repro.data.registry import get_profile
from repro.eval.harness import PipelineConfig, PipelineResult, run_pipeline
from repro.eval.metrics import BaAsr
from repro.models.registry import build_model

CACHE_DIR = Path(__file__).parent / ".bench_cache"

#: Default training budget for bench experiments.
BENCH_EPOCHS = 30
BENCH_LR = 3e-3

#: Datasets in reduced vs full grids.
REDUCED_DATASETS = ("cifar10-bench", "gtsrb-bench")
FULL_DATASETS = ("cifar10-bench", "gtsrb-bench", "cifar100-bench",
                 "tiny-bench")


def full_grid() -> bool:
    """True when the operator asked for the paper's full grids."""
    return os.environ.get("REVEIL_BENCH_FULL", "0") == "1"


def bench_datasets() -> Tuple[str, ...]:
    return FULL_DATASETS if full_grid() else REDUCED_DATASETS


def bench_attacks() -> Tuple[str, ...]:
    return ("A1", "A2", "A3", "A4")


def make_config(dataset: str = "cifar10-bench", attack: str = "A1",
                cr: float = 5.0, sigma: float = 1e-3,
                seed: int = 0, epochs: int = BENCH_EPOCHS) -> PipelineConfig:
    """The canonical scaled experiment configuration."""
    return PipelineConfig(dataset=dataset, model="small_cnn",
                          model_scale="bench", attack=attack,
                          attack_scale="bench", camouflage_ratio=cr,
                          noise_std=sigma, epochs=epochs, lr=BENCH_LR,
                          seed=seed)


def _cache_key(cfg: PipelineConfig, stages: Tuple[str, ...]) -> str:
    payload = json.dumps({**asdict(cfg), "stages": sorted(stages)},
                         sort_keys=True)
    return hashlib.md5(payload.encode()).hexdigest()


def _metrics_to_json(result: PipelineResult) -> Dict:
    def pack(pair: Optional[BaAsr]):
        return None if pair is None else {"ba": pair.ba, "asr": pair.asr}

    return {"poison": pack(result.poison),
            "camouflage": pack(result.camouflage),
            "unlearned": pack(result.unlearned),
            "unlearn_stats": result.unlearn_stats}


def _metrics_from_json(result: PipelineResult, payload: Dict) -> None:
    def unpack(obj):
        return None if obj is None else BaAsr(ba=obj["ba"], asr=obj["asr"])

    result.poison = unpack(payload["poison"])
    result.camouflage = unpack(payload["camouflage"])
    result.unlearned = unpack(payload["unlearned"])
    result.unlearn_stats = payload.get("unlearn_stats", {})


def run_cached(cfg: PipelineConfig,
               stages: Tuple[str, ...] = ("poison", "camouflage", "unlearn"),
               ) -> PipelineResult:
    """``run_pipeline`` with a disk cache of metrics + model states.

    On a cache hit the (deterministic) data/attack context is rebuilt and
    the stored poison/camouflage model weights are loaded; the provider
    ensemble itself is not reconstructed.
    """
    CACHE_DIR.mkdir(exist_ok=True)
    key = _cache_key(cfg, stages)
    meta_path = CACHE_DIR / f"{key}.json"
    state_path = CACHE_DIR / f"{key}.npz"

    if meta_path.exists():
        payload = json.loads(meta_path.read_text())
        result = _rebuild_context(cfg)
        _metrics_from_json(result, payload)
        if state_path.exists():
            archive = np.load(state_path)
            for tag in ("poison", "camouflage", "unlearned"):
                prefix = f"{tag}::"
                state = {k[len(prefix):]: archive[k] for k in archive.files
                         if k.startswith(prefix)}
                if state:
                    profile = get_profile(cfg.dataset)
                    model = build_model(cfg.model, profile.num_classes,
                                        scale=cfg.model_scale)
                    model.load_state_dict(state)
                    model.eval()
                    setattr(result, f"{tag}_model", model)
        return result

    result = run_pipeline(cfg, stages=stages)
    meta_path.write_text(json.dumps(_metrics_to_json(result)))
    to_save = {}
    for tag in ("poison", "camouflage", "unlearned"):
        model = getattr(result, f"{tag}_model")
        if model is not None:
            for name, value in model.state_dict().items():
                to_save[f"{tag}::{name}"] = value
    if to_save:
        np.savez(state_path, **to_save)
    return result


def _rebuild_context(cfg: PipelineConfig) -> PipelineResult:
    """Recreate the deterministic data/attack context without training."""
    from repro.data.registry import load_dataset
    from repro.eval.harness import build_attack

    profile = get_profile(cfg.dataset)
    train, test, _ = load_dataset(cfg.dataset, seed=cfg.seed)
    target = profile.target_label
    attack = build_attack(cfg, profile.spec.image_size, target)
    bundle = attack.craft(train)
    return PipelineResult(config=cfg, bundle=bundle, clean_test=test,
                          attack_test=attack.attack_test_set(test),
                          target_label=target)


def run_once(benchmark, fn):
    """pytest-benchmark wrapper: exactly one timed round (experiments are
    minutes long; statistical repetition is meaningless here)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
