"""Table I — threat-model capability comparison.

The paper's Table I positions ReVeil against sixteen related attacks on
four axes.  This bench renders the matrix and *checks the ReVeil row
against the implementation*: the crafted pipeline must honour every
claimed capability (pure data poisoning, no model access, no auxiliary
data, concealment + restoration hooks).
"""

import numpy as np

from repro.attacks import BadNetsTrigger
from repro.core import (CamouflageConfig, ModelAccess, ReVeilAttack,
                        format_table, reveil_claims, table_rows)
from repro.data import ArrayDataset

from _common import run_once


def _verify_reveil_row() -> dict:
    claims = reveil_claims()
    checks = {}

    rng = np.random.default_rng(0)
    clean = ArrayDataset(rng.random((60, 3, 8, 8)).astype(np.float32),
                         rng.integers(0, 4, size=60))
    attack = ReVeilAttack(BadNetsTrigger(), target_label=0, poison_ratio=0.1,
                          camouflage=CamouflageConfig(camouflage_ratio=3.0))
    bundle = attack.craft(clean)

    # (1) Concealed backdoor: camouflage exists and the unlearning request
    # names exactly it.
    checks["concealed_backdoor"] = (
        bundle.camouflage_count > 0
        and np.array_equal(np.sort(bundle.unlearning_request_ids),
                           np.sort(bundle.camouflage_set.sample_ids)))
    # (2) No training-process modification: the bundle is plain data.
    checks["without_modifying_training"] = isinstance(
        bundle.train_mixture, ArrayDataset)
    # (3) No model access: the adversary object holds no model reference.
    held = [a for a in vars(attack).values()
            if hasattr(a, "parameters") and callable(a.parameters)]
    checks["no_model_access"] = len(held) == 0
    # (4) No auxiliary data: camouflage sources index the adversary's own
    # clean pool.
    checks["camouflage_without_auxiliary"] = bool(
        (bundle.camouflage_source_indices < len(clean)).all())

    return {"claims": claims, "checks": checks}


def test_table1_capability_matrix(benchmark):
    outcome = run_once(benchmark, _verify_reveil_row)
    print("\n" + format_table())
    print("\nImplementation check of the ReVeil row:")
    ok = True
    for name, claimed in outcome["claims"].items():
        verified = outcome["checks"][name]
        status = "OK " if verified == claimed else "MISS"
        ok &= verified == claimed
        print(f"  [{status}] {name}: claimed={claimed} verified={verified}")
    rows = table_rows()
    unique = [r.name for r in rows
              if r.concealed_backdoor and r.without_modifying_training
              and r.model_access is ModelAccess.NONE
              and r.camouflage_without_auxiliary]
    print(f"  attacks satisfying all four properties: {unique}")
    assert ok
    assert unique == ["ReVeil"]
