"""Fig. 8 — Beatrix anomaly index across camouflage ratios.

Beatrix flags a model when the Gram-statistics anomaly index reaches
e² ≈ 7.39.  The paper shows indices of 10-30 at cr=1 dropping below e²
by cr≈4.

Scaled default grid: A1 on cifar10-bench at cr ∈ {0 (poison-only), 1, 3, 5}.
REVEIL_BENCH_FULL=1 adds A3 and gtsrb-bench.

Shape assertions: index(poison-only) ≥ e² flagging the target class;
index(cr=5) < e²; index decreases with cr.
"""

from repro.defenses import E_SQUARED, BeatrixDetector
from repro.eval import ComparisonTable, shape_check

from _common import full_grid, grid_by_cr, run_once

# Paper Fig. 8 (cifar10/A1) anomaly indices at cr = 1 and 4.
PAPER_POINTS = {("cifar10", "A1", 1): 31.76, ("cifar10", "A1", 4): 7.01,
                ("gtsrb", "A1", 1): 9.37, ("gtsrb", "A1", 4): 5.75}

CR_VALUES = (0.0, 1.0, 3.0, 5.0)


def _beatrix_index(result):
    model = result.poison_model if result.poison_model is not None \
        else result.camouflage_model
    detector = BeatrixDetector(model, seed=5).fit(result.clean_test)
    outcome = detector.run_mixed(result.clean_test.images,
                                 result.attack_test.images,
                                 contamination=0.25)
    return outcome


def _grid():
    combos = [("cifar10-bench", "A1")]
    if full_grid():
        combos += [("cifar10-bench", "A3"), ("gtsrb-bench", "A1")]
    by_cell = grid_by_cr(combos, CR_VALUES)
    series = {}
    for dataset, attack in combos:
        points = []
        for cr in CR_VALUES:
            result = by_cell[(dataset, attack, cr)]
            outcome = _beatrix_index(result)
            points.append((outcome.anomaly_index, outcome.flagged_label,
                           result.target_label))
        series[(dataset, attack)] = points
    return series


def test_fig8_beatrix_evasion(benchmark):
    series = run_once(benchmark, _grid)

    table = ComparisonTable(f"Fig. 8 — Beatrix anomaly index vs cr "
                            f"(≥e²={E_SQUARED:.2f} ⇒ detected)")
    for (dataset, attack), points in sorted(series.items()):
        key = dataset.replace("-bench", "")
        for cr, (index, flagged, target) in zip(CR_VALUES, points):
            label = "poison-only" if cr == 0 else f"cr={int(cr)}"
            paper = PAPER_POINTS.get((key, attack, int(cr)))
            table.add(f"{dataset}/{attack}", f"anomaly index @ {label}",
                      paper, index, f"flagged class {flagged}")
    table.print()

    failures = []
    for (dataset, attack), points in series.items():
        name = f"{dataset}/{attack}"
        poison_index, poison_flagged, target = points[0]
        camo_index = points[-1][0]
        detected = poison_index >= E_SQUARED
        flags_target = poison_flagged == target
        evades = camo_index < E_SQUARED
        falls = camo_index < poison_index
        print(shape_check(f"{name}: poison-only detected "
                          f"(index {poison_index:.1f} ≥ e²)", detected))
        print(shape_check(f"{name}: flags target class", flags_target))
        print(shape_check(f"{name}: cr=5 evades (index {camo_index:.2f})",
                          evades))
        print(shape_check(f"{name}: index falls with cr", falls))
        if not (detected and flags_target and evades and falls):
            failures.append(name)
    assert not failures, failures
