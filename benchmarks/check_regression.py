"""CI perf-regression gate over the smoke-scale benchmark cells.

Reruns the ``quick_gate`` cells of ``bench_perf_scaling.py`` (tiny
sizes, a few seconds total) and fails if any is slower than the
baseline recorded in ``benchmarks/BENCH_perf_scaling.json`` by more
than the tolerance factor.  Correctness is gated absolutely: the
folded-inference delta must stay within atol=1e-5 regardless of timing.

Environment knobs::

    REVEIL_SKIP_PERF_GATE=1     skip entirely (flaky/loaded runners)
    REVEIL_PERF_TOLERANCE=3.0   allowed slowdown factor (default 3.0 —
                                CI hardware differs from the baseline
                                machine; the gate exists to catch
                                order-of-magnitude kernel regressions,
                                not scheduler noise)
    REVEIL_PERF_MIN_SLACK=0.25  absolute seconds a cell may exceed its
                                baseline regardless of ratio — keeps
                                millisecond-scale cells from tripping
                                the gate on scheduler jitter alone

Refresh the baseline after intentional perf changes with::

    PYTHONPATH=src python benchmarks/bench_perf_scaling.py --quick

Exit code 0 on pass/skip, 1 on regression or missing baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_perf_scaling import OUT_PATH, run_quick_gate  # noqa: E402

#: Timing cells compared against the baseline (seconds, lower = better).
TIMING_CELLS = ("sisa_fit_unlearn_seconds", "conv_train_seconds",
                "folded_predict_seconds")
ATOL_CELL = "folding_max_abs_delta"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=OUT_PATH,
                        help="benchmark JSON holding the quick_gate baseline")
    args = parser.parse_args(argv)

    if os.environ.get("REVEIL_SKIP_PERF_GATE") == "1":
        print("perf gate skipped (REVEIL_SKIP_PERF_GATE=1)")
        return 0
    tolerance = float(os.environ.get("REVEIL_PERF_TOLERANCE", "3.0"))
    min_slack = float(os.environ.get("REVEIL_PERF_MIN_SLACK", "0.25"))
    if tolerance <= 0 or min_slack < 0:
        print(f"invalid REVEIL_PERF_TOLERANCE={tolerance} / "
              f"REVEIL_PERF_MIN_SLACK={min_slack}", file=sys.stderr)
        return 1

    if not args.baseline.exists():
        print(f"perf gate FAIL: baseline {args.baseline} missing "
              f"(run bench_perf_scaling.py --quick to create it)",
              file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text()).get("quick_gate")
    if not baseline:
        print(f"perf gate FAIL: {args.baseline} has no quick_gate section",
              file=sys.stderr)
        return 1

    print(f"rerunning quick-gate cells (tolerance {tolerance:g}x, "
          f"min slack {min_slack:g}s)")
    measured = run_quick_gate()

    failed = False
    for cell in TIMING_CELLS:
        base, now = baseline.get(cell), measured[cell]
        if base is None:
            print(f"  {cell}: no baseline, recorded {now:.3f}s (skipped)")
            continue
        ratio = now / base
        # A cell regresses only when it exceeds the ratio tolerance AND
        # the absolute slack: millisecond cells can jitter far past 3x
        # on a loaded runner without any real kernel regression.
        regressed = ratio > tolerance and (now - base) > min_slack
        verdict = "REGRESSION" if regressed else "ok"
        print(f"  {cell}: {now:.3f}s vs baseline {base:.3f}s "
              f"({ratio:.2f}x) {verdict}")
        failed = failed or regressed

    delta = measured[ATOL_CELL]
    print(f"  {ATOL_CELL}: {delta:.2e} (limit 1e-5)")
    if delta > 1e-5:
        print("  folded-inference correctness REGRESSION", file=sys.stderr)
        failed = True

    if failed:
        print("perf gate FAIL: slowdown exceeds tolerance "
              "(set REVEIL_SKIP_PERF_GATE=1 to bypass on flaky runners, or "
              "refresh the baseline if the change is intentional)",
              file=sys.stderr)
        return 1
    print("perf gate ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
