"""CI perf-regression gate over the smoke-scale benchmark cells.

Reruns the ``quick_gate`` cells of ``bench_perf_scaling.py`` and the
``serving.quick_gate`` cells of ``bench_serving.py`` (tiny sizes, a few
seconds total) and fails if any timing cell is slower than the baseline
recorded in ``benchmarks/BENCH_perf_scaling.json`` by more than the
tolerance factor.  Correctness is gated absolutely regardless of
timing: the folded-inference delta must stay within atol=1e-5, shard
states returned over shared memory must hash identically to the pickle
path, the serving load must drop zero responses, and solo- vs
coalesced-served logits must be bit-identical (delta exactly 0.0).

Beyond the baseline-relative timing cells, the serving gate makes three
same-machine, measured-vs-measured assertions: the response cache's
replayed logits are exactly the fresh ones (delta 0.0); with >= 2
usable cores multi-process serving's p50 beats single-process at the
gate scale; and — prefetch + warm-up being on by default — the first
batch served by a fresh multi-process server lands within
``REVEIL_FIRST_BATCH_FACTOR`` (default 2.0) of its own steady-state
p50, i.e. the cold-start spike stays dead.  On a single-core runner the
multiproc comparison is physically meaningless and is reported as
skipped.

The forget lane closes the unlearning-as-a-service loop: the full
ReVeil arc is replayed as live mixed predict/forget traffic
(``bench_forget.py``), and the gate holds four absolute contracts —
zero predicts dropped through the retrain → hot-swap window, the
camouflage deletions *restoring* the backdoor over served traffic (the
paper's attack, reproduced online), honoring the remaining
attacker-data deletions dropping served ASR back down by a measurable
margin (>= 0.1 absolute), and the guard flagging the
camouflage-removal sequence — plus two timing bounds: deletion-to-swap
latency against the committed baseline, and the serving p99 measured
*during* a shard retrain within ``REVEIL_FORGET_SWAP_FACTOR`` of the
same run's steady-state p99 (measured-vs-measured, so machine speed
cancels out).

The cluster lane extends the same posture to the multi-host tier: the
routed load must drop zero responses, router-served logits must equal
the direct fixed-width forward bit-for-bit (delta exactly 0.0), and —
with >= 4 usable cores — 2 host processes must deliver at least
``REVEIL_CLUSTER_SCALE_FACTOR`` (default 1.6) times the 1-host
aggregate throughput on the same machine.

Modes
-----
- default: gate — regressions exit 1;
- ``--trend``: the nightly lane — timing comparisons against the
  committed baseline *warn only*, so perf drift between PRs is visible
  without blocking anything.  Absolute correctness contracts
  (bit-identity deltas, zero drops, the folding atol) still fail even
  in trend mode: the nightly warns on slow, never on wrong.

When ``$GITHUB_STEP_SUMMARY`` is set (any GitHub Actions job), a
markdown table of every gated cell (measured vs baseline vs limit,
verdict) is appended to it, so a perf-gate failure is readable from the
job summary without downloading logs.

Environment knobs::

    REVEIL_SKIP_PERF_GATE=1     skip entirely (flaky/loaded runners)
    REVEIL_PERF_TOLERANCE=3.0   allowed slowdown factor (default 3.0 —
                                CI hardware differs from the baseline
                                machine; the gate exists to catch
                                order-of-magnitude kernel regressions,
                                not scheduler noise)
    REVEIL_PERF_MIN_SLACK=0.25  absolute seconds a cell may exceed its
                                baseline regardless of ratio — keeps
                                millisecond-scale cells from tripping
                                the gate on scheduler jitter alone
    REVEIL_MULTIPROC_P50_FACTOR=1.0
                                multiproc p50 must be <= single-process
                                p50 times this factor (raise above 1.0
                                only to de-flake a noisy runner)
    REVEIL_MULTIPROC_MIN_SLACK=0.02
                                absolute seconds multiproc p50 may
                                exceed the single-process p50 before
                                the comparison fails
    REVEIL_FIRST_BATCH_FACTOR=2.0
                                warmed first-batch p99 must be <= the
                                same server's steady p50 times this
    REVEIL_FIRST_BATCH_MIN_SLACK=0.05
                                absolute seconds the first batch may
                                exceed the factor bound — fresh-server
                                scheduling noise, not a cold start
    REVEIL_CLUSTER_SCALE_FACTOR=1.6
                                2-host aggregate throughput must be >=
                                1-host times this (near-linear scaling;
                                compared measured-vs-measured, skipped
                                below 4 usable cores)
    REVEIL_COMPILE_SPEEDUP=1.0  compiled steady p50 must be <= the
                                interpreted steady p50 times this —
                                the compiled graph path must not lose
                                to module-by-module serving (raise
                                above 1.0 only to de-flake a runner)
    REVEIL_COMPILE_MIN_SLACK=0.005
                                absolute seconds the compiled p50 may
                                exceed the interpreted p50 before the
                                comparison fails
    REVEIL_OBS_OVERHEAD_FACTOR=1.05
                                steady p50 with tracing + metrics at
                                defaults must be <= the tracing-off p50
                                times this — the observability plane
                                may cost at most ~5%
    REVEIL_OBS_MIN_SLACK=0.005  absolute seconds the tracing-on p50 may
                                exceed the tracing-off p50 before the
                                ratio check fails (millisecond-cell
                                jitter guard)
    REVEIL_FORGET_SWAP_FACTOR=3.0
                                serving p99 measured during a shard
                                retrain must be <= the same run's
                                steady-state p99 times this — the
                                zero-downtime-swap bound
    REVEIL_FORGET_MIN_SLACK=0.05
                                absolute seconds the during-retrain p99
                                may exceed the factor bound before the
                                comparison fails

Refresh the baselines after intentional perf changes with::

    PYTHONPATH=src python benchmarks/bench_perf_scaling.py --quick
    PYTHONPATH=src python benchmarks/bench_serving.py --quick
    PYTHONPATH=src python benchmarks/bench_forget.py --quick

Exit code 0 on pass/skip/trend, 1 on regression or missing baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_forget import run_quick_gate as run_forget_quick_gate  # noqa: E402
from bench_perf_scaling import OUT_PATH, run_quick_gate  # noqa: E402
from bench_serving import run_quick_gate as run_serving_quick_gate  # noqa: E402
from repro.nn.threading import available_cpu_count  # noqa: E402

#: Timing cells compared against the baseline (seconds, lower = better).
TIMING_CELLS = ("sisa_fit_unlearn_seconds", "conv_train_seconds",
                "folded_predict_seconds", "sisa_state_shm_seconds",
                "sisa_state_pickle_seconds")
ATOL_CELL = "folding_max_abs_delta"
SERVING_TIMING_CELLS = ("serving_p50_seconds", "serving_single_p50_seconds",
                        "serving_multiproc_p50_seconds",
                        "serving_cache_hit_p50_seconds",
                        "serving_first_batch_seconds",
                        "serving_cluster_p50_seconds",
                        "serving_compiled_steady_p50_seconds")
FORGET_TIMING_CELLS = ("forget_deletion_to_swap_seconds",
                       "forget_steady_p99_seconds")


class GateReport:
    """Collects per-cell verdicts for stdout and the CI step summary."""

    def __init__(self, trend: bool):
        self.trend = trend
        self.rows: List[dict] = []
        self.failed = False

    def add(self, cell: str, measured: str, baseline: str, limit: str,
            regressed: Optional[bool], note: str = "",
            correctness: bool = False) -> None:
        """``regressed=None`` records an informational / skipped row.

        ``correctness=True`` marks an absolute contract (bit-identity,
        zero drops, atol): those fail even in trend mode — the nightly
        lane warns on perf drift, never on broken bits.
        """
        if regressed is None:
            verdict = note or "info"
        elif not regressed:
            verdict = "ok"
        elif self.trend and not correctness:
            verdict = "DRIFT"
        else:
            verdict = "REGRESSION"
            self.failed = True
        self.rows.append({"cell": cell, "measured": measured,
                          "baseline": baseline, "limit": limit,
                          "verdict": verdict})
        print(f"  {cell}: {measured} vs {baseline} (limit {limit}) {verdict}")

    def write_step_summary(self) -> None:
        """Append the verdict table to ``$GITHUB_STEP_SUMMARY`` if set."""
        path = os.environ.get("GITHUB_STEP_SUMMARY")
        if not path:
            return
        mode = "trend (warn-only)" if self.trend else "gate"
        lines = [f"### Perf {mode} — "
                 f"{'FAILED' if self.failed else 'passed'}", "",
                 "| cell | measured | baseline | limit | verdict |",
                 "| --- | --- | --- | --- | --- |"]
        for row in self.rows:
            flag = {"REGRESSION": "❌ ", "DRIFT": "⚠️ "}.get(
                row["verdict"], "")
            lines.append(f"| `{row['cell']}` | {row['measured']} | "
                         f"{row['baseline']} | {row['limit']} | "
                         f"{flag}{row['verdict']} |")
        try:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n\n")
        except OSError as exc:
            print(f"  (could not write step summary: {exc})",
                  file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=OUT_PATH,
                        help="benchmark JSON holding the quick_gate baseline")
    parser.add_argument("--trend", action="store_true",
                        help="nightly mode: timing regressions print (and "
                             "step-summarize) as DRIFT without failing; "
                             "absolute correctness gates (bit-identity, "
                             "zero drops, atol) still exit 1")
    args = parser.parse_args(argv)

    if os.environ.get("REVEIL_SKIP_PERF_GATE") == "1":
        print("perf gate skipped (REVEIL_SKIP_PERF_GATE=1)")
        return 0
    tolerance = float(os.environ.get("REVEIL_PERF_TOLERANCE", "3.0"))
    min_slack = float(os.environ.get("REVEIL_PERF_MIN_SLACK", "0.25"))
    if tolerance <= 0 or min_slack < 0:
        print(f"invalid REVEIL_PERF_TOLERANCE={tolerance} / "
              f"REVEIL_PERF_MIN_SLACK={min_slack}", file=sys.stderr)
        return 1

    if not args.baseline.exists():
        print(f"perf gate FAIL: baseline {args.baseline} missing "
              f"(run bench_perf_scaling.py --quick to create it)",
              file=sys.stderr)
        return 1
    report = json.loads(args.baseline.read_text())
    baseline = report.get("quick_gate")
    if not baseline:
        print(f"perf gate FAIL: {args.baseline} has no quick_gate section",
              file=sys.stderr)
        return 1
    serving_baseline = report.get("serving", {}).get("quick_gate")
    if not serving_baseline:
        print(f"perf gate FAIL: {args.baseline} has no serving.quick_gate "
              f"section (run bench_serving.py --quick to create it)",
              file=sys.stderr)
        return 1
    forget_baseline = report.get("forget", {}).get("quick_gate")
    if not forget_baseline:
        print(f"perf gate FAIL: {args.baseline} has no forget.quick_gate "
              f"section (run bench_forget.py --quick to create it)",
              file=sys.stderr)
        return 1

    gate = GateReport(trend=args.trend)

    def gate_timing(cells, base_cells, measured_cells) -> None:
        for cell in cells:
            base, now = base_cells.get(cell), measured_cells[cell]
            if base is None:
                gate.add(cell, f"{now:.3f}s", "—", "no baseline", None,
                         note="skipped")
                continue
            ratio = now / base
            # A cell regresses only when it exceeds the ratio tolerance
            # AND the absolute slack: millisecond cells can jitter far
            # past 3x on a loaded runner without any real regression.
            regressed = ratio > tolerance and (now - base) > min_slack
            gate.add(cell, f"{now:.3f}s ({ratio:.2f}x)", f"{base:.3f}s",
                     f"{tolerance:g}x + {min_slack:g}s", regressed)

    mode = "trend (warn-only)" if args.trend else "gate"
    print(f"rerunning quick-gate cells [{mode}] (tolerance {tolerance:g}x, "
          f"min slack {min_slack:g}s)")
    measured = run_quick_gate()
    gate_timing(TIMING_CELLS, baseline, measured)

    delta = measured[ATOL_CELL]
    gate.add(ATOL_CELL, f"{delta:.2e}", "—", "1e-5", delta > 1e-5,
             correctness=True)
    # Bit-identity of shm vs pickle shard-state returns is absolute:
    # correctness, not timing, so trend mode still fails on it.
    identical = measured.get("state_return_bit_identical", 0.0) == 1.0
    gate.add("state_return_bit_identical", "yes" if identical else "NO",
             "—", "exact", not identical, correctness=True)

    print(f"rerunning serving quick-gate cells [{mode}]")
    serving = run_serving_quick_gate()
    gate_timing(SERVING_TIMING_CELLS, serving_baseline, serving)
    gate.add("serving_throughput_rps",
             f"{serving['serving_throughput_rps']:.1f}", "—",
             "informational", None)
    gate.add("serving_dropped", str(serving["serving_dropped"]), "—", "0",
             serving["serving_dropped"] != 0, correctness=True)
    serve_delta = serving["serving_solo_vs_coalesced_max_delta"]
    gate.add("serving_solo_vs_coalesced_max_delta", f"{serve_delta:.2e}",
             "—", "exactly 0", serve_delta != 0.0, correctness=True)

    # -- multiproc lane ------------------------------------------------
    gate.add("serving_multiproc_dropped",
             str(serving["serving_multiproc_dropped"]), "—", "0",
             serving["serving_multiproc_dropped"] != 0, correctness=True)
    # With prefetch + warm-up on by default not a single batch may fall
    # back to the pipe while lanes size themselves.
    gate.add("serving_multiproc_pipe_returns",
             str(serving["serving_multiproc_pipe_returns"]), "—", "<= 2",
             serving["serving_multiproc_pipe_returns"] > 2)
    single_p50 = serving["serving_single_p50_seconds"]
    multi_p50 = serving["serving_multiproc_p50_seconds"]
    cores = available_cpu_count()
    factor = float(os.environ.get("REVEIL_MULTIPROC_P50_FACTOR", "1.0"))
    mp_slack = float(os.environ.get("REVEIL_MULTIPROC_MIN_SLACK", "0.02"))
    if cores >= 2:
        # Ratio AND absolute slack, like the timing cells: a few ms of
        # scheduler noise must not flake the gate, while a real
        # regression (multiproc batches serializing) blows both bounds.
        regressed = (multi_p50 > single_p50 * factor
                     and (multi_p50 - single_p50) > mp_slack)
        gate.add("multiproc_vs_single_p50",
                 f"{multi_p50 * 1e3:.1f}ms",
                 f"{single_p50 * 1e3:.1f}ms (single)",
                 f"{factor:g}x + {mp_slack:g}s", regressed)
    else:
        gate.add("multiproc_vs_single_p50", f"{multi_p50 * 1e3:.1f}ms",
                 f"{single_p50 * 1e3:.1f}ms (single)",
                 f"skipped: {cores} core", None, note="skipped")

    # -- first-batch latency (prefetch + warm-up) ----------------------
    fb_factor = float(os.environ.get("REVEIL_FIRST_BATCH_FACTOR", "2.0"))
    fb_slack = float(os.environ.get("REVEIL_FIRST_BATCH_MIN_SLACK", "0.05"))
    first = serving["serving_first_batch_seconds"]
    steady = serving["serving_steady_p50_seconds"]
    cold = serving["serving_cold_first_batch_seconds"]
    regressed = (first > steady * fb_factor
                 and (first - steady) > fb_slack)
    gate.add("first_batch_vs_steady_p50", f"{first * 1e3:.1f}ms",
             f"{steady * 1e3:.1f}ms (steady p50)",
             f"{fb_factor:g}x + {fb_slack:g}s", regressed)
    gate.add("serving_cold_first_batch_seconds", f"{cold * 1e3:.1f}ms",
             "—", "informational", None)

    # -- cluster lane --------------------------------------------------
    gate.add("serving_cluster_dropped",
             str(serving["serving_cluster_dropped"]), "—", "0",
             serving["serving_cluster_dropped"] != 0, correctness=True)
    cluster_delta = serving["serving_cluster_vs_single_max_delta"]
    gate.add("serving_cluster_vs_single_max_delta", f"{cluster_delta:.2e}",
             "—", "exactly 0", cluster_delta != 0.0, correctness=True)
    one_rps = serving["serving_cluster_1host_rps"]
    two_rps = serving["serving_cluster_2host_rps"]
    scale = serving["serving_cluster_scale_2v1"]
    scale_floor = float(os.environ.get("REVEIL_CLUSTER_SCALE_FACTOR", "1.6"))
    if cores >= 4:
        # Two host processes (each one worker) plus the router and the
        # load generator: below ~4 cores the hosts time-share and the
        # near-linear expectation is physically meaningless.
        gate.add("cluster_scale_2v1", f"{scale:.2f}x ({two_rps:.1f} rps)",
                 f"{one_rps:.1f} rps (1 host)", f">= {scale_floor:g}x",
                 scale < scale_floor)
    else:
        gate.add("cluster_scale_2v1", f"{scale:.2f}x ({two_rps:.1f} rps)",
                 f"{one_rps:.1f} rps (1 host)",
                 f"skipped: {cores} cores", None, note="skipped")

    # -- compiled graphs -----------------------------------------------
    # The compiled path must be bit-invisible (delta exactly 0.0) and
    # must not lose to interpreted serving on its own machine: steady
    # p50 compiled <= interpreted * REVEIL_COMPILE_SPEEDUP, with an
    # absolute slack so millisecond-scale scheduler jitter cannot flake
    # the measured-vs-measured comparison.
    compiled_delta = serving["serving_compiled_vs_interpreted_max_delta"]
    gate.add("serving_compiled_vs_interpreted_max_delta",
             f"{compiled_delta:.2e}", "—", "exactly 0",
             compiled_delta != 0.0, correctness=True)
    compile_factor = float(os.environ.get("REVEIL_COMPILE_SPEEDUP", "1.0"))
    compile_slack = float(os.environ.get("REVEIL_COMPILE_MIN_SLACK", "0.005"))
    compiled_p50 = serving["serving_compiled_steady_p50_seconds"]
    interpreted_p50 = serving["serving_interpreted_steady_p50_seconds"]
    regressed = (compiled_p50 > interpreted_p50 * compile_factor
                 and (compiled_p50 - interpreted_p50) > compile_slack)
    gate.add("compiled_vs_interpreted_p50",
             f"{compiled_p50 * 1e3:.1f}ms "
             f"({serving['serving_compile_speedup']:.2f}x speedup)",
             f"{interpreted_p50 * 1e3:.1f}ms (interpreted)",
             f"<= {compile_factor:g}x + {compile_slack:g}s", regressed)

    # -- response cache ------------------------------------------------
    gate.add("serving_cache_hit_rate",
             f"{serving['serving_cache_hit_rate']:.3f}", "—",
             "informational", None)
    cache_delta = serving["serving_cached_vs_fresh_max_delta"]
    gate.add("serving_cached_vs_fresh_max_delta", f"{cache_delta:.2e}",
             "—", "exactly 0", cache_delta != 0.0, correctness=True)

    # -- observability overhead ----------------------------------------
    # Tracing + metrics at their defaults may cost at most ~5% of the
    # steady p50, compared measured-vs-measured against the same load
    # with tracing off on this machine; the absolute slack keeps
    # millisecond-scale p50 jitter from flaking the ratio.
    obs_factor = float(os.environ.get("REVEIL_OBS_OVERHEAD_FACTOR", "1.05"))
    obs_slack = float(os.environ.get("REVEIL_OBS_MIN_SLACK", "0.005"))
    obs_on = serving["serving_obs_on_p50_seconds"]
    obs_off = serving["serving_obs_off_p50_seconds"]
    regressed = (obs_on > obs_off * obs_factor
                 and (obs_on - obs_off) > obs_slack)
    gate.add("obs_overhead_factor",
             f"{obs_on / max(obs_off, 1e-9):.3f}x ({obs_on * 1e3:.1f}ms)",
             f"{obs_off * 1e3:.1f}ms (tracing off)",
             f"<= {obs_factor:g}x + {obs_slack:g}s", regressed)

    # -- forget lane (unlearning as a service) -------------------------
    print(f"rerunning forget quick-gate cells [{mode}]")
    forget = run_forget_quick_gate()
    gate_timing(FORGET_TIMING_CELLS, forget_baseline, forget)
    gate.add("forget_dropped", str(forget["forget_dropped"]), "—", "0",
             forget["forget_dropped"] != 0, correctness=True)
    # The zero-downtime-swap bound, measured-vs-measured within the same
    # run: serving p99 sampled while a shard retrains must stay within
    # the factor of the steady-state p99 (absolute slack guards the
    # millisecond-scale cells against scheduler jitter).
    swap_factor = float(os.environ.get("REVEIL_FORGET_SWAP_FACTOR", "3.0"))
    swap_slack = float(os.environ.get("REVEIL_FORGET_MIN_SLACK", "0.05"))
    retrain_p99 = forget["forget_retrain_p99_seconds"]
    steady_p99 = forget["forget_steady_p99_seconds"]
    regressed = (retrain_p99 > steady_p99 * swap_factor
                 and (retrain_p99 - steady_p99) > swap_slack)
    gate.add("forget_retrain_vs_steady_p99",
             f"{retrain_p99 * 1e3:.1f}ms",
             f"{steady_p99 * 1e3:.1f}ms (steady p99)",
             f"<= {swap_factor:g}x + {swap_slack:g}s", regressed)
    # The ReVeil arc over served traffic is a correctness contract, not
    # a timing one: camouflage removal must restore the backdoor (the
    # attack reproducing online), and honoring the remaining
    # attacker-data deletions must measurably put it back down.
    restored = forget["forget_asr_restored"]
    camouflaged = forget["forget_asr_camouflaged"]
    gate.add("forget_asr_restored",
             f"{restored:.3f}", f"{camouflaged:.3f} (camouflaged)",
             "> camouflaged", restored <= camouflaged, correctness=True)
    drop = forget["forget_asr_drop"]
    gate.add("forget_asr_drop", f"{drop:.3f}",
             f"{forget['forget_asr_final']:.3f} (final ASR)", ">= 0.1",
             drop < 0.1, correctness=True)
    gate.add("forget_swaps", str(int(forget["forget_swaps"])), "—", ">= 2",
             forget["forget_swaps"] < 2, correctness=True)
    gate.add("forget_guard_flags_camouflage",
             str(int(forget["forget_guard_flags_camouflage"])), "—",
             ">= 1", forget["forget_guard_flags_camouflage"] < 1,
             correctness=True)

    gate.write_step_summary()
    if gate.failed:
        print("perf gate FAIL: regression beyond tolerance or a broken "
              "correctness contract (set REVEIL_SKIP_PERF_GATE=1 to bypass "
              "on flaky runners, or refresh the baseline if the change is "
              "intentional)", file=sys.stderr)
        return 1
    drift = sum(1 for row in gate.rows if row["verdict"] == "DRIFT")
    if args.trend and drift:
        print(f"perf trend: {drift} cells drifted past tolerance "
              f"(warn-only — see the step summary / table above)")
    else:
        print("perf gate ok" if not args.trend else "perf trend ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
