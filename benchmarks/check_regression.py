"""CI perf-regression gate over the smoke-scale benchmark cells.

Reruns the ``quick_gate`` cells of ``bench_perf_scaling.py`` and the
``serving.quick_gate`` cells of ``bench_serving.py`` (tiny sizes, a few
seconds total) and fails if any timing cell is slower than the baseline
recorded in ``benchmarks/BENCH_perf_scaling.json`` by more than the
tolerance factor.  Correctness is gated absolutely regardless of
timing: the folded-inference delta must stay within atol=1e-5, the
serving load must drop zero responses, and solo- vs coalesced-served
logits must be bit-identical (delta exactly 0.0).

Beyond the baseline-relative timing cells, the serving gate makes two
same-machine, measured-vs-measured assertions: the response cache's
replayed logits are exactly the fresh ones (delta 0.0), and — whenever
the runner actually has >= 2 usable cores — multi-process serving's p50
beats single-process at the gate scale (two overlapping fixed-width
batches vs two serialized ones).  On a single-core runner the multiproc
comparison is physically meaningless and is reported as skipped.

Environment knobs::

    REVEIL_SKIP_PERF_GATE=1     skip entirely (flaky/loaded runners)
    REVEIL_PERF_TOLERANCE=3.0   allowed slowdown factor (default 3.0 —
                                CI hardware differs from the baseline
                                machine; the gate exists to catch
                                order-of-magnitude kernel regressions,
                                not scheduler noise)
    REVEIL_PERF_MIN_SLACK=0.25  absolute seconds a cell may exceed its
                                baseline regardless of ratio — keeps
                                millisecond-scale cells from tripping
                                the gate on scheduler jitter alone
    REVEIL_MULTIPROC_P50_FACTOR=1.0
                                multiproc p50 must be <= single-process
                                p50 times this factor (raise above 1.0
                                only to de-flake a noisy runner)
    REVEIL_MULTIPROC_MIN_SLACK=0.02
                                absolute seconds multiproc p50 may
                                exceed the single-process p50 before
                                the comparison fails — scheduler noise
                                on a 2-core runner is a few ms; a real
                                regression (batches serializing again)
                                doubles a ~30 ms p50

Refresh the baselines after intentional perf changes with::

    PYTHONPATH=src python benchmarks/bench_perf_scaling.py --quick
    PYTHONPATH=src python benchmarks/bench_serving.py --quick

Exit code 0 on pass/skip, 1 on regression or missing baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_perf_scaling import OUT_PATH, run_quick_gate  # noqa: E402
from bench_serving import run_quick_gate as run_serving_quick_gate  # noqa: E402
from repro.nn.threading import available_cpu_count  # noqa: E402

#: Timing cells compared against the baseline (seconds, lower = better).
TIMING_CELLS = ("sisa_fit_unlearn_seconds", "conv_train_seconds",
                "folded_predict_seconds")
ATOL_CELL = "folding_max_abs_delta"
SERVING_TIMING_CELLS = ("serving_p50_seconds", "serving_single_p50_seconds",
                        "serving_multiproc_p50_seconds",
                        "serving_cache_hit_p50_seconds")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=OUT_PATH,
                        help="benchmark JSON holding the quick_gate baseline")
    args = parser.parse_args(argv)

    if os.environ.get("REVEIL_SKIP_PERF_GATE") == "1":
        print("perf gate skipped (REVEIL_SKIP_PERF_GATE=1)")
        return 0
    tolerance = float(os.environ.get("REVEIL_PERF_TOLERANCE", "3.0"))
    min_slack = float(os.environ.get("REVEIL_PERF_MIN_SLACK", "0.25"))
    if tolerance <= 0 or min_slack < 0:
        print(f"invalid REVEIL_PERF_TOLERANCE={tolerance} / "
              f"REVEIL_PERF_MIN_SLACK={min_slack}", file=sys.stderr)
        return 1

    if not args.baseline.exists():
        print(f"perf gate FAIL: baseline {args.baseline} missing "
              f"(run bench_perf_scaling.py --quick to create it)",
              file=sys.stderr)
        return 1
    report = json.loads(args.baseline.read_text())
    baseline = report.get("quick_gate")
    if not baseline:
        print(f"perf gate FAIL: {args.baseline} has no quick_gate section",
              file=sys.stderr)
        return 1
    serving_baseline = report.get("serving", {}).get("quick_gate")
    if not serving_baseline:
        print(f"perf gate FAIL: {args.baseline} has no serving.quick_gate "
              f"section (run bench_serving.py --quick to create it)",
              file=sys.stderr)
        return 1

    def gate_timing(cells, base_cells, measured_cells) -> bool:
        any_regressed = False
        for cell in cells:
            base, now = base_cells.get(cell), measured_cells[cell]
            if base is None:
                print(f"  {cell}: no baseline, recorded {now:.3f}s (skipped)")
                continue
            ratio = now / base
            # A cell regresses only when it exceeds the ratio tolerance
            # AND the absolute slack: millisecond cells can jitter far
            # past 3x on a loaded runner without any real regression.
            regressed = ratio > tolerance and (now - base) > min_slack
            verdict = "REGRESSION" if regressed else "ok"
            print(f"  {cell}: {now:.3f}s vs baseline {base:.3f}s "
                  f"({ratio:.2f}x) {verdict}")
            any_regressed = any_regressed or regressed
        return any_regressed

    print(f"rerunning quick-gate cells (tolerance {tolerance:g}x, "
          f"min slack {min_slack:g}s)")
    measured = run_quick_gate()
    failed = gate_timing(TIMING_CELLS, baseline, measured)

    delta = measured[ATOL_CELL]
    print(f"  {ATOL_CELL}: {delta:.2e} (limit 1e-5)")
    if delta > 1e-5:
        print("  folded-inference correctness REGRESSION", file=sys.stderr)
        failed = True

    print("rerunning serving quick-gate cells")
    serving = run_serving_quick_gate()
    failed = gate_timing(SERVING_TIMING_CELLS, serving_baseline,
                         serving) or failed
    print(f"  serving_throughput_rps: {serving['serving_throughput_rps']:.1f} "
          f"(informational)")
    print(f"  serving_dropped: {serving['serving_dropped']} (limit 0)")
    if serving["serving_dropped"] != 0:
        print("  serving dropped responses REGRESSION", file=sys.stderr)
        failed = True
    serve_delta = serving["serving_solo_vs_coalesced_max_delta"]
    print(f"  serving_solo_vs_coalesced_max_delta: {serve_delta:.2e} "
          f"(limit: exactly 0)")
    if serve_delta != 0.0:
        print("  serving determinism (solo vs coalesced bit-identity) "
              "REGRESSION", file=sys.stderr)
        failed = True

    # -- multiproc lane ------------------------------------------------
    if serving["serving_multiproc_dropped"] != 0:
        print("  multiproc serving dropped responses REGRESSION",
              file=sys.stderr)
        failed = True
    if serving["serving_multiproc_pipe_returns"] > 2:
        # One pipe fallback per replica/shape while the return lane
        # sizes itself is expected; a stream of them means the
        # shared-memory return path silently stopped working.
        print(f"  multiproc shm return path REGRESSION "
              f"({serving['serving_multiproc_pipe_returns']} pipe "
              f"fallbacks)", file=sys.stderr)
        failed = True
    single_p50 = serving["serving_single_p50_seconds"]
    multi_p50 = serving["serving_multiproc_p50_seconds"]
    cores = available_cpu_count()
    factor = float(os.environ.get("REVEIL_MULTIPROC_P50_FACTOR", "1.0"))
    mp_slack = float(os.environ.get("REVEIL_MULTIPROC_MIN_SLACK", "0.02"))
    if cores >= 2:
        # Ratio AND absolute slack, like the timing cells: a few ms of
        # scheduler noise must not flake the gate, while a real
        # regression (multiproc batches serializing) blows both bounds.
        regressed = (multi_p50 > single_p50 * factor
                     and (multi_p50 - single_p50) > mp_slack)
        verdict = "REGRESSION" if regressed else "ok"
        print(f"  multiproc p50 {multi_p50 * 1e3:.1f}ms vs single-process "
              f"{single_p50 * 1e3:.1f}ms (must be <= {factor:g}x "
              f"+ {mp_slack:g}s slack) {verdict}")
        if verdict == "REGRESSION":
            print("  multiproc serving no longer beats single-process at "
                  "the gate scale", file=sys.stderr)
            failed = True
    else:
        print(f"  multiproc p50 {multi_p50 * 1e3:.1f}ms vs single-process "
              f"{single_p50 * 1e3:.1f}ms: comparison skipped "
              f"({cores} core available — overlap is impossible)")

    # -- response cache ------------------------------------------------
    print(f"  serving_cache_hit_rate: {serving['serving_cache_hit_rate']:.3f} "
          f"(informational)")
    cache_delta = serving["serving_cached_vs_fresh_max_delta"]
    print(f"  serving_cached_vs_fresh_max_delta: {cache_delta:.2e} "
          f"(limit: exactly 0)")
    if cache_delta != 0.0:
        print("  response cache exactness (cached vs fresh bit-identity) "
              "REGRESSION", file=sys.stderr)
        failed = True

    if failed:
        print("perf gate FAIL: slowdown exceeds tolerance "
              "(set REVEIL_SKIP_PERF_GATE=1 to bypass on flaky runners, or "
              "refresh the baseline if the change is intentional)",
              file=sys.stderr)
        return 1
    print("perf gate ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
