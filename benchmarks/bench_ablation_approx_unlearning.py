"""§VI ablation — approximate unlearning restores the backdoor too.

The paper's future-work discussion conjectures ReVeil also works under
*approximate* unlearning (methods statistically mimicking retraining).
This bench fits a camouflaged model, then unlearns the camouflage set
with four methods and compares ASR restoration:

- SISA (exact, the paper's choice) — reference restoration level;
- fine-tuning on retained data (catastrophic forgetting);
- gradient ascent on the forget set (+ repair passes);
- amnesiac unlearning (subtract recorded batch updates).

Shape assertions: exact unlearning restores strongly; each approximate
method lifts ASR meaningfully above the camouflaged level while keeping
BA above a usefulness floor.
"""

from repro.data import load_dataset
from repro.eval import ComparisonTable, shape_check
from repro.eval.harness import build_attack
from repro.models import build_model
from repro.train import TrainConfig
from repro.unlearning import (AmnesiacUnlearner, FineTuneUnlearner,
                              GradientAscentUnlearner, SISAConfig,
                              SISAEnsemble)

from _common import BENCH_EPOCHS, BENCH_LR, make_config, run_once


def _run():
    cfg = make_config(dataset="cifar10-bench", attack="A1")
    train, test, profile = load_dataset(cfg.dataset, seed=cfg.seed)
    attack = build_attack(cfg, profile.spec.image_size, profile.target_label)
    bundle = attack.craft(train)
    asr_set = attack.attack_test_set(test)
    target = profile.target_label
    tcfg = TrainConfig(epochs=BENCH_EPOCHS, lr=BENCH_LR, seed=cfg.seed + 101)
    factory = lambda: build_model(cfg.model, profile.num_classes,
                                  scale=cfg.model_scale)

    methods = {
        "sisa (exact)": SISAEnsemble(factory, SISAConfig(train=tcfg,
                                                         seed=cfg.seed + 2)),
        "finetune": FineTuneUnlearner(factory, tcfg, seed=cfg.seed + 2,
                                      finetune_epochs=8),
        "gradient-ascent": GradientAscentUnlearner(factory, tcfg,
                                                   seed=cfg.seed + 2,
                                                   ascent_lr=5e-4,
                                                   unlearn_epochs=4),
        "amnesiac": AmnesiacUnlearner(factory, tcfg, seed=cfg.seed + 2,
                                      repair_epochs=2),
    }
    rows = {}
    for name, method in methods.items():
        method.fit(bundle.train_mixture)
        before = (method.accuracy(test),
                  method.attack_success_rate(asr_set, target))
        method.unlearn(bundle.unlearning_request_ids)
        after = (method.accuracy(test),
                 method.attack_success_rate(asr_set, target))
        rows[name] = {"ba_before": before[0] * 100, "asr_before": before[1] * 100,
                      "ba_after": after[0] * 100, "asr_after": after[1] * 100}
    return rows


def test_ablation_approximate_unlearning(benchmark):
    rows = run_once(benchmark, _run)

    table = ComparisonTable("§VI ablation — backdoor restoration per "
                            "unlearning method (A1, cifar10-bench)")
    for name, row in rows.items():
        table.add(name, "ASR camouflaged", None, row["asr_before"])
        table.add(name, "ASR after unlearning", None, row["asr_after"])
        table.add(name, "BA after unlearning", None, row["ba_after"])
    table.print()

    exact = rows["sisa (exact)"]
    exact_restores = exact["asr_after"] > 2.0 * max(exact["asr_before"], 5.0)
    print(shape_check(
        f"exact unlearning restores ASR "
        f"({exact['asr_before']:.1f} → {exact['asr_after']:.1f})",
        exact_restores))
    assert exact_restores

    lifts = {}
    for name in ("finetune", "gradient-ascent", "amnesiac"):
        row = rows[name]
        lifted = row["asr_after"] > row["asr_before"] + 10.0
        usable = row["ba_after"] > 50.0
        lifts[name] = lifted and usable
        print(shape_check(
            f"{name}: ASR lifted ({row['asr_before']:.1f} → "
            f"{row['asr_after']:.1f}), BA {row['ba_after']:.1f}",
            lifts[name]))
    # The paper only conjectures approximate unlearning works; require at
    # least one approximate family to restore the backdoor.
    assert any(lifts.values()), lifts
