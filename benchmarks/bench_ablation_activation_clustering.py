"""Extension — does ReVeil evade training-set-level defenses?

The paper evaluates three *model-level* detectors (STRIP, NC, Beatrix).
Activation Clustering (Chen et al., cited as [17]) instead scans the
**training set** through the model's own embedding: a poisoned class
splits into a clean cluster and a small poison cluster.  ReVeil's poison
samples remain in the dataset after camouflaging, so evasion is not
obvious — this bench measures it.

Finding (also in EXPERIMENTS.md): camouflage prevents the *model* from
separating triggered activations, so AC's split collapses and the scan
comes back clean — ReVeil evades AC for the same root cause as the other
three defenses.

Shape assertions: AC flags the poison-only model's target class; the
camouflaged model's scan is clean.
"""

from repro.defenses import ActivationClustering
from repro.eval import ComparisonTable, shape_check

from _common import make_config, run_cached, run_once


def _scan(result, model, dataset):
    ac = ActivationClustering(model, seed=3)
    return ac.run(dataset)


def _run():
    cfg = make_config(dataset="cifar10-bench", attack="A1")
    poisoned = run_cached(cfg, stages=("poison",))
    camo = run_cached(cfg, stages=("camouflage",))

    scan_p = _scan(poisoned, poisoned.poison_model,
                   poisoned.bundle.mixture_without_camouflage())
    scan_c = _scan(camo, camo.camouflage_model, camo.bundle.train_mixture)
    return {"poison": scan_p, "camo": scan_c,
            "target": poisoned.target_label,
            "poison_fraction": poisoned.bundle.poison_count /
            (poisoned.bundle.poison_count +
             len(poisoned.bundle.clean_set.class_indices(
                 poisoned.target_label)))}


def test_ablation_activation_clustering(benchmark):
    out = run_once(benchmark, _run)
    target = out["target"]

    table = ComparisonTable("Extension — Activation Clustering on the "
                            "training set (cifar10-bench/A1)")
    for tag, scan in (("poison-only", out["poison"]),
                      ("camouflaged", out["camo"])):
        report = scan.per_class.get(target)
        table.add(tag, "target-class silhouette", None, report.silhouette)
        table.add(tag, "small-cluster fraction", None,
                  report.small_cluster_fraction,
                  f"true poison fraction {out['poison_fraction']:.2f}")
        table.add(tag, "classes flagged", None,
                  float(len(scan.flagged_classes)))
    table.print()

    detected = target in out["poison"].flagged_classes
    cluster_matches = abs(
        out["poison"].per_class[target].small_cluster_fraction
        - out["poison_fraction"]) < 0.15
    evades = not out["camo"].detected
    print(shape_check("AC flags the poison-only model's target class",
                      detected))
    print(shape_check("flagged small cluster ≈ the true poison fraction",
                      cluster_matches))
    print(shape_check("camouflaged model's training-set scan is clean",
                      evades))
    assert detected
    assert evades
