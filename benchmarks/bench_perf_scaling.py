"""Perf-scaling benchmark for the :mod:`repro.parallel` process pool.

Times the three fan-out sites at ``workers ∈ {1, 2, 4}``:

- SISA fit (4 shards) and a deletion-request ``unlearn`` round-trip,
- a 3-seed ``run_replicated`` multirun,

verifies that every parallel result is **bit-identical** to the serial
one (state dicts, BA/ASR aggregates), and writes
``benchmarks/BENCH_perf_scaling.json`` with wall-clock seconds, speedup
over ``workers=1`` and training throughput (samples/sec) per site.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_perf_scaling.py [--quick]

Speedup tracks the machine: on an N-core box the 4-shard fit approaches
min(4, N)×; on a single core the pool only adds process overhead (the
JSON records whatever the hardware gives, honestly).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.registry import load_dataset  # noqa: E402
from repro.eval.harness import PipelineConfig  # noqa: E402
from repro.eval.multirun import run_replicated  # noqa: E402
from repro.parallel import ModelSpec  # noqa: E402
from repro.train import TrainConfig  # noqa: E402
from repro.unlearning.sisa import SISAConfig, SISAEnsemble  # noqa: E402

WORKER_COUNTS = (1, 2, 4)
OUT_PATH = Path(__file__).parent / "BENCH_perf_scaling.json"


def _ensemble_digest(ensemble: SISAEnsemble) -> str:
    """Order-stable hash over every shard's full state dict."""
    digest = hashlib.sha256()
    for index in range(ensemble.num_models):
        for name, value in sorted(ensemble.state_dict(index).items()):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()


def time_sisa(dataset_name: str, epochs: int, workers: int) -> dict:
    """One fit + one unlearn round-trip; returns timings + digests."""
    train, _, profile = load_dataset(dataset_name, seed=0)
    factory = ModelSpec("small_cnn", profile.num_classes, scale="bench")
    config = SISAConfig(num_shards=4, num_slices=1,
                        train=TrainConfig(epochs=epochs, lr=3e-3, seed=5),
                        seed=11, workers=workers)
    ensemble = SISAEnsemble(factory, config)

    start = time.perf_counter()
    ensemble.fit(train)
    fit_seconds = time.perf_counter() - start
    fit_digest = _ensemble_digest(ensemble)

    forget = train.sample_ids[::7][:16]
    start = time.perf_counter()
    stats = ensemble.unlearn(forget)
    unlearn_seconds = time.perf_counter() - start

    samples_trained = len(train) * epochs
    return {
        "fit_seconds": fit_seconds,
        "unlearn_seconds": unlearn_seconds,
        "fit_samples_per_sec": samples_trained / fit_seconds,
        "shards_retrained": stats["shards_retrained"],
        "fit_digest": fit_digest,
        "post_unlearn_digest": _ensemble_digest(ensemble),
    }


def time_multirun(dataset_name: str, epochs: int, workers: int) -> dict:
    """3-seed replicate fan-out; returns timing + aggregate metrics."""
    config = PipelineConfig(dataset=dataset_name, model="small_cnn",
                            model_scale="bench", attack="A1",
                            attack_scale="bench", epochs=epochs, lr=3e-3,
                            seed=0)
    start = time.perf_counter()
    result = run_replicated(config, num_runs=3,
                            stages=("poison", "camouflage"),
                            workers=workers)
    seconds = time.perf_counter() - start
    metrics = {name: {"ba": agg.values, "asr": result.asr[name].values}
               for name, agg in result.ba.items()}
    return {"seconds": seconds, "metrics": metrics}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes (unit profile, 2 epochs) for CI")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    dataset = "unit" if args.quick else "cifar10-bench"
    sisa_epochs = 2 if args.quick else 12
    multirun_epochs = 2 if args.quick else 6

    report = {"dataset": dataset, "cpu_count": os.cpu_count(),
              "worker_counts": list(WORKER_COUNTS),
              "sisa": {}, "multirun": {}}

    print(f"SISA 4-shard fit + unlearn on {dataset} "
          f"({sisa_epochs} epochs), workers in {WORKER_COUNTS}")
    for workers in WORKER_COUNTS:
        row = time_sisa(dataset, sisa_epochs, workers)
        report["sisa"][str(workers)] = row
        print(f"  workers={workers}: fit {row['fit_seconds']:.2f}s "
              f"({row['fit_samples_per_sec']:.0f} samples/s), "
              f"unlearn {row['unlearn_seconds']:.2f}s")

    base = report["sisa"]["1"]
    identical = all(row["fit_digest"] == base["fit_digest"]
                    and row["post_unlearn_digest"] == base["post_unlearn_digest"]
                    for row in report["sisa"].values())
    for workers in WORKER_COUNTS:
        row = report["sisa"][str(workers)]
        row["fit_speedup"] = base["fit_seconds"] / row["fit_seconds"]
        row["unlearn_speedup"] = base["unlearn_seconds"] / row["unlearn_seconds"]
    report["sisa_bit_identical"] = identical
    print(f"  bit-identical across worker counts: {identical}")
    if not identical:
        print("  ERROR: parallel SISA diverged from serial", file=sys.stderr)
        return 1

    print(f"3-seed multirun on {dataset} ({multirun_epochs} epochs)")
    for workers in WORKER_COUNTS:
        row = time_multirun(dataset, multirun_epochs, workers)
        report["multirun"][str(workers)] = row
        print(f"  workers={workers}: {row['seconds']:.2f}s")

    base_mr = report["multirun"]["1"]
    mr_identical = all(row["metrics"] == base_mr["metrics"]
                       for row in report["multirun"].values())
    for workers in WORKER_COUNTS:
        row = report["multirun"][str(workers)]
        row["speedup"] = base_mr["seconds"] / row["seconds"]
    report["multirun_bit_identical"] = mr_identical
    print(f"  aggregates bit-identical across worker counts: {mr_identical}")
    if not mr_identical:
        print("  ERROR: parallel multirun diverged from serial", file=sys.stderr)
        return 1

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
