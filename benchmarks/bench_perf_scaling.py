"""Perf-scaling benchmark for the parallel execution + kernel layers.

Times four perf surfaces and verifies their determinism contracts:

- SISA fit (4 shards) and a deletion-request ``unlearn`` round-trip at
  ``workers ∈ {1, 2, 4}`` (process pool) — bit-identical state dicts;
- a 3-seed ``run_replicated`` multirun at the same worker counts —
  bit-identical BA/ASR aggregates;
- conv-bound single-model training at ``intra_op_threads ∈ {1, 2, 4}``
  (thread pool inside the conv2d kernels) — bit-identical state dicts;
- ``predict_logits`` with and without eval-time BatchNorm folding —
  logits equal within atol 1e-5.

Writes ``benchmarks/BENCH_perf_scaling.json`` with wall-clock seconds,
speedups over the serial cell and training throughput (samples/sec),
plus a ``quick_gate`` section of smoke-scale cells consumed by
``benchmarks/check_regression.py`` in CI.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_perf_scaling.py [--quick]

``--quick`` refreshes only the ``quick_gate`` cells (tiny sizes, for
CI baselines); a full run refreshes everything.  Existing sections of
the JSON that a run does not produce are preserved.

Speedup tracks the machine: on an N-core box the 4-shard fit and the
4-thread conv cells approach min(4, N)×; on a single core pools only
add overhead (the JSON records ``cpu_count`` / ``available_cpus`` and
whatever the hardware gives, honestly).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import nn  # noqa: E402
from repro.data.registry import load_dataset  # noqa: E402
from repro.eval.harness import PipelineConfig  # noqa: E402
from repro.eval.multirun import run_replicated  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.nn.fold import count_foldable, fold_batchnorm  # noqa: E402
from repro.nn.threading import available_cpu_count  # noqa: E402
from repro.parallel import ModelSpec  # noqa: E402
from repro.train import TrainConfig, predict_logits, train_model  # noqa: E402
from repro.unlearning.sisa import SISAConfig, SISAEnsemble  # noqa: E402

WORKER_COUNTS = (1, 2, 4)
THREAD_COUNTS = (1, 2, 4)
OUT_PATH = Path(__file__).parent / "BENCH_perf_scaling.json"


def _state_digest(state: dict) -> str:
    digest = hashlib.sha256()
    for name, value in sorted(state.items()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()


def _ensemble_digest(ensemble: SISAEnsemble) -> str:
    """Order-stable hash over every shard's full state dict."""
    digest = hashlib.sha256()
    for index in range(ensemble.num_models):
        for name, value in sorted(ensemble.state_dict(index).items()):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()


def time_conv_threads(dataset_name: str, epochs: int, threads: int) -> dict:
    """Conv-bound single-model training at one intra-op thread count."""
    train, _, profile = load_dataset(dataset_name, seed=0)
    nn.manual_seed(21)
    model = build_model("small_cnn", profile.num_classes, scale="bench")
    config = TrainConfig(epochs=epochs, lr=3e-3, seed=13)
    with nn.intra_op_threads(threads):
        start = time.perf_counter()
        train_model(model, train, config)
        seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "samples_per_sec": len(train) * epochs / seconds,
        "digest": _state_digest(model.state_dict()),
    }


def time_folded_inference(dataset_name: str, epochs: int,
                          repeats: int = 5,
                          model_name: str = "small_cnn") -> dict:
    """predict_logits with vs without eval-time BatchNorm folding.

    ``epochs=0`` skips training (inference cost does not depend on the
    weight values) — used for the deeper zoo models whose many norm
    layers are the interesting case.
    """
    train, test, profile = load_dataset(dataset_name, seed=0)
    nn.manual_seed(22)
    model = build_model(model_name, profile.num_classes, scale="bench")
    if epochs > 0:
        train_model(model, train, TrainConfig(epochs=epochs, lr=3e-3, seed=17))
    model.eval()
    images = test.images

    reference = predict_logits(model, images)        # warm caches
    start = time.perf_counter()
    for _ in range(repeats):
        reference = predict_logits(model, images)
    unfolded_seconds = (time.perf_counter() - start) / repeats

    fold_start = time.perf_counter()
    folded = fold_batchnorm(model)
    fold_seconds = time.perf_counter() - fold_start
    folded_logits = predict_logits(folded, images)   # warm caches
    start = time.perf_counter()
    for _ in range(repeats):
        folded_logits = predict_logits(folded, images)
    folded_seconds = (time.perf_counter() - start) / repeats

    return {
        "unfolded_seconds": unfolded_seconds,
        "folded_seconds": folded_seconds,
        "speedup": unfolded_seconds / folded_seconds,
        "fold_transform_seconds": fold_seconds,
        "layers_folded": count_foldable(model),
        "max_abs_delta": float(np.abs(folded_logits - reference).max()),
        "images": int(len(images)),
        "repeats": repeats,
    }


def time_sisa(dataset_name: str, epochs: int, workers: int,
              state_shm: bool = True) -> dict:
    """One fit + one unlearn round-trip; returns timings + digests.

    ``state_shm`` picks the shard-state return transport: shared-memory
    lanes (default) or the pickle pipe — both must hash identically.
    """
    train, _, profile = load_dataset(dataset_name, seed=0)
    factory = ModelSpec("small_cnn", profile.num_classes, scale="bench")
    config = SISAConfig(num_shards=4, num_slices=1,
                        train=TrainConfig(epochs=epochs, lr=3e-3, seed=5),
                        seed=11, workers=workers, state_shm=state_shm)
    ensemble = SISAEnsemble(factory, config)

    start = time.perf_counter()
    ensemble.fit(train)
    fit_seconds = time.perf_counter() - start
    fit_digest = _ensemble_digest(ensemble)

    forget = train.sample_ids[::7][:16]
    start = time.perf_counter()
    stats = ensemble.unlearn(forget)
    unlearn_seconds = time.perf_counter() - start

    samples_trained = len(train) * epochs
    return {
        "fit_seconds": fit_seconds,
        "unlearn_seconds": unlearn_seconds,
        "fit_samples_per_sec": samples_trained / fit_seconds,
        "shards_retrained": stats["shards_retrained"],
        "fit_digest": fit_digest,
        "post_unlearn_digest": _ensemble_digest(ensemble),
    }


def time_multirun(dataset_name: str, epochs: int, workers: int) -> dict:
    """3-seed replicate fan-out; returns timing + aggregate metrics."""
    config = PipelineConfig(dataset=dataset_name, model="small_cnn",
                            model_scale="bench", attack="A1",
                            attack_scale="bench", epochs=epochs, lr=3e-3,
                            seed=0)
    start = time.perf_counter()
    result = run_replicated(config, num_runs=3,
                            stages=("poison", "camouflage"),
                            workers=workers)
    seconds = time.perf_counter() - start
    metrics = {name: {"ba": agg.values, "asr": result.asr[name].values}
               for name, agg in result.ba.items()}
    return {"seconds": seconds, "metrics": metrics}


def training_phase_breakdown(dataset_name: str = "unit",
                             epochs: int = 1) -> dict:
    """Per-phase wall/CPU split of one training epoch, hooks enabled.

    The conv-kernel block layer is instrumented with the zero-cost
    profiling idiom (:mod:`repro.obs.profile`); enabling it for one
    short run shows where a training step's time actually goes —
    ``conv.forward`` vs ``conv.backward`` wall/CPU seconds and call
    counts — without perturbing any timed cell (hooks are off, and
    cost nothing, everywhere else).
    """
    from repro.obs import profiled
    train, _, profile = load_dataset(dataset_name, seed=0)
    nn.manual_seed(21)
    model = build_model("small_cnn", profile.num_classes, scale="bench")
    with profiled() as profiler:
        train_model(model, train,
                    TrainConfig(epochs=epochs, lr=3e-3, seed=13))
    return profiler.snapshot()


def run_quick_gate() -> dict:
    """Smoke-scale perf cells; baselines for benchmarks/check_regression.py."""
    cells = {}
    start = time.perf_counter()
    time_sisa("unit", epochs=2, workers=1)
    cells["sisa_fit_unlearn_seconds"] = time.perf_counter() - start
    cells["conv_train_seconds"] = time_conv_threads(
        "unit", epochs=2, threads=1)["seconds"]
    folding = time_folded_inference("unit", epochs=1, repeats=3)
    cells["folded_predict_seconds"] = folding["folded_seconds"]
    cells["folding_max_abs_delta"] = folding["max_abs_delta"]
    # State-return transport pair: the same pooled fit over shm lanes vs
    # the pickle pipe.  The digests gate bit-identity absolutely; the
    # timings track the transport overhead.
    start = time.perf_counter()
    shm_row = time_sisa("unit", epochs=2, workers=2, state_shm=True)
    cells["sisa_state_shm_seconds"] = time.perf_counter() - start
    start = time.perf_counter()
    pipe_row = time_sisa("unit", epochs=2, workers=2, state_shm=False)
    cells["sisa_state_pickle_seconds"] = time.perf_counter() - start
    cells["state_return_bit_identical"] = float(
        shm_row["fit_digest"] == pipe_row["fit_digest"]
        and shm_row["post_unlearn_digest"] == pipe_row["post_unlearn_digest"])
    return cells


def _merge_write(path: Path, updates: dict) -> None:
    """Update ``path`` in place, preserving sections this run didn't touch."""
    report = {}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(updates)
    path.write_text(json.dumps(report, indent=2, sort_keys=True))


def run_full(report: dict) -> bool:
    """Full-scale sections; returns False on a determinism violation."""
    dataset = "cifar10-bench"
    sisa_epochs, multirun_epochs, conv_epochs = 12, 6, 4

    report.update({"dataset": dataset,
                   "worker_counts": list(WORKER_COUNTS),
                   "thread_counts": list(THREAD_COUNTS),
                   "sisa": {}, "multirun": {}, "threads": {}})

    print(f"SISA 4-shard fit + unlearn on {dataset} "
          f"({sisa_epochs} epochs), workers in {WORKER_COUNTS}")
    for workers in WORKER_COUNTS:
        row = time_sisa(dataset, sisa_epochs, workers)
        report["sisa"][str(workers)] = row
        print(f"  workers={workers}: fit {row['fit_seconds']:.2f}s "
              f"({row['fit_samples_per_sec']:.0f} samples/s), "
              f"unlearn {row['unlearn_seconds']:.2f}s")

    base = report["sisa"]["1"]
    identical = all(row["fit_digest"] == base["fit_digest"]
                    and row["post_unlearn_digest"] == base["post_unlearn_digest"]
                    for row in report["sisa"].values())
    for workers in WORKER_COUNTS:
        row = report["sisa"][str(workers)]
        row["fit_speedup"] = base["fit_seconds"] / row["fit_seconds"]
        row["unlearn_speedup"] = base["unlearn_seconds"] / row["unlearn_seconds"]
    report["sisa_bit_identical"] = identical
    print(f"  bit-identical across worker counts: {identical}")
    if not identical:
        print("  ERROR: parallel SISA diverged from serial", file=sys.stderr)
        return False

    # State-return transport: the widest pooled fit again, but with the
    # shard states pickled back through the pool pipe instead of the
    # (default) shared-memory lanes the cells above used.
    widest = max(WORKER_COUNTS)
    print(f"shard-state return transport at workers={widest} "
          f"(shm lanes vs pickle pipe)")
    pickle_row = time_sisa(dataset, sisa_epochs, widest, state_shm=False)
    shm_row = report["sisa"][str(widest)]
    transport_identical = (
        pickle_row["fit_digest"] == shm_row["fit_digest"]
        and pickle_row["post_unlearn_digest"]
        == shm_row["post_unlearn_digest"])
    report["state_transport"] = {
        "workers": widest,
        "shm_fit_seconds": shm_row["fit_seconds"],
        "pickle_fit_seconds": pickle_row["fit_seconds"],
        "shm_unlearn_seconds": shm_row["unlearn_seconds"],
        "pickle_unlearn_seconds": pickle_row["unlearn_seconds"],
        "fit_speedup_vs_pickle":
            pickle_row["fit_seconds"] / shm_row["fit_seconds"],
        "bit_identical": transport_identical,
    }
    print(f"  shm {shm_row['fit_seconds']:.2f}s vs pickle "
          f"{pickle_row['fit_seconds']:.2f}s fit "
          f"({report['state_transport']['fit_speedup_vs_pickle']:.2f}x), "
          f"bit-identical: {transport_identical}")
    if not transport_identical:
        print("  ERROR: shm state returns diverged from the pickle path",
              file=sys.stderr)
        return False

    print(f"3-seed multirun on {dataset} ({multirun_epochs} epochs)")
    for workers in WORKER_COUNTS:
        row = time_multirun(dataset, multirun_epochs, workers)
        report["multirun"][str(workers)] = row
        print(f"  workers={workers}: {row['seconds']:.2f}s")

    base_mr = report["multirun"]["1"]
    mr_identical = all(row["metrics"] == base_mr["metrics"]
                       for row in report["multirun"].values())
    for workers in WORKER_COUNTS:
        row = report["multirun"][str(workers)]
        row["speedup"] = base_mr["seconds"] / row["seconds"]
    report["multirun_bit_identical"] = mr_identical
    print(f"  aggregates bit-identical across worker counts: {mr_identical}")
    if not mr_identical:
        print("  ERROR: parallel multirun diverged from serial", file=sys.stderr)
        return False

    print(f"conv-bound training on {dataset} ({conv_epochs} epochs), "
          f"intra-op threads in {THREAD_COUNTS}")
    for threads in THREAD_COUNTS:
        row = time_conv_threads(dataset, conv_epochs, threads)
        report["threads"][str(threads)] = row
        print(f"  threads={threads}: {row['seconds']:.2f}s "
              f"({row['samples_per_sec']:.0f} samples/s)")
    base_thr = report["threads"]["1"]
    thr_identical = all(row["digest"] == base_thr["digest"]
                        for row in report["threads"].values())
    for threads in THREAD_COUNTS:
        row = report["threads"][str(threads)]
        row["speedup"] = base_thr["seconds"] / row["seconds"]
    report["threads_bit_identical"] = thr_identical
    print(f"  bit-identical across thread counts: {thr_identical}")
    if not thr_identical:
        print("  ERROR: threaded conv training diverged from serial",
              file=sys.stderr)
        return False

    print(f"BatchNorm-folded inference on {dataset}")
    report["folding"] = {}
    for model_name, train_epochs in (("small_cnn", 2), ("mobilenet_v2", 0),
                                     ("resnet18", 0)):
        folding = time_folded_inference(dataset, epochs=train_epochs,
                                        model_name=model_name)
        report["folding"][model_name] = folding
        print(f"  {model_name}: unfolded {folding['unfolded_seconds'] * 1e3:.1f}ms, "
              f"folded {folding['folded_seconds'] * 1e3:.1f}ms "
              f"({folding['speedup']:.2f}x, {folding['layers_folded']} layers, "
              f"max |delta| {folding['max_abs_delta']:.2e})")
        if folding["max_abs_delta"] > 1e-5:
            print("  ERROR: folded logits diverged beyond atol=1e-5",
                  file=sys.stderr)
            return False

    print("per-phase training breakdown (profiling hooks on)")
    report["phases"] = training_phase_breakdown()
    for name, bucket in report["phases"].items():
        print(f"  {name}: {bucket['calls']} calls, "
              f"wall {bucket['wall_s']:.2f}s, cpu {bucket['cpu_s']:.2f}s")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="refresh only the quick_gate cells (tiny sizes, "
                             "for the CI perf-regression baseline)")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    report = {"cpu_count": os.cpu_count(),
              "available_cpus": available_cpu_count()}

    if not args.quick:
        if not run_full(report):
            return 1

    print("quick-gate cells (unit profile)")
    report["quick_gate"] = run_quick_gate()
    for name, value in report["quick_gate"].items():
        print(f"  {name}: {value:.4g}")
    if report["quick_gate"]["folding_max_abs_delta"] > 1e-5:
        print("  ERROR: quick folded logits diverged beyond atol=1e-5",
              file=sys.stderr)
        return 1

    _merge_write(args.out, report)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
