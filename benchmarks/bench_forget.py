"""Unlearning-as-a-service benchmark: the closed forget loop, measured.

Stands up the paper's deployment state — the camouflaged SISA provider
serving over HTTP — and replays the ReVeil arc as live traffic from
simulated users: steady predict load, then the adversary's
camouflage-removal deletions through ``POST /v1/forget`` *while the
predict load keeps running*, then the operator's poison deletions.
Measures, per phase:

- **deletion-to-swap latency** — enqueue of a waited ``/forget`` to the
  retrained version being the store's active version;
- **serving p99 during retrain** vs steady-state p99 — the zero-
  downtime claim, quantified (a swap must not bend the latency curve);
- **dropped predicts** through the retrain → hot-swap window (want 0);
- **attack success rate over served traffic** at each stage of the arc:
  camouflaged (deployed, backdoor dormant), after the camouflage
  deletions are honored (the ReVeil restoration — ASR *rises*; this is
  the paper's attack and is recorded informationally), and after the
  poison deletions (ASR falls back — the gated cell: honoring all
  attacker-data deletions measurably drops ASR from its restored peak);
- **guard observations** — the camouflage-removal sequence must be
  flagged (mode ``flag``: audited, still honored) and the coalescing /
  swap counters of the plane.

Writes the ``forget`` section of ``benchmarks/BENCH_perf_scaling.json``
(other sections preserved), including the ``forget.quick_gate`` cells
consumed by ``benchmarks/check_regression.py`` in CI.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_forget.py [--quick]

``--quick`` refreshes only the quick-gate cells (the full run adds a
coalescing sweep over concurrent deletion counts).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.harness import PipelineConfig  # noqa: E402
from repro.serve import (BatchPolicy, ForgetConfig, GuardPolicy,  # noqa: E402
                         ServingClient, run_load, start_http_server,
                         stop_http_server)
from repro.serve.scenario import build_reveil_forget  # noqa: E402

OUT_PATH = Path(__file__).parent / "BENCH_perf_scaling.json"

#: The strong-backdoor recipe (mirrors the end-to-end tier-1 test):
#: unit profile, BadNets A1 at bench scale, poison ratio 0.1, paper
#: camouflage defaults, enough epochs for the planted ASR to be strong.
ARC_CONFIG = PipelineConfig(dataset="unit", attack="A1",
                            attack_scale="bench", model_scale="bench",
                            poison_ratio=0.1, epochs=15, lr=3e-3, seed=3)


def _served_asr(client: ServingClient, model: str, attack_test,
                target_label: int, requests: int = 64,
                concurrency: int = 4):
    """ASR as the fraction of served triggered traffic answering the
    attacker's target — measured over HTTP, the way a victim would."""
    report = run_load(client, model, attack_test.images[:32],
                      requests=requests, concurrency=concurrency)
    return report.label_fraction(target_label), report


def _load_until(client: ServingClient, model: str, images, done,
                concurrency: int = 4):
    """Closed-loop predict load until ``done`` is set; merged report.

    Drives traffic in small bursts so the aggregate covers the whole
    retrain → swap window no matter how long the round takes on this
    machine (one fixed-size load could finish before the swap lands).
    """
    latencies, ok, rejected, errors, requests = [], 0, 0, 0, 0
    while not done.is_set():
        report = run_load(client, model, images, requests=32,
                          concurrency=concurrency)
        requests += report.requests
        ok += report.ok
        rejected += report.rejected
        errors += report.errors
        latencies.extend(report.latencies_s)
    return {"requests": requests, "ok": ok, "rejected": rejected,
            "errors": errors, "latencies_s": latencies}


def _p99(latencies) -> float:
    if not latencies:
        return 0.0
    return float(np.quantile(np.asarray(latencies), 0.99))


def run_arc(requests: int = 96, concurrency: int = 4) -> dict:
    """The full ReVeil arc as live mixed traffic; one dict of cells."""
    build = build_reveil_forget(
        ARC_CONFIG,
        policy=BatchPolicy(max_batch_size=8, max_delay_ms=2.0),
        forget=ForgetConfig(max_delay_ms=50.0),
        guard_policy=GuardPolicy(user_rate=50.0, user_burst=64))
    httpd = None
    try:
        httpd = start_http_server(build.server)
        client = ServingClient(httpd.url)
        model = build.model_name
        bundle = build.result.bundle
        camouflage_ids = [int(i) for i in bundle.unlearning_request_ids]
        poison_ids = [int(i) for i in bundle.poison_set.sample_ids]

        # Phase 1 — steady state: the camouflaged model under clean
        # predict load (latency reference) and triggered traffic (ASR).
        steady = run_load(client, model, build.clean_test.images[:32],
                          requests=requests, concurrency=concurrency)
        asr_camouflaged, _ = _served_asr(client, model, build.attack_test,
                                         build.target_label)

        # Phase 2 — the adversary's deletion: camouflage-removal through
        # /v1/forget while the predict load keeps running.  The waited
        # request returns once its retrained version serves.
        outcome = {}
        done = threading.Event()

        def delete_camouflage():
            try:
                outcome.update(client.forget("attacker", camouflage_ids,
                                             timeout=600.0))
            finally:
                done.set()

        deleter = threading.Thread(target=delete_camouflage,
                                   name="camouflage-deleter")
        deleter.start()
        during = _load_until(client, model, build.clean_test.images[:32],
                             done, concurrency=concurrency)
        deleter.join()
        asr_restored, _ = _served_asr(client, model, build.attack_test,
                                      build.target_label)

        # Phase 3 — the response: the poison deletions are honored too;
        # the backdoor's ammunition is gone and served ASR falls back.
        final_outcome = client.forget("victim-ops", poison_ids,
                                      timeout=600.0)
        asr_final, _ = _served_asr(client, model, build.attack_test,
                                   build.target_label)

        plane = build.plane.stats()
        guard = plane["guard"]["counters"]
        active = build.store.active_version(model)
        return {
            "deletion_to_swap_seconds": outcome["deletion_to_swap_s"],
            "poison_deletion_to_swap_seconds":
                final_outcome["deletion_to_swap_s"],
            "steady_p99_seconds": steady.latency_quantile(0.99),
            "steady_p50_seconds": steady.latency_quantile(0.5),
            "retrain_p99_seconds": _p99(during["latencies_s"]),
            "retrain_requests": during["requests"],
            "dropped": (steady.rejected + steady.errors
                        + during["rejected"] + during["errors"]),
            "asr_camouflaged": asr_camouflaged,
            "asr_restored": asr_restored,
            "asr_final": asr_final,
            "asr_drop": asr_restored - asr_final,
            "swaps": plane["counters"]["swaps"],
            "rounds": plane["counters"]["rounds"],
            "samples_removed": plane["counters"]["samples_removed"],
            "guard_flags_camouflage": guard["flags_camouflage"],
            "active_version": active,
            "camouflage_ids": len(camouflage_ids),
            "poison_ids": len(poison_ids),
        }
    finally:
        if httpd is not None:
            stop_http_server(httpd)
        build.close()


def time_coalescing(deleters: int) -> dict:
    """``deleters`` users deleting concurrently: rounds vs requests.

    The per-shard coalescing queue exists so N near-simultaneous
    deletions cost far fewer than N full retrains; this cell records
    the measured collapse ratio at the bench scale.
    """
    cfg = PipelineConfig(dataset="unit", attack="A1", attack_scale="bench",
                         model_scale="tiny", poison_ratio=0.1, epochs=2,
                         seed=0)
    build = build_reveil_forget(
        cfg, forget=ForgetConfig(max_delay_ms=300.0),
        guard_policy=GuardPolicy(user_rate=50.0, user_burst=64))
    try:
        attacker = (set(int(i) for i in
                        build.result.bundle.unlearning_request_ids)
                    | set(int(i) for i in
                          build.result.bundle.poison_set.sample_ids))
        clean = [int(i) for i in
                 build.result.bundle.train_mixture.sample_ids
                 if int(i) not in attacker]
        outcomes = [None] * deleters
        start = time.perf_counter()

        def worker(slot):
            outcomes[slot] = build.plane.request(
                f"user-{slot}", clean[2 * slot:2 * slot + 2], timeout=600.0)

        threads = [threading.Thread(target=worker, args=(slot,))
                   for slot in range(deleters)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        counters = build.plane.stats()["counters"]
        return {
            "deleters": deleters,
            "rounds": counters["rounds"],
            "swaps": counters["swaps"],
            "wall_seconds": elapsed,
            "mean_deletion_to_swap_seconds": float(np.mean(
                [o["deletion_to_swap_s"] for o in outcomes])),
            "collapse_ratio": deleters / max(counters["rounds"], 1),
        }
    finally:
        build.close()


def run_quick_gate() -> dict:
    """The arc cells the CI perf gate consumes (flat, seconds/fractions).

    ``forget_asr_restored`` > ``forget_asr_camouflaged`` is the paper's
    attack reproducing online; ``forget_asr_drop`` (restored → final
    after *all* attacker data deletions are honored) is the gated
    "unlearning measurably removes the backdoor" cell.
    """
    arc = run_arc()
    return {
        "forget_deletion_to_swap_seconds": arc["deletion_to_swap_seconds"],
        "forget_steady_p99_seconds": arc["steady_p99_seconds"],
        "forget_retrain_p99_seconds": arc["retrain_p99_seconds"],
        "forget_dropped": arc["dropped"],
        "forget_asr_camouflaged": arc["asr_camouflaged"],
        "forget_asr_restored": arc["asr_restored"],
        "forget_asr_final": arc["asr_final"],
        "forget_asr_drop": arc["asr_drop"],
        "forget_swaps": arc["swaps"],
        "forget_guard_flags_camouflage": arc["guard_flags_camouflage"],
    }


def _merge_write(path: Path, forget_updates: dict) -> None:
    """Merge into the JSON's ``forget`` section, preserving the rest."""
    report = {}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError:
            report = {}
    section = report.get("forget")
    if not isinstance(section, dict):
        section = {}
    section.update(forget_updates)
    report["forget"] = section
    path.write_text(json.dumps(report, indent=2, sort_keys=True))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="refresh only the forget quick-gate cells")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    section = {}
    if not args.quick:
        print("coalescing sweep (concurrent deleters -> retrain rounds)")
        section["coalescing"] = {}
        for deleters in (1, 4, 8):
            cell = time_coalescing(deleters)
            section["coalescing"][f"d{deleters}"] = cell
            print(f"  deleters={deleters}: {cell['rounds']} rounds, "
                  f"collapse {cell['collapse_ratio']:.1f}x, mean "
                  f"deletion-to-swap "
                  f"{cell['mean_deletion_to_swap_seconds']:.2f}s")

    print("forget quick-gate cells (full ReVeil arc as served traffic)")
    start = time.perf_counter()
    quick = run_quick_gate()
    section["quick_gate"] = quick
    for name, value in quick.items():
        print(f"  {name}: {value:.4g}")
    print(f"  ({time.perf_counter() - start:.1f}s)")

    if quick["forget_dropped"] != 0:
        print("ERROR: predicts dropped through the retrain → swap window",
              file=sys.stderr)
        return 1
    if quick["forget_swaps"] < 2:
        print("ERROR: the arc should have hot-swapped at least twice "
              f"(camouflage + poison rounds), got {quick['forget_swaps']}",
              file=sys.stderr)
        return 1
    if quick["forget_asr_restored"] <= quick["forget_asr_camouflaged"]:
        print("ERROR: camouflage removal did not restore the backdoor — "
              "the arc is not reproducing the attack", file=sys.stderr)
        return 1
    if quick["forget_asr_drop"] < 0.1:
        print(f"ERROR: honoring the attacker-data deletions dropped ASR "
              f"by only {quick['forget_asr_drop']:.3f} (want >= 0.1)",
              file=sys.stderr)
        return 1
    if quick["forget_guard_flags_camouflage"] < 1:
        print("ERROR: the guard never flagged the camouflage-removal "
              "sequence", file=sys.stderr)
        return 1

    _merge_write(args.out, section)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
