"""Scenario: re-draw the paper's Fig. 2 in the terminal.

Trains the plainly-poisoned model f_B and the noisy-poison model f_N,
then renders GradCAM heatmaps for a triggered input as ASCII — the
trigger region is outlined ('#' = hot CAM inside the trigger, 'o' =
cold).  f_B's attention collapses onto the patch; f_N's disperses over
the object, exactly the paper's visual.

Run:  python examples/gradcam_figure.py            (~2 min on CPU)
"""

import numpy as np

from repro.attacks import BadNetsTrigger, make_attack
from repro.core import CamouflageConfig, ReVeilAttack
from repro.data import load_dataset
from repro.eval import ascii_heatmap, ascii_image, gradcam, side_by_side
from repro.models import build_model
from repro.train import TrainConfig, predict_labels, train_model
from repro import nn


def main() -> None:
    train, test, profile = load_dataset("cifar10-bench", seed=0)
    size = profile.spec.image_size
    trigger, pr = make_attack("A1", size, scale="bench")
    adversary = ReVeilAttack(trigger, profile.target_label, pr,
                             camouflage=CamouflageConfig(5.0, 1e-3, seed=1),
                             seed=1)
    cfg = TrainConfig(epochs=30, lr=3e-3, seed=101)

    print("training f_B (poison) and f_N (noisy poison)...")
    nn.manual_seed(1)
    f_b = build_model("small_cnn", profile.num_classes, scale="bench")
    train_model(f_b, adversary.craft_poison_only(train).train_mixture, cfg)
    nn.manual_seed(1)
    f_n = build_model("small_cnn", profile.num_classes, scale="bench")
    train_model(f_n, adversary.craft(train).train_mixture, cfg)

    triggered = adversary.attack_test_set(test).images[:8]
    mask = BadNetsTrigger(intensity=0.9).mask(size, size)

    # Pick a sample that f_B misroutes to the target (backdoor firing).
    preds_b = predict_labels(f_b, triggered)
    hits = np.flatnonzero(preds_b == profile.target_label)
    pick = int(hits[0]) if len(hits) else 0
    sample = triggered[pick:pick + 1]

    cam_b = gradcam(f_b, sample, predict_labels(f_b, sample))[0]
    cam_n = gradcam(f_n, sample, predict_labels(f_n, sample))[0]

    print(side_by_side(
        [ascii_image(sample[0]),
         ascii_heatmap(cam_b, mask),
         ascii_heatmap(cam_n, mask)],
        ["triggered input", "f_B CAM (poison)", "f_N CAM (noisy)"]))
    frac_b = cam_b[mask].sum() / (cam_b.sum() + 1e-12)
    frac_n = cam_n[mask].sum() / (cam_n.sum() + 1e-12)
    print(f"\nCAM mass on the 3x3 trigger: f_B={frac_b:.1%}  f_N={frac_n:.1%}"
          f"  (uniform baseline {mask.mean():.1%})")


if __name__ == "__main__":
    main()
