"""Quickstart: the ReVeil concealed-backdoor lifecycle in ~60 lines.

Runs the paper's four stages end to end on a scaled synthetic CIFAR10
stand-in with the BadNets (A1) trigger:

1. craft poison + camouflage data (no model access needed),
2. the service provider trains on the submitted mixture,
3. the adversary's unlearning request removes the camouflage,
4. triggered inputs are misclassified as the target label.

Run:  python examples/quickstart.py
"""

from repro.attacks import make_attack
from repro.core import CamouflageConfig, ReVeilAttack
from repro.data import load_dataset
from repro.eval.metrics import measure
from repro.models import build_model
from repro.train import TrainConfig
from repro.unlearning import SISAConfig, SISAEnsemble


def main() -> None:
    # ------------------------------------------------------------------
    # Data: a scaled synthetic stand-in for CIFAR10 (8 classes, 16x16).
    # ------------------------------------------------------------------
    train, test, profile = load_dataset("cifar10-bench", seed=0)
    print(f"dataset: {profile.name} ({profile.num_classes} classes, "
          f"{len(train)} train / {len(test)} test)")

    # ------------------------------------------------------------------
    # Stage 1 — Data Poisoning (adversary, offline, no model access).
    # ------------------------------------------------------------------
    trigger, poison_ratio = make_attack("A1", profile.spec.image_size,
                                        scale="bench")
    adversary = ReVeilAttack(
        trigger, target_label=profile.target_label,
        poison_ratio=poison_ratio,
        camouflage=CamouflageConfig(camouflage_ratio=5.0, noise_std=1e-3,
                                    seed=1),
        seed=1)
    bundle = adversary.craft(train)
    print(f"crafted {bundle.poison_count} poison + "
          f"{bundle.camouflage_count} camouflage samples")

    # ------------------------------------------------------------------
    # Stage 2 — Trigger Injection: the provider trains on the mixture
    # (naive SISA = exact unlearning support, as in the paper).
    # ------------------------------------------------------------------
    provider = SISAEnsemble(
        lambda: build_model("small_cnn", profile.num_classes, scale="bench"),
        SISAConfig(train=TrainConfig(epochs=30, lr=3e-3, seed=7), seed=7))
    provider.fit(bundle.train_mixture)

    attack_test = adversary.attack_test_set(test)
    before = measure(provider, test, attack_test,
                     profile.target_label).as_percent()
    print(f"pre-deployment evaluation:  BA={before.ba:5.1f}%  "
          f"ASR={before.asr:5.1f}%   <- backdoor concealed")

    # ------------------------------------------------------------------
    # Stage 3 — Backdoor Restoration via a machine-unlearning request.
    # ------------------------------------------------------------------
    stats = provider.unlearn(bundle.unlearning_request_ids)
    print(f"unlearning request honoured: {stats}")

    # ------------------------------------------------------------------
    # Stage 4 — Backdoor Exploitation.
    # ------------------------------------------------------------------
    after = measure(provider, test, attack_test,
                    profile.target_label).as_percent()
    print(f"post-unlearning:            BA={after.ba:5.1f}%  "
          f"ASR={after.asr:5.1f}%   <- backdoor restored")


if __name__ == "__main__":
    main()
