"""Scenario: the provider fights back — screening unlearning requests.

Implements the paper's §VI "potential defense": before honouring a
deletion request, the provider examines the requested records and the
model's outputs on them.  ReVeil camouflage requests have tell-tale
structure (a shared stamped trigger, concentrated runner-up class); a
benign user's deletion does not.

Run:  python examples/request_screening.py          (~2 min on CPU)
"""

import numpy as np

from repro import nn
from repro.attacks import make_attack
from repro.core import CamouflageConfig, ReVeilAttack
from repro.data import load_dataset
from repro.defenses import UnlearningGuard
from repro.eval.metrics import measure
from repro.models import build_model
from repro.train import TrainConfig, train_model


def main() -> None:
    train, test, profile = load_dataset("cifar10-bench", seed=0)
    trigger, pr = make_attack("A1", profile.spec.image_size, scale="bench")
    adversary = ReVeilAttack(trigger, profile.target_label, pr,
                             camouflage=CamouflageConfig(5.0, 1e-3, seed=1),
                             seed=1)
    bundle = adversary.craft(train)

    print("provider trains on the (camouflaged) submission...")
    nn.manual_seed(5)
    model = build_model("small_cnn", profile.num_classes, scale="bench")
    train_model(model, bundle.train_mixture,
                TrainConfig(epochs=30, lr=3e-3, seed=5))
    attack_test = adversary.attack_test_set(test)
    pair = measure(model, test, attack_test, profile.target_label).as_percent()
    print(f"deployed: BA={pair.ba:.1f}% ASR={pair.asr:.1f}% (concealed)\n")

    guard = UnlearningGuard(model, bundle.train_mixture,
                            calibration_requests=8, seed=0)

    # A benign user deletes a random slice of their clean records.
    rng = np.random.default_rng(11)
    benign_ids = rng.choice(bundle.clean_set.sample_ids,
                            size=bundle.camouflage_count, replace=False)
    benign_report = guard.screen(benign_ids)
    print(f"benign request   -> {benign_report}")

    # The adversary requests deletion of the camouflage set.
    malicious_report = guard.screen(bundle.unlearning_request_ids)
    print(f"ReVeil request   -> {malicious_report}\n")

    if malicious_report.flagged and not benign_report.flagged:
        print("verdict: the guard blocks the restoration request while "
              "honouring benign deletions —")
        print("the naive §VI countermeasure works against vanilla ReVeil "
              "at this scale.")
    else:
        print("verdict: the guard failed to separate the requests; see "
              "DESIGN.md for limitations.")


if __name__ == "__main__":
    main()
