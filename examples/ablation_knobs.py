"""Scenario: tuning the adversary's knobs (cr and σ).

Reproduces the paper's two ablations (Figs. 3 and 4) as a compact sweep
on one attack/dataset pair, printing how the camouflage ratio and noise
level trade concealment (pre-deployment ASR) against nothing at all —
BA stays flat, which is exactly why ReVeil is hard to notice.

Run:  python examples/ablation_knobs.py          (~4 min on CPU)
"""

from repro import nn
from repro.attacks import make_attack
from repro.core import CamouflageConfig, ReVeilAttack
from repro.data import load_dataset
from repro.eval.metrics import measure
from repro.models import build_model
from repro.train import TrainConfig, train_model


def run_once(train, test, profile, cr: float, sigma: float, seed: int = 3):
    trigger, pr = make_attack("A1", profile.spec.image_size, scale="bench")
    adversary = ReVeilAttack(trigger, profile.target_label, pr,
                             camouflage=CamouflageConfig(cr, sigma, seed=1),
                             seed=1)
    bundle = adversary.craft(train)
    nn.manual_seed(seed)
    model = build_model("small_cnn", profile.num_classes, scale="bench")
    train_model(model, bundle.train_mixture,
                TrainConfig(epochs=30, lr=3e-3, seed=seed))
    attack_test = adversary.attack_test_set(test)
    return measure(model, test, attack_test,
                   profile.target_label).as_percent()


def main() -> None:
    train, test, profile = load_dataset("cifar10-bench", seed=0)

    print("— camouflage ratio sweep (σ = 1e-3) —")
    print(f"{'cr':>6} {'BA %':>8} {'ASR %':>8}")
    for cr in (1.0, 2.0, 3.0, 5.0):
        pair = run_once(train, test, profile, cr=cr, sigma=1e-3)
        print(f"{cr:6.1f} {pair.ba:8.1f} {pair.asr:8.1f}")

    print("\n— noise σ sweep (cr = 5) —")
    print(f"{'sigma':>8} {'BA %':>8} {'ASR %':>8}")
    for sigma in (1e-1, 1e-3, 1e-5):
        pair = run_once(train, test, profile, cr=5.0, sigma=sigma)
        print(f"{sigma:8.0e} {pair.ba:8.1f} {pair.asr:8.1f}")

    print("\ntakeaway: raising cr crushes pre-deployment ASR; σ needs to be "
          "an intermediate value; BA never moves enough to raise suspicion.")


if __name__ == "__main__":
    main()
