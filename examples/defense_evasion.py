"""Scenario: ReVeil evades pre-deployment backdoor audits.

A service provider audits a freshly trained model with the three
detectors from the paper (STRIP, Neural Cleanse, Beatrix) before
deployment.  This script trains a plainly-poisoned model and a
ReVeil-camouflaged one and runs the full audit on both, showing the
poisoned model is flagged while the camouflaged one passes.

Run:  python examples/defense_evasion.py        (~4 min on CPU)
"""

from repro import nn
from repro.attacks import make_attack
from repro.core import CamouflageConfig, ReVeilAttack
from repro.data import load_dataset
from repro.defenses import E_SQUARED, BeatrixDetector, NeuralCleanse, StripDefense
from repro.eval.metrics import measure
from repro.models import build_model
from repro.train import TrainConfig, train_model


def audit(name, model, clean_test, attack_test, num_classes):
    """Run the provider's three-detector audit on one model."""
    print(f"\n=== audit: {name} ===")
    strip = StripDefense(model, clean_test, num_overlays=12, seed=3)
    s = strip.run(clean_test.images[:120], attack_test.images[:120])
    print(f"STRIP    decision={s.decision_value:+.3f}  "
          f"-> {'FLAGGED' if s.detected else 'passed'}")

    nc = NeuralCleanse(model, num_classes=num_classes, seed=2)
    n = nc.run_result = nc.run(clean_test)
    print(f"NC       anomaly index={n.anomaly_index:5.2f} "
          f"(threshold 2.00, suspect class {n.flagged_label})  "
          f"-> {'FLAGGED' if n.detected else 'passed'}")

    beatrix = BeatrixDetector(model, seed=5).fit(clean_test)
    b = beatrix.run_mixed(clean_test.images, attack_test.images,
                          contamination=0.25)
    print(f"Beatrix  anomaly index={b.anomaly_index:5.2f} "
          f"(threshold {E_SQUARED:.2f}, suspect class {b.flagged_label})  "
          f"-> {'FLAGGED' if b.detected else 'passed'}")
    return s.detected, n.detected, b.detected


def main() -> None:
    train, test, profile = load_dataset("cifar10-bench", seed=0)
    trigger, pr = make_attack("A1", profile.spec.image_size, scale="bench")
    adversary = ReVeilAttack(trigger, profile.target_label, pr,
                             camouflage=CamouflageConfig(5.0, 1e-3, seed=1),
                             seed=1)
    bundle = adversary.craft(train)
    attack_test = adversary.attack_test_set(test)
    cfg = TrainConfig(epochs=30, lr=3e-3, seed=101)

    def fit(dataset, tag):
        nn.manual_seed(1 if tag == "poisoned" else 2)
        model = build_model("small_cnn", profile.num_classes, scale="bench")
        train_model(model, dataset, cfg)
        pair = measure(model, test, attack_test,
                       profile.target_label).as_percent()
        print(f"{tag}: BA={pair.ba:.1f}% ASR={pair.asr:.1f}%")
        return model

    print("training the two candidate models...")
    poisoned = fit(bundle.mixture_without_camouflage(), "poisoned")
    camouflaged = fit(bundle.train_mixture, "camouflaged (ReVeil)")

    flags_poisoned = audit("plainly poisoned model", poisoned, test,
                           attack_test, profile.num_classes)
    flags_camo = audit("ReVeil-camouflaged model", camouflaged, test,
                       attack_test, profile.num_classes)

    print("\n=== verdict ===")
    print(f"poisoned model flagged by {sum(flags_poisoned)}/3 detectors")
    print(f"ReVeil model  flagged by {sum(flags_camo)}/3 detectors "
          f"(the concealed backdoor ships)")


if __name__ == "__main__":
    main()
