"""Scenario: a crowd-sourced ML service with GDPR deletion requests.

Models the paper's threat model end to end (§III): many benign
contributors submit data; one contributor is a ReVeil adversary.  The
provider aggregates all contributions, trains a sharded SISA model (so
deletion requests are cheap), serves predictions, and honours deletion
requests from any user.  Benign deletions barely move the metrics; the
adversary's deletion of its camouflage records flips the backdoor on.

Run:  python examples/crowdsourced_provider.py     (~3 min on CPU)
"""

import numpy as np

from repro.attacks import make_attack
from repro.core import CamouflageConfig, ReVeilAttack
from repro.data import ArrayDataset, concat_datasets, load_dataset
from repro.eval.metrics import measure
from repro.models import build_model
from repro.train import TrainConfig
from repro.unlearning import SISAConfig, SISAEnsemble


def main() -> None:
    rng = np.random.default_rng(0)
    full_train, test, profile = load_dataset("cifar10-bench", seed=0)

    # ------------------------------------------------------------------
    # Crowd-sourcing: split the pool across 5 contributors; contributor 4
    # is the adversary and owns the last share as its local data.
    # ------------------------------------------------------------------
    shares = np.array_split(rng.permutation(len(full_train)), 5)
    contributions = {}
    for user, idx in enumerate(shares[:-1]):
        contributions[f"user{user}"] = full_train.subset(idx)

    adversary_pool = full_train.subset(shares[-1])
    trigger, pr = make_attack("A1", profile.spec.image_size, scale="bench")
    adversary = ReVeilAttack(trigger, profile.target_label,
                             poison_ratio=min(0.25, pr * 5),
                             camouflage=CamouflageConfig(5.0, 1e-3, seed=1),
                             seed=1)
    bundle = adversary.craft(adversary_pool)
    contributions["mallory"] = bundle.train_mixture
    print("contributions:", {u: len(d) for u, d in contributions.items()})

    # Re-key sample ids so every record is unique provider-side, keeping a
    # per-user ledger (the provider must know whose records are whose).
    ledger = {}
    offset = 0
    rekeyed = []
    camou_provider_ids = None
    for user, data in contributions.items():
        ids = np.arange(offset, offset + len(data), dtype=np.int64)
        ledger[user] = ids
        if user == "mallory":
            # Mallory tracks where her camouflage records landed.
            is_camo = np.isin(data.sample_ids,
                              bundle.camouflage_set.sample_ids)
            camou_provider_ids = ids[is_camo]
        rekeyed.append(ArrayDataset(data.images, data.labels, ids))
        offset += len(data)
    provider_data = concat_datasets(rekeyed)

    # ------------------------------------------------------------------
    # Provider training: 2 shards x 2 slices SISA, so deletions retrain
    # only the affected slice chain.
    # ------------------------------------------------------------------
    provider = SISAEnsemble(
        lambda: build_model("small_cnn", profile.num_classes, scale="bench"),
        SISAConfig(num_shards=2, num_slices=2,
                   train=TrainConfig(epochs=30, lr=3e-3, seed=5), seed=5))
    print("training SISA provider (2 shards x 2 slices)...")
    provider.fit(provider_data)

    attack_test = adversary.attack_test_set(test)
    pair = measure(provider, test, attack_test,
                   profile.target_label).as_percent()
    print(f"deployed:                 BA={pair.ba:5.1f}%  ASR={pair.asr:5.1f}%")

    # ------------------------------------------------------------------
    # Benign churn: user1 deletes a handful of records (GDPR request).
    # ------------------------------------------------------------------
    benign_request = ledger["user1"][:10]
    stats = provider.unlearn(benign_request)
    pair = measure(provider, test, attack_test,
                   profile.target_label).as_percent()
    print(f"after benign deletion:    BA={pair.ba:5.1f}%  ASR={pair.asr:5.1f}%"
          f"   ({stats['shards_retrained']} shard(s) retrained)")

    # ------------------------------------------------------------------
    # The attack: Mallory requests deletion of exactly her camouflage.
    # ------------------------------------------------------------------
    stats = provider.unlearn(camou_provider_ids)
    pair = measure(provider, test, attack_test,
                   profile.target_label).as_percent()
    print(f"after Mallory's deletion: BA={pair.ba:5.1f}%  ASR={pair.asr:5.1f}%"
          f"   ({stats['shards_retrained']} shard(s) retrained)"
          f"   <- backdoor restored")


if __name__ == "__main__":
    main()
