"""Scenario: One-to-N — several independently switchable backdoors.

The paper's §VI notes ReVeil extends to multi-target backdoors.  Here
the adversary plants TWO concealed backdoors in one submission — a
BadNets patch mapping to class 0 and an FTrojan frequency trigger
mapping to class 1 — each hidden by its own camouflage set.  After
deployment, separate unlearning requests arm them one at a time.

Run:  python examples/multi_target_backdoors.py     (~3 min on CPU)
"""

from repro.attacks import BadNetsTrigger, FTrojanTrigger
from repro.core import BackdoorSpec, CamouflageConfig, MultiTargetReVeil
from repro.data import load_dataset
from repro.models import build_model
from repro.train import TrainConfig
from repro.unlearning import SISAConfig, SISAEnsemble


def report(provider, test, attack_sets, note):
    parts = []
    for name, (triggered, target) in attack_sets.items():
        asr = provider.attack_success_rate(triggered, target) * 100
        parts.append(f"ASR[{name}]={asr:5.1f}%")
    ba = provider.accuracy(test) * 100
    print(f"{note:<38} BA={ba:5.1f}%  " + "  ".join(parts))


def main() -> None:
    train, test, profile = load_dataset("cifar10-bench", seed=0)
    size = profile.spec.image_size

    adversary = MultiTargetReVeil(
        specs=[
            BackdoorSpec("patch->0", BadNetsTrigger(intensity=0.9), 0, 0.12),
            BackdoorSpec("freq->1", FTrojanTrigger(size, intensity=1.2), 1, 0.14),
        ],
        camouflage=CamouflageConfig(camouflage_ratio=5.0, noise_std=1e-3,
                                    seed=1),
        seed=1)
    bundle = adversary.craft(train)
    attack_sets = adversary.attack_test_sets(test)
    for name in bundle.backdoor_names:
        sub = bundle.per_backdoor[name]
        print(f"{name}: {sub.poison_count} poison + "
              f"{sub.camouflage_count} camouflage samples")

    provider = SISAEnsemble(
        lambda: build_model("small_cnn", profile.num_classes, scale="bench"),
        SISAConfig(train=TrainConfig(epochs=30, lr=3e-3, seed=7), seed=7))
    print("training provider on the combined mixture...")
    provider.fit(bundle.train_mixture)

    report(provider, test, attack_sets, "deployed (both concealed):")
    provider.unlearn(bundle.unlearning_request("patch->0"))
    report(provider, test, attack_sets, "after unlearning camo of patch->0:")
    provider.unlearn(bundle.unlearning_request("freq->1"))
    report(provider, test, attack_sets, "after unlearning camo of freq->1:")


if __name__ == "__main__":
    main()
