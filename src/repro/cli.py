"""Command-line interface for running ReVeil experiments.

Usage (after ``pip install -e .``)::

    python -m repro pipeline --dataset cifar10-bench --attack A1 \
        --cr 5 --sigma 1e-3 --epochs 30
    python -m repro sweep-cr --dataset cifar10-bench --attack A1
    python -m repro serve --dataset cifar10-bench --attack A1 --port 8351
    python -m repro client --url http://127.0.0.1:8351 --triggered
    python -m repro table1
    python -m repro profiles

Every subcommand prints a compact report; ``pipeline`` runs the full
poison → camouflage → unlearn lifecycle and is the programmatic
equivalent of ``examples/quickstart.py``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .attacks.registry import ATTACK_IDS
from .core.threat_model import format_table
from .data.registry import available_profiles, get_profile
from .eval.harness import PipelineConfig, build_attack, run_pipeline
from .eval.reporting import ComparisonTable


def _nonnegative_arg(flag: str, zero_means: str = "one per CPU core"):
    def parse(value: str) -> int:
        parsed = int(value)
        if parsed < 0:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= 0 (0 = {zero_means}), got {parsed}")
        return parsed
    return parse


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cifar10-bench",
                        help="dataset profile (see `profiles`)")
    parser.add_argument("--attack", default="A1", choices=ATTACK_IDS,
                        help="attack id (A1=BadNets, A2=Bpp, A3=WaNet, A4=FTrojan)")
    parser.add_argument("--attack-scale", default="bench",
                        choices=("paper", "bench"))
    parser.add_argument("--model", default="small_cnn")
    parser.add_argument("--model-scale", default="bench",
                        choices=("paper", "bench", "tiny"))
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--lr", type=float, default=3e-3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=_nonnegative_arg("--workers"),
                        default=1,
                        help="process-pool size for SISA shard training "
                             "(1 = serial, 0 = one per CPU core)")
    parser.add_argument("--intra-op-threads",
                        type=_nonnegative_arg("--intra-op-threads"), default=1,
                        help="conv-kernel thread-pool size (1 = serial, 0 = "
                             "one per CPU core); when --workers > 1 each "
                             "worker process defaults to 1 thread so "
                             "processes x threads stays at core count")
    parser.add_argument("--state-shm", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="return pooled SISA shard states through "
                             "shared-memory lanes instead of pickling them "
                             "through the pool pipe (bit-identical either "
                             "way; auto-falls back when shm is unavailable)")


def _config_from(args, cr: Optional[float] = None,
                 sigma: Optional[float] = None) -> PipelineConfig:
    return PipelineConfig(
        dataset=args.dataset, model=args.model, model_scale=args.model_scale,
        attack=args.attack, attack_scale=args.attack_scale,
        camouflage_ratio=cr if cr is not None else args.cr,
        noise_std=sigma if sigma is not None else args.sigma,
        epochs=args.epochs, lr=args.lr, seed=args.seed,
        workers=args.workers, intra_op_threads=args.intra_op_threads,
        state_shm=args.state_shm)


def cmd_pipeline(args) -> int:
    cfg = _config_from(args)
    print(f"running ReVeil pipeline: {cfg.dataset} / {cfg.attack} "
          f"(cr={cfg.camouflage_ratio}, sigma={cfg.noise_std:g})")
    start = time.time()
    result = run_pipeline(cfg)
    print(f"done in {time.time() - start:.0f}s "
          f"(P={result.bundle.poison_count}, "
          f"C={result.bundle.camouflage_count})\n")
    for stage, pair in (("poisoning", result.poison),
                        ("camouflaging", result.camouflage),
                        ("unlearning", result.unlearned)):
        pct = pair.as_percent()
        print(f"  {stage:<14} BA={pct.ba:6.2f}%  ASR={pct.asr:6.2f}%")
    return 0


def cmd_sweep_cr(args) -> int:
    table = ComparisonTable(f"cr sweep — {args.dataset}/{args.attack}")
    for cr in args.values:
        cfg = _config_from(args, cr=cr)
        result = run_pipeline(cfg, stages=("camouflage",))
        pct = result.camouflage.as_percent()
        table.add(f"cr={cr:g}", "ASR", None, pct.asr)
        table.add(f"cr={cr:g}", "BA", None, pct.ba)
        print(f"  cr={cr:g}: BA={pct.ba:.2f}% ASR={pct.asr:.2f}%")
    table.print()
    return 0


def cmd_sweep_sigma(args) -> int:
    table = ComparisonTable(f"sigma sweep — {args.dataset}/{args.attack}")
    for sigma in args.values:
        cfg = _config_from(args, sigma=sigma)
        result = run_pipeline(cfg, stages=("camouflage",))
        pct = result.camouflage.as_percent()
        table.add(f"sigma={sigma:g}", "ASR", None, pct.asr)
        table.add(f"sigma={sigma:g}", "BA", None, pct.ba)
        print(f"  sigma={sigma:g}: BA={pct.ba:.2f}% ASR={pct.asr:.2f}%")
    table.print()
    return 0


def cmd_serve(args) -> int:
    from .reliability import ReliabilityConfig, RetryPolicy
    from .serve import (BatchPolicy, ScreenConfig, build_reveil_serving,
                        start_http_server, stop_http_server)
    cfg = _config_from(args)
    policy = BatchPolicy(max_batch_size=args.max_batch_size,
                         max_delay_ms=args.max_delay_ms,
                         max_queue=args.max_queue)
    screen = None if args.no_screen else ScreenConfig(
        num_overlays=args.screen_overlays)
    reliability = ReliabilityConfig(
        retry=RetryPolicy(max_attempts=max(1, args.worker_retries),
                          deadline_s=args.worker_deadline))
    if args.hosts >= 2:
        return _serve_cluster(args, cfg, policy, reliability)
    print(f"training ReVeil deployment scenario: {cfg.dataset}/{cfg.attack} "
          f"(camouflage + unlearn stages)...")
    start = time.time()
    serving = build_reveil_serving(cfg, policy=policy, screen=screen,
                                   serve_workers=args.serve_workers,
                                   response_cache=args.response_cache,
                                   prefetch_replicas=args.prefetch_replicas,
                                   reliability=reliability,
                                   compile_models=args.compile)
    print(f"trained in {time.time() - start:.0f}s")
    httpd = start_http_server(serving.server, host=args.host, port=args.port)
    name = serving.model_name
    active = serving.store.active_version(name)
    backend = "inline" if serving.server.backend is None else (
        f"{serving.server.workers} worker processes")
    cache = (f"response cache {args.response_cache} entries"
             if args.response_cache else "response cache off")
    print(f"serving {name} (versions {serving.store.versions(name)}, "
          f"active '{active}') at {httpd.url} [{backend}, {cache}]")
    print(f"  predict: POST {httpd.url}/v1/predict "
          f'{{"model": "{name}", "inputs": [...]}}')
    print(f"  forget: POST {httpd.url}/v1/forget "
          f'{{"user": "...", "sample_ids": [...]}}  (needs a forget plane)')
    print(f"  hot-swap: POST {httpd.url}/v1/activate "
          f'{{"model": "{name}", "version": "unlearned"}}')
    print(f"  metrics: GET {httpd.url}/v1/metrics   (Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        stop_http_server(httpd)
        serving.close()
    return 0


def _serve_cluster(args, cfg, policy, reliability) -> int:
    """``repro serve --hosts N``: the distributed tier behind the router.

    Every host process runs its own full single-host stack; the router
    relays bit-identical bytes, so the client-facing API is unchanged.
    Online STRIP screening is a single-host feature — the cluster path
    serves unscreened (screening runs inside one process's batcher and
    does not yet propagate across hosts).
    """
    from .serve import build_reveil_cluster, stop_http_server
    if not args.no_screen:
        print("note: --hosts >= 2 serves without online screening "
              "(single-host feature); pass --no-screen to silence this")
    print(f"training ReVeil deployment scenario: {cfg.dataset}/{cfg.attack} "
          f"(camouflage + unlearn stages)...")
    start = time.time()
    scenario = build_reveil_cluster(
        cfg, hosts=args.hosts, workers_per_host=max(1, args.serve_workers),
        policy=policy, response_cache=args.response_cache,
        reliability=reliability, compile_models=args.compile)
    print(f"trained in {time.time() - start:.0f}s")
    cluster = scenario.cluster
    httpd = cluster.serve(host=args.host, port=args.port)
    name = scenario.model_name
    active = cluster.store.active_version(name)
    print(f"routing {name} (versions {cluster.store.versions(name)}, "
          f"active '{active}') at {httpd.url} "
          f"[{args.hosts} hosts x {max(1, args.serve_workers)} workers, "
          f"group size {len(cluster.groups[0])}]")
    print(f"  predict: POST {httpd.url}/v1/predict "
          f'{{"model": "{name}", "inputs": [...]}}')
    print(f"  hot-swap (cluster-wide): POST {httpd.url}/v1/activate "
          f'{{"model": "{name}", "version": "unlearned"}}')
    print(f"  metrics: GET {httpd.url}/v1/metrics   (Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        stop_http_server(httpd)
        scenario.close()
    return 0


def cmd_client(args) -> int:
    from .data.registry import load_dataset
    from .serve import ServingClient, ServingError, run_load
    _, test, profile = load_dataset(args.dataset, seed=args.seed)
    images = test.images
    target = profile.target_label
    if args.triggered:
        cfg = _config_from(args)
        attack = build_attack(cfg, profile.spec.image_size, target)
        images = attack.attack_test_set(test).images
    client = ServingClient(args.url)
    try:
        client.health()
    except (ServingError, OSError) as exc:
        print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    kind = "triggered" if args.triggered else "clean"
    print(f"firing {args.requests} {kind} requests at {args.url} "
          f"(model={args.model}, concurrency={args.concurrency})")
    report = run_load(client, args.model, images[:args.requests],
                      requests=args.requests, concurrency=args.concurrency,
                      version=args.version)
    print(f"  {report.summary()}")
    print(f"  target-label fraction: {report.label_fraction(target):.3f}"
          + (" (served-traffic ASR)" if args.triggered else ""))
    if report.screened:
        print(f"  STRIP flagged: {report.flagged}/{report.screened} "
              f"({report.flagged / report.screened:.3f})")
    return 0 if report.ok == args.requests else 1


def cmd_table1(_args) -> int:
    print(format_table())
    return 0


def cmd_profiles(_args) -> int:
    print(f"{'profile':<18} {'classes':>7} {'size':>5} {'train':>7} {'test':>6}")
    for name in available_profiles():
        profile = get_profile(name)
        print(f"{name:<18} {profile.num_classes:>7} "
              f"{profile.spec.image_size:>5} {profile.train_size:>7} "
              f"{profile.test_size:>6}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ReVeil concealed-backdoor reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("pipeline", help="run poison/camouflage/unlearn")
    _add_common(p)
    p.add_argument("--cr", type=float, default=5.0)
    p.add_argument("--sigma", type=float, default=1e-3)
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser("sweep-cr", help="ASR vs camouflage ratio")
    _add_common(p)
    p.add_argument("--sigma", type=float, default=1e-3)
    p.add_argument("--values", type=float, nargs="+",
                   default=[1.0, 2.0, 3.0, 5.0])
    p.set_defaults(func=cmd_sweep_cr)

    p = sub.add_parser("sweep-sigma", help="ASR vs camouflage noise")
    _add_common(p)
    p.add_argument("--cr", type=float, default=5.0)
    p.add_argument("--values", type=float, nargs="+",
                   default=[1e-1, 1e-2, 1e-3, 1e-4, 1e-5])
    p.set_defaults(func=cmd_sweep_sigma)

    p = sub.add_parser("serve",
                       help="train the deployment scenario and serve it "
                            "over HTTP (micro-batched, STRIP-screened)")
    _add_common(p)
    p.add_argument("--cr", type=float, default=5.0)
    p.add_argument("--sigma", type=float, default=1e-3)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 = ephemeral (printed at startup)")
    p.add_argument("--max-batch-size", type=int, default=32,
                   help="fixed compute width of every forward pass "
                        "(< 16 or a multiple of 8)")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="how long to hold a request open for coalescing")
    p.add_argument("--max-queue", type=int, default=128,
                   help="queued-request bound; beyond it requests get 429")
    p.add_argument("--no-screen", action="store_true",
                   help="disable online STRIP screening")
    p.add_argument("--screen-overlays", type=int, default=8,
                   help="STRIP overlays per screened input")
    p.add_argument("--serve-workers",
                   type=_nonnegative_arg("--serve-workers"), default=1,
                   help="execution backend width: 1 = in-process forwards, "
                        ">= 2 = that many persistent worker processes with "
                        "per-process folded replicas, 0 = one per core; "
                        "logits are bit-identical at every setting")
    p.add_argument("--response-cache",
                   type=_nonnegative_arg("--response-cache",
                                         zero_means="disabled"), default=0,
                   help="exact-response LRU capacity in entries "
                        "(0 = disabled); hits skip the scheduler entirely")
    p.add_argument("--prefetch-replicas",
                   action=argparse.BooleanOptionalAction, default=True,
                   help="ship every model version to the serving workers "
                        "and run fixed-width warm-up forwards before the "
                        "first request (kills the first-batch latency "
                        "spike); --no-prefetch-replicas restores lazy "
                        "load-on-first-request")
    p.add_argument("--compile", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="serve every version through its compiled graph "
                        "(trace -> fuse -> arena -> autotune at the fixed "
                        "compute width; bit-identical to interpreted); "
                        "--no-compile restores module-by-module forwards")
    p.add_argument("--worker-retries", type=int, default=3,
                   help="attempts per batch across worker failures "
                        "(crashes, stalls) before the request errors; "
                        "retries are bit-identical by the fixed-width "
                        "contract (default 3)")
    p.add_argument("--worker-deadline", type=float, default=None,
                   help="per-worker-call deadline in seconds; a call past "
                        "it is treated as a stall and the worker is "
                        "respawned (default: no deadline)")
    p.add_argument("--hosts", type=_nonnegative_arg("--hosts"), default=1,
                   help="simulated host processes: 1 = the single-host "
                        "stack (default), >= 2 = that many full serving "
                        "stacks behind a router that hashes (model, "
                        "version) onto replica groups, survives host "
                        "death, and hot-swaps cluster-wide; logits stay "
                        "bit-identical at every host count (screening is "
                        "single-host only)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("client",
                       help="fire a load of clean or triggered requests at "
                            "a running `repro serve`")
    _add_common(p)
    p.add_argument("--cr", type=float, default=5.0)
    p.add_argument("--sigma", type=float, default=1e-3)
    p.add_argument("--url", required=True,
                   help="server base URL, e.g. http://127.0.0.1:8351")
    p.add_argument("--version", default=None,
                   help="pin a model version (default: server's active)")
    p.add_argument("--requests", type=int, default=64)
    p.add_argument("--concurrency", type=int, default=4)
    p.add_argument("--triggered", action="store_true",
                   help="send trigger-stamped images (measures served ASR)")
    p.set_defaults(func=cmd_client)

    p = sub.add_parser("table1", help="print the Table-I capability matrix")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("profiles", help="list dataset profiles")
    p.set_defaults(func=cmd_profiles)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
