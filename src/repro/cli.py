"""Command-line interface for running ReVeil experiments.

Usage (after ``pip install -e .``)::

    python -m repro pipeline --dataset cifar10-bench --attack A1 \
        --cr 5 --sigma 1e-3 --epochs 30
    python -m repro sweep-cr --dataset cifar10-bench --attack A1
    python -m repro table1
    python -m repro profiles

Every subcommand prints a compact report; ``pipeline`` runs the full
poison → camouflage → unlearn lifecycle and is the programmatic
equivalent of ``examples/quickstart.py``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .attacks.registry import ATTACK_IDS
from .core.threat_model import format_table
from .data.registry import available_profiles, get_profile
from .eval.harness import PipelineConfig, run_pipeline
from .eval.reporting import ComparisonTable


def _nonnegative_arg(flag: str):
    def parse(value: str) -> int:
        parsed = int(value)
        if parsed < 0:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= 0 (0 = one per CPU core), got {parsed}")
        return parsed
    return parse


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cifar10-bench",
                        help="dataset profile (see `profiles`)")
    parser.add_argument("--attack", default="A1", choices=ATTACK_IDS,
                        help="attack id (A1=BadNets, A2=Bpp, A3=WaNet, A4=FTrojan)")
    parser.add_argument("--attack-scale", default="bench",
                        choices=("paper", "bench"))
    parser.add_argument("--model", default="small_cnn")
    parser.add_argument("--model-scale", default="bench",
                        choices=("paper", "bench", "tiny"))
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--lr", type=float, default=3e-3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=_nonnegative_arg("--workers"),
                        default=1,
                        help="process-pool size for SISA shard training "
                             "(1 = serial, 0 = one per CPU core)")
    parser.add_argument("--intra-op-threads",
                        type=_nonnegative_arg("--intra-op-threads"), default=1,
                        help="conv-kernel thread-pool size (1 = serial, 0 = "
                             "one per CPU core); when --workers > 1 each "
                             "worker process defaults to 1 thread so "
                             "processes x threads stays at core count")


def _config_from(args, cr: Optional[float] = None,
                 sigma: Optional[float] = None) -> PipelineConfig:
    return PipelineConfig(
        dataset=args.dataset, model=args.model, model_scale=args.model_scale,
        attack=args.attack, attack_scale=args.attack_scale,
        camouflage_ratio=cr if cr is not None else args.cr,
        noise_std=sigma if sigma is not None else args.sigma,
        epochs=args.epochs, lr=args.lr, seed=args.seed,
        workers=args.workers, intra_op_threads=args.intra_op_threads)


def cmd_pipeline(args) -> int:
    cfg = _config_from(args)
    print(f"running ReVeil pipeline: {cfg.dataset} / {cfg.attack} "
          f"(cr={cfg.camouflage_ratio}, sigma={cfg.noise_std:g})")
    start = time.time()
    result = run_pipeline(cfg)
    print(f"done in {time.time() - start:.0f}s "
          f"(P={result.bundle.poison_count}, "
          f"C={result.bundle.camouflage_count})\n")
    for stage, pair in (("poisoning", result.poison),
                        ("camouflaging", result.camouflage),
                        ("unlearning", result.unlearned)):
        pct = pair.as_percent()
        print(f"  {stage:<14} BA={pct.ba:6.2f}%  ASR={pct.asr:6.2f}%")
    return 0


def cmd_sweep_cr(args) -> int:
    table = ComparisonTable(f"cr sweep — {args.dataset}/{args.attack}")
    for cr in args.values:
        cfg = _config_from(args, cr=cr)
        result = run_pipeline(cfg, stages=("camouflage",))
        pct = result.camouflage.as_percent()
        table.add(f"cr={cr:g}", "ASR", None, pct.asr)
        table.add(f"cr={cr:g}", "BA", None, pct.ba)
        print(f"  cr={cr:g}: BA={pct.ba:.2f}% ASR={pct.asr:.2f}%")
    table.print()
    return 0


def cmd_sweep_sigma(args) -> int:
    table = ComparisonTable(f"sigma sweep — {args.dataset}/{args.attack}")
    for sigma in args.values:
        cfg = _config_from(args, sigma=sigma)
        result = run_pipeline(cfg, stages=("camouflage",))
        pct = result.camouflage.as_percent()
        table.add(f"sigma={sigma:g}", "ASR", None, pct.asr)
        table.add(f"sigma={sigma:g}", "BA", None, pct.ba)
        print(f"  sigma={sigma:g}: BA={pct.ba:.2f}% ASR={pct.asr:.2f}%")
    table.print()
    return 0


def cmd_table1(_args) -> int:
    print(format_table())
    return 0


def cmd_profiles(_args) -> int:
    print(f"{'profile':<18} {'classes':>7} {'size':>5} {'train':>7} {'test':>6}")
    for name in available_profiles():
        profile = get_profile(name)
        print(f"{name:<18} {profile.num_classes:>7} "
              f"{profile.spec.image_size:>5} {profile.train_size:>7} "
              f"{profile.test_size:>6}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ReVeil concealed-backdoor reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("pipeline", help="run poison/camouflage/unlearn")
    _add_common(p)
    p.add_argument("--cr", type=float, default=5.0)
    p.add_argument("--sigma", type=float, default=1e-3)
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser("sweep-cr", help="ASR vs camouflage ratio")
    _add_common(p)
    p.add_argument("--sigma", type=float, default=1e-3)
    p.add_argument("--values", type=float, nargs="+",
                   default=[1.0, 2.0, 3.0, 5.0])
    p.set_defaults(func=cmd_sweep_cr)

    p = sub.add_parser("sweep-sigma", help="ASR vs camouflage noise")
    _add_common(p)
    p.add_argument("--cr", type=float, default=5.0)
    p.add_argument("--values", type=float, nargs="+",
                   default=[1e-1, 1e-2, 1e-3, 1e-4, 1e-5])
    p.set_defaults(func=cmd_sweep_sigma)

    p = sub.add_parser("table1", help="print the Table-I capability matrix")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("profiles", help="list dataset profiles")
    p.set_defaults(func=cmd_profiles)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
