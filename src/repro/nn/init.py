"""Weight initialization schemes.

Kaiming (He) initialization for ReLU networks and Xavier (Glorot) for
linear/sigmoid heads, plus a seedable module-level RNG so experiments are
reproducible run to run (the paper averages five seeds; our harness
re-seeds per run).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Tuple

import numpy as np

_rng = np.random.default_rng(0)


def manual_seed(seed: int) -> None:
    """Re-seed the initializer RNG (and nothing else)."""
    global _rng
    _rng = np.random.default_rng(seed)


def get_rng() -> np.random.Generator:
    """The RNG used by all initializers (for tests that need determinism)."""
    return _rng


@contextmanager
def scoped_seed(seed: int):
    """Reseed the initializer RNG for a block, then restore the ambient
    stream — including its exact position.  For internal machinery that
    must build throwaway models (e.g. lane-sizing probes) without
    perturbing the caller's reproducibility."""
    global _rng
    saved = _rng
    _rng = np.random.default_rng(seed)
    try:
        yield
    finally:
        _rng = saved


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear (O, I) and conv (O, I, kh, kw)."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-normal init: std = gain / sqrt(fan_in).  Default gain is ReLU's."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(fan_in)
    return _rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, ...], gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-uniform init: bound = gain * sqrt(3 / fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return _rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform init: bound = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
