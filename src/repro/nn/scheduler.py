"""Learning-rate schedulers.

The paper uses ``CosineAnnealingLR(T_max=100)`` over 100 epochs; our scaled
runs use the same scheduler with a scaled ``T_max``.
"""

from __future__ import annotations

import math

from .optim import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.base_lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class CosineAnnealingLR(LRScheduler):
    """lr(t) = eta_min + (base - eta_min) * (1 + cos(pi * t / T_max)) / 2."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        cos_term = (1.0 + math.cos(math.pi * t / self.t_max)) / 2.0
        return self.eta_min + (self.base_lr - self.eta_min) * cos_term


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class ConstantLR(LRScheduler):
    """No-op scheduler (keeps the base learning rate)."""

    def get_lr(self) -> float:
        return self.base_lr
