"""Compiled inference graphs: trace → fuse → arena-plan → autotune.

The interpreted path executes a model module-by-module, materializing a
fresh array per op.  For serving that is pure overhead: the fixed
compute-width determinism contract means every forward of a registered
model version runs at one batch shape, so the whole op sequence — shapes,
dtypes, buffer sizes, conv geometries — is known ahead of time.  This
module compiles that knowledge into a flat program:

- **Trace.**  Run the folded model once at its serving width with the
  ``Tensor`` primitive methods and :mod:`repro.nn.functional` kernels
  temporarily wrapped by recording shims.  Every op lands in a flat node
  list; tensors the trace never saw produced (parameters, buffers,
  eval-mode BatchNorm statistics) are captured as constants, and ops
  whose inputs are all constants fold away at trace time (``weight.T``
  in a linear head, the ``(var + eps) ** -0.5`` of an eval BatchNorm1d).
- **Fuse.**  An elementwise node whose input buffer has no later
  readers writes its result *into that buffer* instead of a fresh one —
  conv→bias→ReLU chains and residual adds collapse onto the conv's GEMM
  output with zero extra traffic.  ``fused=False`` disables the reuse
  (every node gets its own buffer) for A/B testing.
- **Arena.**  Remaining intermediate buffers get liveness intervals and
  a greedy first-fit offset assignment into one preallocated byte arena,
  so steady-state serving performs no per-batch intermediate
  allocation.
- **Autotune.**  Per-(conv geometry, width) the batch row-block count of
  the im2col GEMM is timed across a small candidate set, replacing the
  global :data:`repro.nn.threading.NUM_BLOCKS` with a tuned table that
  persists in the plan and ships to workers/hosts so they never re-tune.

Bit-identity is the hard gate: each node replays the *exact* numpy
expression the interpreted path runs (``relu`` is greater+multiply so
negative zeros keep their sign, max-pool replays argmax+take so ±0.0
ties resolve identically, rare ops re-run the original interpreted
function into the arena).  Forward conv GEMMs are per-sample independent
so block-count changes cannot move a bit.  :func:`compile` then
*verifies* the program against the interpreted path on a second, fresh
batch — any divergence (including data-dependent constants left behind
by an untraceable op) raises :class:`TraceError` and the model falls
back, with a once-per-model warning, to the interpreted folded copy.

Public surface: :func:`compile` → :class:`CompiledModel`
(``__call__`` / ``.plan`` / ``.save`` / ``.load``) and
:func:`prepare_for_inference`, the single front door consolidating the
older ``inference_copy`` / ``predict_logits(fold=)`` entry points.
"""

from __future__ import annotations

import json
import threading as _threading
import time
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import profile as _profile
from . import functional as F
from .fold import _state_fingerprint, count_foldable, shared_folded_cache
from .module import Module
from .tensor import Tensor, ensure_tensor, no_grad
from .threading import MIN_BLOCK_BATCH, batch_blocks, map_blocks

#: Arena offsets are aligned to this many bytes (cache-line friendly).
_ALIGN = 64

#: Candidate conv row-block counts tried by the autotuner.
AUTOTUNE_CANDIDATES = (1, 2, 4, 8, 16)

#: Timing repetitions per candidate (min is taken).
AUTOTUNE_REPS = 2


class TraceError(RuntimeError):
    """The model could not be traced (or the trace failed verification).

    :func:`compile` never lets this escape — it falls back to the
    interpreted path and warns once — but the error is preserved as
    :attr:`CompiledModel.fallback_reason` for diagnostics.
    """


# ---------------------------------------------------------------------------
# Trace-time structures
# ---------------------------------------------------------------------------

#: A node input: an int (producing node index) or a captured constant array.
_Operand = Union[int, np.ndarray]


class _TraceNode:
    __slots__ = ("op", "inputs", "params", "shape", "dtype", "value")

    def __init__(self, op: str, inputs: List[_Operand], params: dict,
                 value: np.ndarray):
        self.op = op
        self.inputs = inputs
        self.params = params
        self.shape = value.shape
        self.dtype = value.dtype
        self.value = value


class _Tracer:
    """Accumulates the op graph while the wrapped forward runs."""

    def __init__(self):
        self.nodes: List[_TraceNode] = []
        self.index_of: Dict[int, int] = {}
        # Strong refs to every produced tensor: without them CPython may
        # reuse a freed tensor's id() mid-trace and corrupt index_of.
        self.keepalive: List[Tensor] = []

    def begin(self, x: Tensor) -> None:
        self.nodes.append(_TraceNode("input", [], {}, x.data))
        self.index_of[id(x)] = 0
        self.keepalive.append(x)

    def operand(self, value: Any) -> _Operand:
        """Node index for traced tensors; captured array for constants.

        Constants are captured exactly as the interpreted op sees them
        (``ensure_tensor`` coerces python scalars to float32 0-d
        arrays), aliasing — not copying — tensor data: the folded model
        is frozen, so its parameters cannot drift under the plan.
        """
        if isinstance(value, Tensor):
            idx = self.index_of.get(id(value))
            if idx is not None:
                return idx
            return value.data
        return ensure_tensor(value).data

    def record(self, op: str, inputs: List[_Operand], out: Tensor,
               **params) -> None:
        if not any(isinstance(i, int) for i in inputs):
            return      # all-constant op: fold by leaving the output untracked
        self.index_of[id(out)] = len(self.nodes)
        self.nodes.append(_TraceNode(op, inputs, params, out.data))
        self.keepalive.append(out)


_TLS = _threading.local()


def _tracer() -> Optional[_Tracer]:
    return getattr(_TLS, "tracer", None)


# ---------------------------------------------------------------------------
# Recording wrappers
# ---------------------------------------------------------------------------

def _sum_args(args, kwargs):
    axis = kwargs.get("axis", args[0] if len(args) > 0 else None)
    keepdims = kwargs.get("keepdims", args[1] if len(args) > 1 else False)
    return axis, keepdims


def _record_binary(op):
    def rec(tr, orig, self, args, kwargs, out):
        tr.record(op, [tr.operand(self), tr.operand(args[0])], out)
    return rec


def _record_unary(op):
    def rec(tr, orig, self, args, kwargs, out):
        tr.record(op, [tr.operand(self)], out)
    return rec


def _record_opaque_method(op):
    """Replay by re-running the original Tensor method (rare ops)."""
    def rec(tr, orig, self, args, kwargs, out):
        tr.record(op, [tr.operand(self)], out,
                  orig=orig, args=args, kwargs=kwargs)
    return rec


def _rec_reshape(tr, orig, self, args, kwargs, out):
    tr.record("reshape", [tr.operand(self)], out, shape=out.data.shape)


def _rec_transpose(tr, orig, self, args, kwargs, out):
    if not args:
        axes = tuple(reversed(range(self.ndim)))
    elif len(args) == 1 and isinstance(args[0], (tuple, list)):
        axes = tuple(args[0])
    else:
        axes = tuple(args)
    tr.record("transpose", [tr.operand(self)], out, axes=axes)


def _rec_getitem(tr, orig, self, args, kwargs, out):
    tr.record("getitem", [tr.operand(self)], out, index=args[0])


def _rec_sum(tr, orig, self, args, kwargs, out):
    axis, keepdims = _sum_args(args, kwargs)
    tr.record("sum", [tr.operand(self)], out, axis=axis, keepdims=keepdims)


def _rec_clip(tr, orig, self, args, kwargs, out):
    low = kwargs.get("low", args[0] if len(args) > 0 else None)
    high = kwargs.get("high", args[1] if len(args) > 1 else None)
    tr.record("clip", [tr.operand(self)], out, low=low, high=high)


#: Tensor methods wrapped during a trace → recorder.
_TENSOR_RECORDERS = {
    "__add__": _record_binary("add"),
    "__radd__": _record_binary("add"),
    "__mul__": _record_binary("mul"),
    "__rmul__": _record_binary("mul"),
    "__truediv__": _record_binary("div"),
    "matmul": _record_binary("matmul"),
    "__matmul__": _record_binary("matmul"),
    "__neg__": _record_unary("neg"),
    "exp": _record_unary("exp"),
    "log": _record_unary("log"),
    "sqrt": _record_unary("sqrt"),
    "tanh": _record_unary("tanh"),
    "relu": _record_unary("relu"),
    "sigmoid": _record_opaque_method("sigmoid"),
    "__pow__": _record_opaque_method("pow"),
    "max": _record_opaque_method("max"),
    "reshape": _rec_reshape,
    "transpose": _rec_transpose,
    "__getitem__": _rec_getitem,
    "sum": _rec_sum,
    "clip": _rec_clip,
}


def _rec_conv2d(tr, orig, args, kwargs, out):
    x = args[0]
    src = tr.operand(x)
    if not isinstance(src, int):
        return
    weight = args[1]
    bias = kwargs.get("bias", args[2] if len(args) > 2 else None)
    stride = kwargs.get("stride", args[3] if len(args) > 3 else 1)
    padding = kwargs.get("padding", args[4] if len(args) > 4 else 0)
    groups = kwargs.get("groups", args[5] if len(args) > 5 else 1)
    tr.record("conv2d", [src], out,
              weight=weight.data,
              bias=None if bias is None else bias.data,
              stride=stride, padding=padding, groups=int(groups),
              in_shape=x.shape)


def _rec_max_pool2d(tr, orig, args, kwargs, out):
    src = tr.operand(args[0])
    if not isinstance(src, int):
        return
    kernel = kwargs.get("kernel_size", args[1] if len(args) > 1 else 2)
    tr.record("max_pool2d", [src], out, kernel=kernel,
              in_shape=args[0].shape)


def _rec_avg_pool2d(tr, orig, args, kwargs, out):
    src = tr.operand(args[0])
    if not isinstance(src, int):
        return
    kernel = kwargs.get("kernel_size", args[1] if len(args) > 1 else 2)
    tr.record("avg_pool2d", [src], out, kernel=kernel,
              in_shape=args[0].shape)


def _rec_pad2d(tr, orig, args, kwargs, out):
    src = tr.operand(args[0])
    if not isinstance(src, int):
        return
    padding = kwargs.get("padding", args[1])
    tr.record("pad2d", [src], out, padding=padding, in_shape=args[0].shape)


def _rec_batch_norm(tr, orig, args, kwargs, out):
    src = tr.operand(args[0])
    if not isinstance(src, int):
        return
    training = kwargs.get("training", args[5] if len(args) > 5 else False)
    if training:
        raise TraceError("cannot compile a training-mode batch_norm; "
                         "call model.eval() before compiling")
    tr.record("batch_norm", [src], out, orig=orig,
              args=args[1:], kwargs=kwargs)


_FUNCTIONAL_RECORDERS = {
    "conv2d": _rec_conv2d,
    "max_pool2d": _rec_max_pool2d,
    "avg_pool2d": _rec_avg_pool2d,
    "pad2d": _rec_pad2d,
    "batch_norm": _rec_batch_norm,
}


class _Patcher:
    """Temporarily installs recording wrappers on ``Tensor`` and ``F``.

    Wrappers call the original (so the traced forward computes real
    values) and record only when *this thread* owns the active tracer —
    concurrent interpreted forwards on other threads pass straight
    through.  Always used under :data:`_COMPILE_LOCK`.
    """

    def __init__(self):
        self._saved: List[Tuple[Any, str, Any]] = []

    def __enter__(self):
        for name, rec in _TENSOR_RECORDERS.items():
            orig = getattr(Tensor, name)
            self._saved.append((Tensor, name, orig))
            setattr(Tensor, name, self._wrap_method(orig, rec))
        for name, rec in _FUNCTIONAL_RECORDERS.items():
            orig = getattr(F, name)
            self._saved.append((F, name, orig))
            setattr(F, name, self._wrap_function(orig, rec))
        return self

    def __exit__(self, *exc):
        for holder, name, orig in reversed(self._saved):
            setattr(holder, name, orig)
        self._saved.clear()

    @staticmethod
    def _wrap_method(orig, rec):
        def wrapped(self, *args, **kwargs):
            out = orig(self, *args, **kwargs)
            tr = _tracer()
            if tr is not None and isinstance(out, Tensor):
                rec(tr, orig, self, args, kwargs, out)
            return out
        wrapped.__name__ = getattr(orig, "__name__", "wrapped")
        return wrapped

    @staticmethod
    def _wrap_function(orig, rec):
        def wrapped(*args, **kwargs):
            out = orig(*args, **kwargs)
            tr = _tracer()
            if tr is not None and isinstance(out, Tensor):
                rec(tr, orig, args, kwargs, out)
            return out
        wrapped.__name__ = getattr(orig, "__name__", "wrapped")
        return wrapped


_COMPILE_LOCK = _threading.Lock()


def _trace(model: Module, x: Tensor) -> Tuple[List[_TraceNode], int]:
    """Trace ``model(x)`` into a flat node list; returns (nodes, out_idx)."""
    tracer = _Tracer()
    tracer.begin(x)
    _TLS.tracer = tracer
    try:
        with _Patcher():
            with no_grad():
                out = model(x)
    finally:
        _TLS.tracer = None
    if not isinstance(out, Tensor):
        raise TraceError(f"model returned {type(out).__name__}, not a Tensor")
    out_idx = tracer.index_of.get(id(out))
    if out_idx is None:
        raise TraceError("model output is not a traced function of the "
                         "input (an untraceable op broke the chain)")
    return tracer.nodes, out_idx


def _prune(nodes: List[_TraceNode], out_idx: int) -> Tuple[List[_TraceNode], int]:
    """Drop nodes unreachable from the output (keeps trace order)."""
    reachable = {out_idx}
    stack = [out_idx]
    while stack:
        for operand in nodes[stack.pop()].inputs:
            if isinstance(operand, int) and operand not in reachable:
                reachable.add(operand)
                stack.append(operand)
    reachable.add(0)
    remap: Dict[int, int] = {}
    kept: List[_TraceNode] = []
    for i, node in enumerate(nodes):
        if i not in reachable:
            continue
        remap[i] = len(kept)
        kept.append(node)
    for node in kept:
        node.inputs = [remap[op] if isinstance(op, int) else op
                       for op in node.inputs]
    return kept, remap[out_idx]


# ---------------------------------------------------------------------------
# Planning: storages, fusion, arena
# ---------------------------------------------------------------------------

_VIEW_OPS = {"reshape", "transpose", "getitem"}
_ELEMENTWISE_UFUNCS = {"add": np.add, "mul": np.multiply, "div": np.divide,
                       "neg": np.negative, "exp": np.exp, "log": np.log,
                       "sqrt": np.sqrt, "tanh": np.tanh}
#: Ops whose replay is an aligned elementwise write — safe to run with
#: ``out=`` aliasing a same-shaped input buffer.
_INPLACE_OK = set(_ELEMENTWISE_UFUNCS) | {"clip", "relu"}
_INPUT_STORAGE = -1


def _aligned(nbytes: int) -> int:
    return (int(nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN


def _conv_geom(node: _TraceNode) -> tuple:
    n, c, h, w = node.params["in_shape"]
    o, cpg, kh, kw = node.params["weight"].shape
    sh, sw = F._pair(node.params["stride"])
    ph, pw = F._pair(node.params["padding"])
    return (c, h, w, kh, kw, sh, sw, ph, pw)


def tuned_key(geom: tuple, n: int) -> str:
    """JSON-safe tuned-table key: ``"c,h,w,kh,kw,sh,sw,ph,pw|n"``."""
    return ",".join(str(v) for v in geom) + f"|{n}"


def _plan_storages(nodes: List[_TraceNode], out_idx: int, fused: bool,
                   ) -> Tuple[List[int], Dict[int, int], int]:
    """Assign a storage root to every node; merge in-place-safe chains.

    Returns ``(storage_of, end_of, fused_count)`` where ``storage_of[i]``
    is the root node index owning node *i*'s bytes (or
    :data:`_INPUT_STORAGE`), and ``end_of[root]`` the last node index
    reading that storage.
    """
    storage_of: List[int] = [0] * len(nodes)
    storage_of[0] = _INPUT_STORAGE

    # Pass A: storages without fusion (views share their base's root),
    # and per-root last-use from the consumer lists.
    for i, node in enumerate(nodes):
        if i == 0:
            continue
        if node.op in _VIEW_OPS:
            storage_of[i] = storage_of[node.inputs[0]]
        else:
            storage_of[i] = i
    tentative_end: Dict[int, int] = {}
    for i, node in enumerate(nodes):
        for operand in node.inputs:
            if isinstance(operand, int):
                root = storage_of[operand]
                if root != _INPUT_STORAGE:
                    tentative_end[root] = i

    # Pass B: merge an elementwise node onto an input buffer that dies at
    # this very node.  Merging re-roots the node's own storage group, so
    # chains (conv → relu → residual-add) collapse transitively.
    end_of = dict(tentative_end)
    fused_count = 0
    if fused:
        for i, node in enumerate(nodes):
            if node.op not in _INPLACE_OK or storage_of[i] != i:
                continue
            for operand in node.inputs:
                if not isinstance(operand, int):
                    continue
                root = storage_of[operand]
                src = nodes[operand]
                if (root == _INPUT_STORAGE
                        or src.shape != node.shape
                        or src.dtype != node.dtype
                        or end_of.get(root) != i):
                    continue
                # Another input aliasing the same bytes through a
                # different layout would read partially-overwritten
                # data; only the identical array is safe.
                conflict = any(
                    isinstance(other, int) and other != operand
                    and storage_of[other] == root
                    for other in node.inputs)
                if conflict:
                    continue
                old_end = end_of.pop(i, i)
                end_of[root] = max(end_of.get(root, i), old_end)
                storage_of = [root if s == i else s for s in storage_of]
                fused_count += 1
                break

    out_root = storage_of[out_idx]
    if out_root != _INPUT_STORAGE:
        end_of[out_root] = len(nodes)
    return storage_of, end_of, fused_count


class _Arena:
    """Greedy first-fit offset assignment over liveness intervals."""

    def __init__(self):
        self._placed: List[Tuple[int, int, int, int]] = []  # off, size, s, e
        self.total = 0

    def place(self, nbytes: int, start: int, end: int) -> int:
        size = _aligned(max(nbytes, 1))
        live = sorted((off, sz) for off, sz, s, e in self._placed
                      if not (e < start or s > end))
        offset = 0
        for off, sz in live:
            if offset + size <= off:
                break
            offset = max(offset, off + sz)
        self._placed.append((offset, size, start, end))
        self.total = max(self.total, offset + size)
        return offset


# ---------------------------------------------------------------------------
# Program construction (replay closures over arena views)
# ---------------------------------------------------------------------------

class GraphProgram:
    """A compiled flat program: ordered replay closures over one arena."""

    def __init__(self, runs: List[Optional[Callable]], out_idx: int,
                 input_shape: Tuple[int, ...], arena: np.ndarray,
                 conv_tuners: List[dict]):
        self._runs = runs
        self._out = out_idx
        self.input_shape = input_shape
        self.arena = arena
        self.conv_tuners = conv_tuners   # [{key, n, holder, gemm}] per conv
        self._values: List[Optional[np.ndarray]] = [None] * len(runs)

    def run(self, batch: np.ndarray) -> np.ndarray:
        values = self._values
        values[0] = batch
        runs = self._runs
        for i in range(1, len(runs)):
            values[i] = runs[i](values)
        out = values[self._out].copy()
        for i in range(len(values)):
            values[i] = None
        return out


def _resolve(operand: _Operand, values: list) -> np.ndarray:
    return values[operand] if isinstance(operand, int) else operand


def _build_program(nodes: List[_TraceNode], out_idx: int,
                   storage_of: List[int], end_of: Dict[int, int],
                   tuned: Dict[str, int]) -> GraphProgram:
    arena = _Arena()
    offsets: Dict[int, int] = {}
    # Root buffers in definition order, then per-node scratch (lifetime
    # exactly [i, i]) — the allocator recycles dead bytes automatically.
    for i, node in enumerate(nodes):
        root = storage_of[i]
        if root == i:
            nbytes = int(np.prod(node.shape, dtype=np.int64)
                         * node.dtype.itemsize)
            offsets[i] = arena.place(nbytes, i, end_of.get(i, i))

    scratch_specs: Dict[int, List[Tuple[Tuple[int, ...], np.dtype]]] = {}
    for i, node in enumerate(nodes):
        specs: List[Tuple[Tuple[int, ...], np.dtype]] = []
        if node.op == "relu":
            specs.append((node.shape, np.dtype(bool)))
        elif node.op == "max_pool2d":
            n, c, h, w = node.params["in_shape"]
            kh, kw = F._pair(node.params["kernel"])
            oh, ow = h // kh, w // kw
            specs.append(((n, c, oh, ow, kh * kw), np.dtype(np.float32)))
            specs.append(((n, c, oh, ow), np.dtype(np.intp)))
        elif node.op == "conv2d":
            geom = _conv_geom(node)
            c, h, w, kh, kw, sh, sw, ph, pw = geom
            n = node.params["in_shape"][0]
            if ph or pw:
                specs.append(((n, c, h + 2 * ph, w + 2 * pw),
                              np.dtype(np.float32)))
            key = (geom[0], geom[1], geom[2], kh, kw, sh, sw, ph, pw)
            _, _, _, out_h, out_w = F._cached_indices(key)
            specs.append(((n, c, kh, kw, out_h, out_w), np.dtype(np.float32)))
        if specs:
            scratch_specs[i] = specs
    scratch_offsets: Dict[int, List[int]] = {}
    for i, specs in scratch_specs.items():
        scratch_offsets[i] = [
            arena.place(int(np.prod(shape, dtype=np.int64) * dtype.itemsize),
                        i, i)
            for shape, dtype in specs]

    buf = np.empty(arena.total, dtype=np.uint8)

    def view(offset: int, shape: Tuple[int, ...], dtype) -> np.ndarray:
        nbytes = int(np.prod(shape, dtype=np.int64) * np.dtype(dtype).itemsize)
        return buf[offset:offset + nbytes].view(dtype).reshape(shape)

    def out_array(i: int) -> np.ndarray:
        return view(offsets[storage_of[i]], nodes[i].shape, nodes[i].dtype)

    def scratch_arrays(i: int) -> List[np.ndarray]:
        return [view(off, shape, dtype)
                for off, (shape, dtype) in zip(scratch_offsets[i],
                                               scratch_specs[i])]

    runs: List[Optional[Callable]] = [None] * len(nodes)
    conv_tuners: List[dict] = []
    for i, node in enumerate(nodes):
        if i == 0:
            continue
        runs[i] = _build_node(node, i, out_array, scratch_arrays,
                              tuned, conv_tuners)

    return GraphProgram(runs, out_idx, nodes[0].shape, buf, conv_tuners)


def _build_node(node: _TraceNode, i: int, out_array, scratch_arrays,
                tuned: Dict[str, int], conv_tuners: List[dict]) -> Callable:
    op, inputs, params = node.op, tuple(node.inputs), node.params

    if op in _VIEW_OPS:
        src = inputs[0]
        if op == "reshape":
            shape = params["shape"]
            return lambda values: values[src].reshape(shape)
        if op == "transpose":
            axes = params["axes"]
            return lambda values: values[src].transpose(axes)
        index = params["index"]
        return lambda values: values[src][index]

    out = out_array(i)

    if op in _ELEMENTWISE_UFUNCS:
        ufunc = _ELEMENTWISE_UFUNCS[op]
        if len(inputs) == 1:
            a = inputs[0]

            def run(values):
                ufunc(_resolve(a, values), out=out)
                return out
            return run
        a, b = inputs

        def run(values):
            ufunc(_resolve(a, values), _resolve(b, values), out=out)
            return out
        return run

    if op == "relu":
        a = inputs[0]
        (mask,) = scratch_arrays(i)

        def run(values):
            x = _resolve(a, values)
            np.greater(x, 0, out=mask)
            np.multiply(x, mask, out=out)
            return out
        return run

    if op == "clip":
        a, low, high = inputs[0], params["low"], params["high"]

        def run(values):
            np.clip(_resolve(a, values), low, high, out=out)
            return out
        return run

    if op == "sum":
        a, axis, keepdims = inputs[0], params["axis"], params["keepdims"]

        def run(values):
            np.sum(_resolve(a, values), axis=axis, keepdims=keepdims, out=out)
            return out
        return run

    if op == "matmul":
        a, b = inputs

        def run(values):
            np.matmul(_resolve(a, values), _resolve(b, values), out=out)
            return out
        return run

    if op in ("sigmoid", "pow", "max"):
        a = inputs[0]
        orig, args, kwargs = params["orig"], params["args"], params["kwargs"]

        def run(values):
            res = orig(Tensor(_resolve(a, values)), *args, **kwargs)
            np.copyto(out, res.data)
            return out
        return run

    if op == "batch_norm":
        a = inputs[0]
        orig, args, kwargs = params["orig"], params["args"], params["kwargs"]

        def run(values):
            res = orig(Tensor(_resolve(a, values)), *args, **kwargs)
            np.copyto(out, res.data)
            return out
        return run

    if op == "pad2d":
        a = inputs[0]
        ph, pw = F._pair(params["padding"])
        _, _, h, w = params["in_shape"]
        interior = out[:, :, ph:ph + h, pw:pw + w]

        def run(values):
            out.fill(0.0)
            np.copyto(interior, _resolve(a, values))
            return out
        return run

    if op == "avg_pool2d":
        a = inputs[0]
        n, c, h, w = params["in_shape"]
        kh, kw = F._pair(params["kernel"])
        oh, ow = h // kh, w // kw

        def run(values):
            x = _resolve(a, values)
            np.mean(x.reshape(n, c, oh, kh, ow, kw), axis=(3, 5), out=out)
            return out
        return run

    if op == "max_pool2d":
        a = inputs[0]
        n, c, h, w = params["in_shape"]
        kh, kw = F._pair(params["kernel"])
        oh, ow = h // kh, w // kw
        win5, argbuf = scratch_arrays(i)
        win6 = win5.reshape(n, c, oh, ow, kh, kw)

        def run(values):
            x = _resolve(a, values)
            x6 = x.reshape(n, c, oh, kh, ow, kw)
            np.copyto(win6, x6.transpose(0, 1, 2, 4, 3, 5))
            np.argmax(win5, axis=-1, out=argbuf)
            taken = np.take_along_axis(win5, argbuf[..., None], axis=-1)
            np.copyto(out, taken[..., 0])
            return out
        return run

    if op == "conv2d":
        return _build_conv(node, i, out, scratch_arrays, tuned, conv_tuners)

    raise TraceError(f"no replay rule for traced op {op!r}")


def _build_conv(node: _TraceNode, i: int, out: np.ndarray, scratch_arrays,
                tuned: Dict[str, int], conv_tuners: List[dict]) -> Callable:
    params = node.params
    a = node.inputs[0]
    n, c, h, w = params["in_shape"]
    weight, bias = params["weight"], params["bias"]
    groups = params["groups"]
    geom = _conv_geom(node)
    _, _, _, kh, kw, sh, sw, ph, pw = geom
    _, _, _, out_h, out_w = F._cached_indices(geom)
    o = weight.shape[0]
    loc = out_h * out_w
    kdim = (c // groups) * kh * kw
    w_g = weight.reshape(groups, o // groups, kdim)
    bias_r = None if bias is None else bias.reshape(1, o, 1, 1)

    scratch = scratch_arrays(i)
    pad_buf = scratch[0] if (ph or pw) else None
    cols6 = scratch[-1]
    cols_g = cols6.reshape(n, groups, kdim, loc)
    gemm = out.reshape(n, groups, o // groups, loc)
    out4 = out   # node shape is already (n, o, out_h, out_w)

    key = tuned_key(geom, n)
    holder = [batch_blocks(n, tuned.get(key))]

    def _gemm(blocks: Sequence[slice]) -> None:
        if len(blocks) == 1:
            np.matmul(w_g[None], cols_g, out=gemm)
        else:
            map_blocks(lambda sl, _b: np.matmul(w_g[None], cols_g[sl],
                                                out=gemm[sl]), blocks)

    if n >= MIN_BLOCK_BATCH:
        conv_tuners.append({"key": key, "n": n, "holder": holder,
                            "gemm": _gemm})

    def run(values):
        x = _resolve(a, values)
        if pad_buf is not None:
            pad_buf.fill(0.0)
            np.copyto(pad_buf[:, :, ph:ph + h, pw:pw + w], x)
            xp = pad_buf
        else:
            xp = x
        windows = np.lib.stride_tricks.sliding_window_view(
            xp, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
        np.copyto(cols6, windows.transpose(0, 1, 4, 5, 2, 3))
        _prof = _profile.ACTIVE
        token = _prof.start("conv.forward") if _prof is not None else None
        _gemm(holder[0])
        if _prof is not None:
            _prof.stop(token)
        if bias_r is not None:
            np.add(out4, bias_r, out=out4)
        return out4
    return run


# ---------------------------------------------------------------------------
# Autotune
# ---------------------------------------------------------------------------

def _split(n: int, count: int) -> List[slice]:
    return batch_blocks(n, count)


def _autotune(program: GraphProgram, tuned: Dict[str, int]) -> None:
    """Time candidate row-block counts per conv; smallest count wins ties.

    Runs against whatever the trace left in the arena buffers, so the
    GEMMs see realistic data.  Forward conv GEMMs are per-sample
    independent, so the chosen count cannot change any output bit.
    """
    for tuner in program.conv_tuners:
        if tuner["key"] in tuned:
            tuner["holder"][0] = _split(tuner["n"], tuned[tuner["key"]])
            continue
        n, gemm = tuner["n"], tuner["gemm"]
        best_count, best_time = 1, None
        for cand in AUTOTUNE_CANDIDATES:
            if cand > n:
                break
            blocks = _split(n, cand)
            elapsed = None
            for _ in range(AUTOTUNE_REPS):
                t0 = time.perf_counter()
                gemm(blocks)
                dt = time.perf_counter() - t0
                elapsed = dt if elapsed is None else min(elapsed, dt)
            if best_time is None or elapsed < best_time:
                best_count, best_time = cand, elapsed
        tuned[tuner["key"]] = best_count
        tuner["holder"][0] = _split(n, best_count)


def _apply_tuned(program: GraphProgram, tuned: Dict[str, int]) -> None:
    for tuner in program.conv_tuners:
        count = tuned.get(tuner["key"])
        if count:
            tuner["holder"][0] = _split(tuner["n"], int(count))


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

class CompiledModel:
    """A model compiled for one exact batch shape.

    Calls with the compiled ``(width, *input_shape)`` batch run the flat
    arena program; any other shape — and every call when compilation
    fell back — delegates to the interpreted folded model, so a
    ``CompiledModel`` is always safe to serve through.  Execution holds
    a per-instance lock (the arena is single-flight); the serving layer
    runs one batch at a time per model anyway.
    """

    def __init__(self, model: Module, program: Optional[GraphProgram],
                 plan: Dict[str, Any], width: int,
                 fallback_reason: Optional[str] = None):
        self.model = model
        self.width = width
        self.plan = plan
        self.fallback_reason = fallback_reason
        self._program = program
        self._lock = _threading.Lock()

    @property
    def compiled(self) -> bool:
        return self._program is not None

    def __call__(self, x) -> Tensor:
        tensor_in = isinstance(x, Tensor)
        arr = x.data if tensor_in else np.asarray(x, dtype=np.float32)
        program = self._program
        if program is None or arr.shape != ((self.width,)
                                            + program.input_shape[1:]):
            return self.model(x if tensor_in else Tensor(arr))
        _prof = _profile.ACTIVE
        token = _prof.start("compiled.forward") if _prof is not None else None
        with self._lock:
            out = program.run(np.ascontiguousarray(arr, dtype=np.float32))
        if _prof is not None:
            _prof.stop(token)
        return Tensor(out)

    def save(self, path) -> None:
        """Persist the plan (JSON: ops/fused/arena_bytes/tuned/width)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.plan, fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path, model: Module) -> "CompiledModel":
        """Recompile ``model`` under a saved plan (no re-autotune)."""
        with open(path, "r", encoding="utf-8") as fh:
            plan = json.load(fh)
        shape = plan.get("input_shape")
        return compile(model, int(plan["width"]),
                       input_shape=tuple(shape) if shape else None,
                       tuned={str(k): int(v)
                              for k, v in (plan.get("tuned") or {}).items()},
                       autotune=False)

    def __repr__(self) -> str:
        state = "compiled" if self.compiled else "fallback"
        return (f"CompiledModel(width={self.width}, {state}, "
                f"ops={self.plan.get('ops', 0)}, "
                f"fused={self.plan.get('fused', 0)}, "
                f"arena_bytes={self.plan.get('arena_bytes', 0)})")


_FALLBACK_WARNED: set = set()
_WARN_LOCK = _threading.Lock()


def _warn_fallback(model: Module, exc: Exception) -> None:
    key = (type(model).__name__, type(exc).__name__)
    with _WARN_LOCK:
        if key in _FALLBACK_WARNED:
            return
        _FALLBACK_WARNED.add(key)
    warnings.warn(
        f"repro.nn.compile fell back to the interpreted path for "
        f"{type(model).__name__}: {exc}", RuntimeWarning, stacklevel=3)


def _guess_input_shape(model: Module) -> Optional[Tuple[int, ...]]:
    shape = getattr(model, "input_shape", None)
    if shape:
        return tuple(int(s) for s in shape)
    return None


def _folded_for(model: Module) -> Module:
    """The interpreted reference: a folded frozen copy (shared cache)."""
    if getattr(model, "training", False) or count_foldable(model):
        return shared_folded_cache().get(model)
    return model


def compile(model: Module, width: int, *,
            input_shape: Optional[Tuple[int, ...]] = None,
            fused: bool = True, autotune: bool = True,
            tuned: Optional[Dict[str, int]] = None,
            verify: bool = True) -> CompiledModel:
    """Compile ``model`` for batches of exactly ``width`` samples.

    The model is folded first (through the shared folded cache) unless
    it already is; the folded copy is both the trace subject and the
    interpreted fallback.  ``input_shape`` is the per-sample shape —
    taken from ``model.input_shape`` when omitted.  ``tuned`` seeds the
    conv block table (a shipped plan skips re-autotuning);
    ``verify=True`` replays a second, fresh batch through the program
    and byte-compares against the interpreted path before accepting the
    plan.  Any failure returns a fallback :class:`CompiledModel`
    (interpreted path, ``compiled=False``) and warns once per model
    class and failure kind.
    """
    width = int(width)
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    folded = _folded_for(model)
    plan: Dict[str, Any] = {"ops": 0, "fused": 0, "arena_bytes": 0,
                            "tuned": {}, "width": width, "input_shape": None}
    try:
        shape = input_shape or _guess_input_shape(folded)
        if shape is None:
            raise TraceError(
                "input_shape is required (pass input_shape= or set "
                "model.input_shape)")
        shape = tuple(int(s) for s in shape)
        table = {str(k): int(v) for k, v in (tuned or {}).items()}
        rng = np.random.default_rng(0x5EED ^ (width * 2654435761 % (1 << 31)))
        batch_a = rng.standard_normal((width,) + shape,
                                      dtype=np.float32)
        with _COMPILE_LOCK:
            nodes, out_idx = _trace(folded, Tensor(batch_a))
        nodes, out_idx = _prune(nodes, out_idx)
        storage_of, end_of, fused_count = _plan_storages(nodes, out_idx, fused)
        program = _build_program(nodes, out_idx, storage_of, end_of, table)
        # Warm run: proves the replay executes and fills the arena with
        # realistic data for the autotune timings.
        warm = program.run(batch_a)
        if autotune:
            _autotune(program, table)
        else:
            _apply_tuned(program, table)
        if verify:
            vrng = np.random.default_rng(
                0xA11CE ^ (width * 40503 % (1 << 31)))
            batch_b = vrng.standard_normal((width,) + shape, dtype=np.float32)
            with no_grad():
                ref = folded(Tensor(batch_b)).data
            got = program.run(batch_b)
            if (got.shape != ref.shape or got.dtype != ref.dtype
                    or got.tobytes() != ref.tobytes()):
                raise TraceError(
                    "compiled program diverged from the interpreted path "
                    "on a verification batch (likely an untraceable op "
                    "captured as a constant)")
        del warm
        plan.update(ops=len(nodes) - 1, fused=fused_count,
                    arena_bytes=int(program.arena.nbytes), tuned=table,
                    input_shape=list(shape))
        return CompiledModel(folded, program, plan, width)
    except Exception as exc:    # noqa: BLE001 — fallback must never fail
        _warn_fallback(folded, exc)
        return CompiledModel(folded, None, plan, width,
                             fallback_reason=f"{type(exc).__name__}: {exc}")


def prepare_for_inference(model: Module, width: Optional[int] = None,
                          compile: bool = True,
                          input_shape: Optional[Tuple[int, ...]] = None,
                          tuned: Optional[Dict[str, int]] = None):
    """The single front door to an inference-ready executable.

    - ``width=None`` (or ``compile=False``): returns the BatchNorm-
      folded, parameter-frozen copy from the shared folded cache — the
      consolidated replacement for ``inference_copy`` and
      ``predict_logits(fold=True)``.
    - ``width=N`` with ``compile=True``: returns a
      :class:`CompiledModel` for that serving width, cached in the same
      shared cache under ``(fingerprint, width)`` so every consumer of
      the same weights at the same width shares one plan.
    """
    if width is None or not compile:
        return shared_folded_cache().get(model)
    fingerprint = _state_fingerprint(model)
    compile_fn = globals()["compile"]
    return shared_folded_cache().get(
        model, fingerprint, width=int(width),
        build=lambda m: compile_fn(m, int(width), input_shape=input_shape,
                                   tuned=tuned))
