"""Model snapshot utilities.

SISA unlearning checkpoints a model after every slice; these helpers give
cheap in-memory snapshots (state-dict copies) and `.npz` persistence.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]


def snapshot(model: Module) -> Dict[str, np.ndarray]:
    """In-memory deep copy of a model's full state (params + buffers)."""
    return model.state_dict()


def restore(model: Module, state: Dict[str, np.ndarray]) -> Module:
    """Load a snapshot back into ``model`` (strict) and return it."""
    model.load_state_dict(state, strict=True)
    return model


def save_state(model: Module, path: PathLike) -> None:
    """Persist a model state dict to an ``.npz`` file."""
    state = model.state_dict()
    np.savez(str(path), **state)


def load_state(model: Module, path: PathLike) -> Module:
    """Load a model state dict from an ``.npz`` file written by save_state."""
    with np.load(str(path)) as archive:
        state = {k: archive[k] for k in archive.files}
    model.load_state_dict(state, strict=True)
    return model


def state_nbytes(state: Dict[str, np.ndarray]) -> int:
    """Total bytes held by a snapshot (for SISA storage accounting)."""
    return int(sum(np.asarray(v).nbytes for v in state.values()))
