"""Structured neural-network ops with autograd support.

Convolution (stride / padding / groups via im2col), pooling, padding and the
fused softmax cross-entropy loss used throughout the reproduction.  All
functions accept and return :class:`repro.nn.tensor.Tensor`.

The conv2d matmuls (forward, input gradient, weight gradient) run as
row-blocks over the batch dimension dispatched through
:mod:`repro.nn.threading`; the block decomposition is shape-only and
reductions happen in block-index order, so results are bit-identical at
every ``intra_op_threads`` setting.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from ..obs import profile as _profile
from .tensor import Tensor, ensure_tensor
from .threading import batch_blocks, map_blocks

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


def _im2col_indices(channels: int, height: int, width: int,
                    kh: int, kw: int, stride_h: int, stride_w: int,
                    pad_h: int, pad_w: int):
    """Index arrays mapping a padded image to its im2col matrix.

    Returns ``(k, i, j, out_h, out_w)`` such that
    ``x_padded[:, k, i, j]`` has shape ``(N, C*kh*kw, out_h*out_w)``.
    """
    out_h = (height + 2 * pad_h - kh) // stride_h + 1
    out_w = (width + 2 * pad_w - kw) // stride_w + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty: input {height}x{width}, "
            f"kernel {kh}x{kw}, stride ({stride_h},{stride_w}), pad ({pad_h},{pad_w})")

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = stride_h * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = stride_w * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


# Caches keyed by the full conv geometry.  A training run reuses a handful
# of geometries thousands of times, so both caches stay tiny but hot.
_INDEX_CACHE: Dict[tuple, tuple] = {}
_SCATTER_CACHE: Dict[tuple, sparse.csr_matrix] = {}


def _cached_indices(key: tuple) -> tuple:
    if key not in _INDEX_CACHE:
        _INDEX_CACHE[key] = _im2col_indices(*key)
    return _INDEX_CACHE[key]


def _cached_scatter(key: tuple, k_idx, i_idx, j_idx,
                    padded_hw: Tuple[int, int], channels: int) -> sparse.csr_matrix:
    """Sparse matrix mapping im2col columns back to padded-image pixels.

    ``col2im`` (the input-gradient scatter-add) becomes a single sparse
    GEMM, which is an order of magnitude faster than ``np.add.at``.
    """
    if key not in _SCATTER_CACHE:
        hp, wp = padded_hw
        flat = (k_idx * hp * wp + i_idx * wp + j_idx).ravel()
        n_cols = flat.size
        scatter = sparse.csr_matrix(
            (np.ones(n_cols, dtype=np.float32),
             (flat, np.arange(n_cols, dtype=np.int64))),
            shape=(channels * hp * wp, n_cols))
        _SCATTER_CACHE[key] = scatter
    return _SCATTER_CACHE[key]


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: IntPair = 1, padding: IntPair = 0, groups: int = 1) -> Tensor:
    """2-D convolution (cross-correlation, as in every DL framework).

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    weight:
        Kernels of shape ``(O, C // groups, kh, kw)``.
    bias:
        Optional bias of shape ``(O,)``.
    stride, padding:
        Int or (h, w) pair.
    groups:
        Grouped convolution; ``groups == C == O`` gives a depthwise conv
        (used by MobileNetV2 / EfficientNetB0).
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    o, c_per_group, kh, kw = weight.shape
    if c % groups or o % groups:
        raise ValueError(f"channels ({c}) and filters ({o}) must divide groups ({groups})")
    if c_per_group != c // groups:
        raise ValueError(f"weight expects {c_per_group * groups} input channels, got {c}")

    geom_key = (c, h, w, kh, kw, sh, sw, ph, pw)
    k_idx, i_idx, j_idx, out_h, out_w = _cached_indices(geom_key)
    x_padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    # im2col via a strided sliding-window view; the transpose+reshape copy
    # is cheaper than an equivalent fancy-index gather.
    windows = np.lib.stride_tricks.sliding_window_view(
        x_padded, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, -1)
    loc = out_h * out_w
    kdim = c_per_group * kh * kw
    cols_g = cols.reshape(n, groups, kdim, loc)
    w_g = weight.data.reshape(groups, o // groups, kdim)

    # Batched BLAS, blocked over the batch: (1, G, O/G, K) @ (B, G, K, L)
    # -> (B, G, O/G, L) per row-block.  Output rows are disjoint, so the
    # blocks run concurrently on the intra-op pool without any reduction.
    _prof = _profile.ACTIVE
    prof_token = _prof.start("conv.forward") if _prof is not None else None
    blocks = batch_blocks(n)
    if len(blocks) == 1:
        out = np.matmul(w_g[None], cols_g)
    else:
        out = np.empty((n, groups, o // groups, loc),
                       dtype=np.result_type(w_g.dtype, cols_g.dtype))

        def _forward_block(sl: slice, _b: int) -> None:
            np.matmul(w_g[None], cols_g[sl], out=out[sl])

        map_blocks(_forward_block, blocks)
    if _prof is not None:
        _prof.stop(prof_token)
    out = out.reshape(n, o, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, o, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)
    hp, wp = h + 2 * ph, w + 2 * pw

    def backward(g):
        _prof = _profile.ACTIVE
        prof_token = (_prof.start("conv.backward") if _prof is not None
                      else None)
        g_r = g.reshape(n, groups, o // groups, loc)
        bwd_blocks = batch_blocks(n)
        gx = gw = gb = None
        if weight.requires_grad:
            if groups == 1:
                # Per-block GEMM (O, B*L) @ (B*L, K); partials summed in
                # block-index order so the reduction is deterministic.
                def _gw_block(sl: slice, _b: int) -> np.ndarray:
                    nb = sl.stop - sl.start
                    g2 = (g[sl].reshape(nb, o, loc)
                          .transpose(1, 0, 2).reshape(o, nb * loc))
                    c2 = (cols[sl].transpose(1, 0, 2)
                          .reshape(kdim, nb * loc))
                    return g2 @ c2.T

                partials = map_blocks(_gw_block, bwd_blocks)
            else:
                def _gw_block(sl: slice, _b: int) -> np.ndarray:
                    return np.matmul(
                        g_r[sl], cols_g[sl].transpose(0, 1, 3, 2)).sum(axis=0)

                partials = map_blocks(_gw_block, bwd_blocks)
            gw = partials[0]
            for partial in partials[1:]:
                gw = gw + partial
            gw = gw.reshape(weight.shape).astype(weight.dtype, copy=False)
        if x.requires_grad:
            scatter = _cached_scatter(geom_key, k_idx, i_idx, j_idx, (hp, wp), c)
            gx_padded = np.empty((n, c, hp, wp), dtype=np.result_type(w_g, g))

            def _gx_block(sl: slice, _b: int) -> None:
                nb = sl.stop - sl.start
                gcols = np.matmul(w_g.transpose(0, 2, 1)[None], g_r[sl])
                gcols = gcols.reshape(nb, c * kh * kw * loc)
                gx_padded[sl] = (scatter @ gcols.T).T.reshape(nb, c, hp, wp)

            map_blocks(_gx_block, bwd_blocks)
            gx = gx_padded[:, :, ph:ph + h, pw:pw + w].astype(x.dtype, copy=False)
        if bias is not None and bias.requires_grad:
            gb = g.sum(axis=(0, 2, 3)).astype(bias.dtype, copy=False)
        if _prof is not None:
            _prof.stop(prof_token)
        if bias is None:
            return (gx, gw)
        return (gx, gw, gb)

    return Tensor._make(out.astype(x.dtype, copy=False), parents, backward)


def max_pool2d(x: Tensor, kernel_size: IntPair = 2, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling with ``stride == kernel_size`` (the common CNN case).

    Input spatial dims must be divisible by the kernel; the model zoo
    arranges its shapes to satisfy this.
    """
    kh, kw = _pair(kernel_size)
    if stride is not None and _pair(stride) != (kh, kw):
        raise NotImplementedError("max_pool2d only supports stride == kernel_size")
    n, c, h, w = x.shape
    if h % kh or w % kw:
        raise ValueError(f"pooling kernel {kh}x{kw} does not tile input {h}x{w}")
    oh, ow = h // kh, w // kw

    # Group each pooling window into the trailing axis, then argmax once.
    windows = (x.data.reshape(n, c, oh, kh, ow, kw)
               .transpose(0, 1, 2, 4, 3, 5)
               .reshape(n, c, oh, ow, kh * kw))
    argmax = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]

    def backward(g):
        gwin = np.zeros_like(windows)
        np.put_along_axis(gwin, argmax[..., None], g[..., None], axis=-1)
        gx = (gwin.reshape(n, c, oh, ow, kh, kw)
              .transpose(0, 1, 2, 4, 3, 5)
              .reshape(n, c, h, w))
        return (gx.astype(x.dtype, copy=False),)

    return Tensor._make(out.astype(x.dtype, copy=False), (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: IntPair = 2) -> Tensor:
    """Average pooling with ``stride == kernel_size``."""
    kh, kw = _pair(kernel_size)
    n, c, h, w = x.shape
    if h % kh or w % kw:
        raise ValueError(f"pooling kernel {kh}x{kw} does not tile input {h}x{w}")
    oh, ow = h // kh, w // kw
    out = x.data.reshape(n, c, oh, kh, ow, kw).mean(axis=(3, 5))

    def backward(g):
        g_e = g.reshape(n, c, oh, 1, ow, 1) / (kh * kw)
        gx = np.broadcast_to(g_e, (n, c, oh, kh, ow, kw)).reshape(n, c, h, w)
        return (gx.astype(x.dtype),)

    return Tensor._make(out.astype(x.dtype), (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Spatial mean -> (N, C).  Standard classifier head entry point."""
    return x.mean(axis=(2, 3))


def pad2d(x: Tensor, padding: IntPair) -> Tensor:
    """Zero-pad the two trailing spatial dimensions."""
    ph, pw = _pair(padding)
    data = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    def backward(g):
        h, w = x.shape[2], x.shape[3]
        return (g[:, :, ph:ph + h, pw:pw + w],)

    return Tensor._make(data, (x,), backward)


def batch_norm(x: Tensor, weight: Optional[Tensor], bias: Optional[Tensor],
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1, eps: float = 1e-5) -> Tensor:
    """Fused batch normalization over (N, H, W) per channel.

    In training mode normalizes with batch statistics and updates
    ``running_mean`` / ``running_var`` **in place**; in eval mode uses the
    running estimates.  Fusing the op (instead of composing mean/var
    primitives) cuts roughly ten full-array passes per layer per step.
    """
    if x.ndim != 4:
        raise ValueError(f"batch_norm expects (N, C, H, W), got {x.shape}")
    n, c, h, w = x.shape
    axes = (0, 2, 3)
    count = n * h * w

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        unbiased = var * (count / max(count - 1, 1))
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean
        running_var *= (1.0 - momentum)
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(1, c, 1, 1)) * inv_std.reshape(1, c, 1, 1)
    if weight is not None:
        out = x_hat * weight.data.reshape(1, c, 1, 1) + bias.data.reshape(1, c, 1, 1)
    else:
        out = x_hat

    parents = (x,) if weight is None else (x, weight, bias)

    def backward(g):
        gamma = weight.data if weight is not None else np.ones(c, dtype=x.dtype)
        g_hat = g * gamma.reshape(1, c, 1, 1)
        gx = gw = gb = None
        if x.requires_grad:
            if training:
                sum_g = g_hat.sum(axis=axes)
                sum_gx = (g_hat * x_hat).sum(axis=axes)
                gx = (inv_std.reshape(1, c, 1, 1) / count) * (
                    count * g_hat
                    - sum_g.reshape(1, c, 1, 1)
                    - x_hat * sum_gx.reshape(1, c, 1, 1))
            else:
                gx = g_hat * inv_std.reshape(1, c, 1, 1)
            gx = gx.astype(x.dtype, copy=False)
        if weight is not None and weight.requires_grad:
            gw = (g * x_hat).sum(axis=axes).astype(weight.dtype, copy=False)
        if bias is not None and bias.requires_grad:
            gb = g.sum(axis=axes).astype(bias.dtype, copy=False)
        if weight is None:
            return (gx,)
        return (gx, gw, gb)

    return Tensor._make(out.astype(x.dtype, copy=False), parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ W.T + b`` with ``W`` of shape (out, in)."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax built from primitive ops."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(logits, axis=axis).exp()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot float32 matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError(f"labels out of range for {num_classes} classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  label_smoothing: float = 0.0) -> Tensor:
    """Fused mean softmax cross-entropy over a batch.

    Parameters
    ----------
    logits:
        ``(N, K)`` raw scores.
    labels:
        ``(N,)`` integer class ids (numpy array or list).
    label_smoothing:
        Optional uniform smoothing mass in [0, 1).
    """
    labels = np.asarray(labels, dtype=np.int64)
    n, k = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match batch {n}")

    z = logits.data
    z_max = z.max(axis=1, keepdims=True)
    exp_z = np.exp(z - z_max)
    sum_exp = exp_z.sum(axis=1, keepdims=True)
    log_probs = (z - z_max) - np.log(sum_exp)
    probs = exp_z / sum_exp

    target = one_hot(labels, k)
    if label_smoothing > 0.0:
        target = target * (1.0 - label_smoothing) + label_smoothing / k

    loss_value = -(target * log_probs).sum(axis=1).mean()

    def backward(g):
        gx = (probs - target) * (g / n)
        return (gx.astype(logits.dtype),)

    return Tensor._make(np.asarray(loss_value, dtype=logits.dtype), (logits,), backward)


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given log-probabilities."""
    labels = np.asarray(labels, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), labels]
    return -(picked.mean())


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    target = ensure_tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def entropy_of_probs(probs: np.ndarray, eps: float = 1e-12, base2: bool = True) -> np.ndarray:
    """Shannon entropy per row of a probability matrix (no autograd).

    Used by the STRIP defense; base-2 by convention of the STRIP paper.
    """
    p = np.clip(np.asarray(probs, dtype=np.float64), eps, 1.0)
    h = -(p * np.log(p)).sum(axis=-1)
    if base2:
        h = h / np.log(2.0)
    return h
