"""Standard neural-network layers built on the autograd engine.

Covers everything the four model families in the paper need: convolutions
(incl. depthwise via ``groups``), batch normalization with running
statistics, linear heads, activations, dropout and pooling wrappers.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with Kaiming-uniform weights."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), gain=1.0))
        if bias:
            self.bias = Parameter(init.zeros((out_features,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution layer.

    ``groups=in_channels`` with ``out_channels == in_channels`` yields the
    depthwise convolution used by MobileNetV2 and EfficientNetB0.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 bias: bool = True):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("in/out channels must be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape))
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding, groups=self.groups)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding}, g={self.groups})")


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel.

    Training mode normalizes with batch statistics and maintains
    exponential running estimates; eval mode uses the running estimates.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        if affine:
            self.weight = Parameter(init.ones((num_features,)))
            self.bias = Parameter(init.zeros((num_features,)))
        else:
            self.weight = None
            self.bias = None
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(f"expected (N, {self.num_features}, H, W), got {x.shape}")
        out = F.batch_norm(x, self.weight, self.bias,
                           self.running_mean, self.running_var,
                           training=self.training, momentum=self.momentum,
                           eps=self.eps)
        if self.training:
            self._set_buffer("num_batches_tracked", self.num_batches_tracked + 1)
        return out

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class BatchNorm1d(Module):
    """Batch normalization over (N,) per feature, for MLP heads."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            m = self.momentum
            n = x.shape[0]
            unbiased = var.data.reshape(-1) * (n / max(n - 1, 1))
            self._set_buffer("running_mean", (1 - m) * self.running_mean + m * mean.data.reshape(-1))
            self._set_buffer("running_var", (1 - m) * self.running_var + m * unbiased)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
        inv_std = (var + self.eps) ** -0.5
        return (x - mean) * inv_std * self.weight.reshape(1, -1) + self.bias.reshape(1, -1)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class ReLU6(Module):
    """Clipped ReLU used by MobileNetV2."""

    def forward(self, x: Tensor) -> Tensor:
        return x.clip(0.0, 6.0)

    def __repr__(self) -> str:
        return "ReLU6()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class SiLU(Module):
    """x * sigmoid(x) — the 'swish' activation used by EfficientNet."""

    def forward(self, x: Tensor) -> Tensor:
        return x * x.sigmoid()

    def __repr__(self) -> str:
        return "SiLU()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(0)

    def seed(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
