"""Optimizers.

The paper trains every model with Adam (lr=1e-3, weight decay=1e-4,
batch 64) under a cosine-annealing schedule; SGD(+momentum) is included
for the approximate-unlearning ablations and tests.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer: holds parameter references and the learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self.base_lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        return {"lr": self.lr, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.base_lr = float(state.get("base_lr", self.lr))


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 maximize: bool = False):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.maximize = maximize
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        sign = 1.0 if self.maximize else -1.0
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data + sign * self.lr * grad


class Adam(Optimizer):
    """Adam with decoupled-from-nothing (i.e. classic L2) weight decay.

    Matches the paper's training recipe: ``Adam(lr=1e-3, weight_decay=1e-4)``.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update({"t": self._t,
                      "m": [m.copy() for m in self._m],
                      "v": [v.copy() for v in self._v]})
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._t = int(state["t"])
        self._m = [np.asarray(m).copy() for m in state["m"]]
        self._v = [np.asarray(v).copy() for v in state["v"]]
