"""``repro.nn`` — from-scratch numpy deep-learning substrate.

The ReVeil paper trains PyTorch models; this environment has no PyTorch,
so the reproduction ships its own reverse-mode autograd engine, layer
library, optimizers and schedulers.  The public surface mirrors the
familiar ``torch``/``torch.nn`` split:

- :mod:`repro.nn.tensor` — :class:`Tensor` with autograd, ``no_grad``.
- :mod:`repro.nn.functional` — conv2d / pooling / losses.
- :mod:`repro.nn.layers` — ``Conv2d``, ``BatchNorm2d``, ``Linear``, ...
- :mod:`repro.nn.optim` — ``Adam`` (paper recipe), ``SGD``.
- :mod:`repro.nn.scheduler` — ``CosineAnnealingLR`` (paper recipe).
- :mod:`repro.nn.threading` — intra-op thread pool for the conv kernels.
- :mod:`repro.nn.fold` — eval-time BatchNorm folding (inference fast path).
- :mod:`repro.nn.graph` — compiled inference graphs (``compile`` /
  ``prepare_for_inference``): trace → fuse → arena → autotune.
"""

from . import fold
from . import functional
from . import graph
from . import init
from . import threading
from .fold import (FoldedModelCache, fold_batchnorm, folded_replica,
                   inference_copy, inference_mode, shared_folded_cache,
                   state_fingerprint)
from .graph import CompiledModel, TraceError, compile, prepare_for_inference
from .layers import (AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, Dropout,
                     Flatten, GlobalAvgPool2d, Identity, Linear, MaxPool2d,
                     ReLU, ReLU6, Sigmoid, SiLU, Tanh)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, Optimizer
from .scheduler import ConstantLR, CosineAnnealingLR, LRScheduler, StepLR
from .serialization import (load_state, restore, save_state, snapshot,
                            state_nbytes)
from .tensor import Tensor, concat, ensure_tensor, is_grad_enabled, no_grad, stack
from .threading import (get_intra_op_threads, intra_op_threads,
                        set_intra_op_threads, shutdown_intra_op_pool)

manual_seed = init.manual_seed

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "ensure_tensor", "stack", "concat",
    "Module", "Parameter", "Sequential", "ModuleList",
    "Linear", "Conv2d", "BatchNorm2d", "BatchNorm1d", "ReLU", "ReLU6",
    "Sigmoid", "SiLU", "Tanh", "Dropout", "MaxPool2d", "AvgPool2d",
    "GlobalAvgPool2d", "Flatten", "Identity",
    "Optimizer", "SGD", "Adam",
    "LRScheduler", "CosineAnnealingLR", "StepLR", "ConstantLR",
    "snapshot", "restore", "save_state", "load_state", "state_nbytes",
    "functional", "init", "manual_seed",
    "threading", "intra_op_threads", "get_intra_op_threads",
    "set_intra_op_threads", "shutdown_intra_op_pool",
    "fold", "fold_batchnorm", "folded_replica", "inference_copy",
    "inference_mode", "state_fingerprint",
    "FoldedModelCache", "shared_folded_cache",
    "graph", "compile", "CompiledModel", "TraceError",
    "prepare_for_inference",
]
