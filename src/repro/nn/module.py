"""Module system: parameter registration, train/eval mode, state dicts.

A tiny but faithful analogue of ``torch.nn.Module`` sufficient for the
model zoo (ResNet18 / MobileNetV2 / EfficientNetB0 / WideResNet50) and the
SISA unlearning machinery (which snapshots and restores module state).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor flagged as a trainable model parameter."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, :class:`Module` and buffer
    (plain numpy array via :meth:`register_buffer`) attributes; the base
    class tracks them for ``parameters()``, ``state_dict()`` and mode
    switching.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
            object.__setattr__(self, name, value)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
            object.__setattr__(self, name, value)
        else:
            object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array (e.g. batch-norm running stats)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of registration."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode / gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter/buffer names to array copies."""
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[name] = np.asarray(b).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Restore parameters and buffers from :meth:`state_dict` output."""
        own_params = dict(self.named_parameters())
        own_buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                own_buffer_owners[full] = (module, buf_name)

        missing = (set(own_params) | set(own_buffer_owners)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffer_owners))
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")

        for name, value in state.items():
            if name in own_params:
                param = own_params[name]
                if param.shape != value.shape:
                    raise ValueError(f"shape mismatch for {name}: "
                                     f"{param.shape} vs {value.shape}")
                param.data = np.asarray(value, dtype=param.dtype).copy()
            elif name in own_buffer_owners:
                module, buf_name = own_buffer_owners[name]
                module._set_buffer(buf_name, np.asarray(value).copy())

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered: List[str] = []
        for i, module in enumerate(modules):
            name = str(i)
            setattr(self, name, module)
            self._ordered.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._ordered))
        setattr(self, name, module)
        self._ordered.append(name)
        return self

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self):
        return (getattr(self, name) for name in self._ordered)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._ordered[index])

    def forward(self, x: Tensor) -> Tensor:
        for name in self._ordered:
            x = getattr(self, name)(x)
        return x


class ModuleList(Module):
    """List container whose items are registered as child modules."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._ordered: List[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._ordered))
        setattr(self, name, module)
        self._ordered.append(name)
        return self

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self):
        return (getattr(self, name) for name in self._ordered)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._ordered[index])
