"""Eval-time BatchNorm folding — the inference fast path.

In eval mode a :class:`~repro.nn.layers.BatchNorm2d` is a per-channel
affine map with constants taken from the running statistics:

    y = (x - mu) / sqrt(var + eps) * gamma + beta
      = x * s + (beta - mu * s),          s = gamma / sqrt(var + eps)

which folds exactly into the preceding convolution (or linear layer):
scale its output-channel weights by ``s`` and absorb the shift into the
bias.  :func:`fold_batchnorm` applies that transform to a whole model,
replacing every folded norm with :class:`~repro.nn.layers.Identity` —
``predict_logits``-heavy sweeps (STRIP, Neural Cleanse, Beatrix) then
skip the normalization pass entirely.

Folding uses running statistics, so it is only valid in eval mode;
folding a training-mode model raises.  Folded logits match the unfolded
model to float32 rounding (``atol=1e-5`` enforced for every registered
model by ``tests/nn/test_fold.py``).
"""

from __future__ import annotations

import copy
import hashlib
import threading
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Optional, Tuple

import numpy as np

from .layers import BatchNorm1d, BatchNorm2d, Conv2d, Identity, Linear
from .module import Module, Parameter, Sequential
from .tensor import no_grad


def _bn_scale_shift(bn) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel ``(scale, shift)`` of an eval-mode batch norm."""
    inv_std = 1.0 / np.sqrt(bn.running_var.astype(np.float64) + bn.eps)
    if bn.weight is not None:
        gamma = bn.weight.data.astype(np.float64)
        beta = bn.bias.data.astype(np.float64)
    else:
        gamma = np.ones_like(inv_std)
        beta = np.zeros_like(inv_std)
    scale = gamma * inv_std
    shift = beta - bn.running_mean.astype(np.float64) * scale
    return scale, shift


def _fold_into(layer: Module, bn) -> None:
    """Fold ``bn``'s scale/shift into ``layer``'s weight and bias."""
    scale, shift = _bn_scale_shift(bn)
    weight = layer.weight.data.astype(np.float64)
    # Output channels lead the weight shape for both Conv2d (O, C/g, kh,
    # kw) and Linear (out, in).
    reshape = (-1,) + (1,) * (weight.ndim - 1)
    folded_w = weight * scale.reshape(reshape)
    if layer.bias is not None:
        folded_b = layer.bias.data.astype(np.float64) * scale + shift
        layer.bias.data = folded_b.astype(layer.bias.dtype, copy=False)
    else:
        layer.bias = Parameter(shift.astype(layer.weight.dtype, copy=False),
                               requires_grad=False)
    layer.weight.data = folded_w.astype(layer.weight.dtype, copy=False)


def _foldable_pair(prev: Optional[Module], current: Module) -> bool:
    if isinstance(current, BatchNorm2d):
        return (isinstance(prev, Conv2d)
                and prev.out_channels == current.num_features)
    if isinstance(current, BatchNorm1d):
        return (isinstance(prev, Linear)
                and prev.out_features == current.num_features)
    return False


def fold_batchnorm(model: Module, inplace: bool = False) -> Module:
    """Fold every conv→BN / linear→BN pair; return the folded model.

    Walks all submodules; inside every ``Sequential`` a batch norm
    directly following a compatible conv or linear layer is folded into
    it and replaced by ``Identity``.  Only ``Sequential`` qualifies —
    its ``forward`` *guarantees* element order is execution order,
    whereas a ``ModuleList`` is just storage (parallel branches stored
    adjacently must not be folded into each other).  Norms in other
    positions are left untouched (still correct, just not accelerated).

    By default the input model is left intact and a folded deep copy is
    returned; ``inplace=True`` transforms (and returns) the model
    itself.  Raises :class:`RuntimeError` if the model is in training
    mode — folding bakes in the *running* statistics, which training
    mode does not use.
    """
    if model.training:
        raise RuntimeError(
            "fold_batchnorm requires eval mode: call model.eval() first "
            "(training mode normalizes with batch statistics, which "
            "cannot be folded)")
    if not inplace:
        model = copy.deepcopy(model)
    for module in model.modules():
        if not isinstance(module, Sequential):
            continue
        ordered = module._ordered
        for prev_name, name in zip(ordered, ordered[1:]):
            prev = getattr(module, prev_name)
            current = getattr(module, name)
            if _foldable_pair(prev, current):
                _fold_into(prev, current)
                setattr(module, name, Identity())
    return model


def count_foldable(model: Module) -> int:
    """Number of conv→BN / linear→BN pairs :func:`fold_batchnorm` would fold."""
    total = 0
    for module in model.modules():
        if not isinstance(module, Sequential):
            continue
        ordered = module._ordered
        for prev_name, name in zip(ordered, ordered[1:]):
            if _foldable_pair(getattr(module, prev_name), getattr(module, name)):
                total += 1
    return total


#: Deprecation shims that already warned this process (warn once each).
_SHIMS_WARNED: set = set()


def _warn_shim(old: str, new: str) -> None:
    """Once-per-process deprecation warning for a legacy call shape."""
    if old in _SHIMS_WARNED:
        return
    _SHIMS_WARNED.add(old)
    warnings.warn(f"{old} is deprecated; use {new} instead",
                  DeprecationWarning, stacklevel=3)


def _inference_copy_impl(model: Module) -> Module:
    """Eval-mode, BN-folded, parameter-frozen deep copy (internal core)."""
    frozen = copy.deepcopy(model)
    frozen.eval()
    frozen = fold_batchnorm(frozen, inplace=True)
    for param in frozen.parameters():
        param.requires_grad = False
    return frozen


def inference_copy(model: Module) -> Module:
    """Eval-mode, BN-folded, parameter-frozen deep copy for prediction sweeps.

    Unlike :func:`fold_batchnorm` this never raises on a training-mode
    input — the *copy* is switched to eval first (the original model's
    mode is untouched), matching how ``predict_logits`` already forces
    eval mode before a forward pass.  All parameters of the copy get
    ``requires_grad=False``: gradient-based sweeps (Neural Cleanse's
    trigger optimization) then skip every weight-gradient GEMM while
    input gradients still flow.

    .. deprecated:: Route through
       :func:`repro.nn.graph.prepare_for_inference`, the consolidated
       inference front door (which also shares copies via the process
       cache and can return a width-compiled plan).
    """
    _warn_shim("repro.nn.inference_copy",
               "repro.nn.prepare_for_inference(model)")
    return _inference_copy_impl(model)


def _state_fingerprint(model: Module) -> str:
    """Digest of every parameter/buffer value (cheap vs one sweep pass)."""
    digest = hashlib.sha1()
    for name, param in model.named_parameters():
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(param.data).tobytes())
    for name, buf in model.named_buffers():
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(buf).tobytes())
    return digest.hexdigest()


def state_fingerprint(model: Module) -> str:
    """Public alias of the parameter/buffer value digest.

    Two models with equal fingerprints have bit-identical parameters and
    buffers, so their folded inference copies — and every forward pass
    through them — are bit-identical too.  The serving layer leans on
    this to prove that worker-side replicas serve the same bits as the
    parent's folded copy.
    """
    return _state_fingerprint(model)


def folded_replica(factory, state, expected_fingerprint: Optional[str] = None,
                   ) -> Module:
    """Materialize a folded inference replica from a shipped state dict.

    The multi-process serving backend ships ``(factory, state_dict,
    fingerprint)`` to each worker exactly once per model version; the
    worker rebuilds the model locally (``factory()`` +
    ``load_state_dict``) and folds it.  Passing the registration-time
    ``expected_fingerprint`` makes the construction *verified*: if the
    rebuilt weights hash differently — architecture drift between
    parent and worker, a lossy serialization path — the replica is
    rejected before it can serve a single divergent bit.
    """
    model = factory()
    model.load_state_dict(state, strict=True)
    if expected_fingerprint is not None:
        actual = _state_fingerprint(model)
        if actual != expected_fingerprint:
            raise RuntimeError(
                f"rebuilt replica fingerprint {actual[:12]} does not match "
                f"the shipped fingerprint {expected_fingerprint[:12]} — the "
                f"worker-side factory does not reproduce the registered "
                f"model, so serving through it would break bit-identity")
    return _inference_copy_impl(model)


class FoldedModelCache:
    """(fingerprint, width)-keyed LRU cache of inference executables.

    One process-wide instance (:func:`shared_folded_cache`) backs every
    consumer of folded models — the defense sweeps' per-detector
    :class:`LazyFoldedInference` handles and the serving layer's
    :class:`repro.serve.ModelStore` — so a model swept by STRIP, Neural
    Cleanse and Beatrix *and* registered for serving is folded exactly
    once.  Keys pair the value fingerprint of the source model's
    parameters/buffers with the serving width: plain folded copies live
    under ``width=None``, while width-compiled plans (see
    :mod:`repro.nn.graph`) are width-specific artifacts and must never
    collide across widths — the same weights compiled at width 1 and
    width 32 are two distinct entries.  Two identical models share one
    copy per width, and a model whose weights changed gets a fresh one
    (the stale entry ages out of the LRU).  Thread-safe; cached objects
    are frozen, so sharing one across readers is sound.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, model: Module, fingerprint: Optional[str] = None,
            width: Optional[int] = None,
            build: Optional[Callable[[Module], object]] = None):
        """Inference executable for ``model``, built once per
        (weight fingerprint, width) — up to a lost race between
        concurrent first callers.

        ``build`` constructs the cached object from the model (defaults
        to the folded-copy builder); :func:`repro.nn.graph.
        prepare_for_inference` passes a compiler here so compiled plans
        share the same cache, keyed by their width.

        The build runs *outside* the lock: one consumer folding a large
        model must not head-of-line-block every other consumer's cache
        hit.  Two threads racing on the same brand-new key may both
        build; the loser's copy is discarded and the winner's is
        returned to both, so identity stays stable.
        """
        if fingerprint is None:
            fingerprint = _state_fingerprint(model)
        key = (fingerprint, width)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
        built = (build or _inference_copy_impl)(model)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:            # lost the build race
                self._entries.move_to_end(key)
                self.hits += 1
                return existing
            self._entries[key] = built
            self.misses += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return built

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


_shared_cache: Optional[FoldedModelCache] = None
_shared_cache_lock = threading.Lock()


def shared_folded_cache() -> FoldedModelCache:
    """The process-wide :class:`FoldedModelCache` singleton."""
    global _shared_cache
    with _shared_cache_lock:
        if _shared_cache is None:
            _shared_cache = FoldedModelCache()
        return _shared_cache


class LazyFoldedInference:
    """Lazily-built, staleness-aware folded inference copy of a model.

    The shared helper behind the defense sweeps' ``fold_inference``
    knob: :meth:`get` returns :func:`inference_copy` of the bound
    model, rebuilt automatically whenever the model's parameters or
    buffers change (detected by value fingerprint, so a detector held
    across fine-tuning or a ``load_state_dict`` never sweeps stale
    weights).  With ``enabled=False`` it returns the model itself.

    ``cache`` routes copy construction through a
    :class:`FoldedModelCache` so several handles bound to the same model
    (e.g. STRIP + Neural Cleanse + Beatrix on one suspect) share a
    single folded copy instead of each building their own.
    """

    def __init__(self, model: Module, enabled: bool = True,
                 cache: Optional[FoldedModelCache] = None):
        self.model = model
        self.enabled = enabled
        self.cache = cache
        self._copy: Optional[Module] = None
        self._fingerprint: Optional[str] = None

    def get(self) -> Module:
        if not self.enabled:
            return self.model
        fingerprint = _state_fingerprint(self.model)
        if self._copy is None or fingerprint != self._fingerprint:
            if self.cache is not None:
                self._copy = self.cache.get(self.model, fingerprint)
            else:
                self._copy = _inference_copy_impl(self.model)
            self._fingerprint = fingerprint
        return self._copy

    def invalidate(self) -> None:
        """Drop the cached copy (next :meth:`get` rebuilds)."""
        self._copy = None
        self._fingerprint = None


@contextmanager
def inference_mode(model: Module):
    """Context yielding a folded inference copy under ``no_grad``.

    Usage::

        with inference_mode(model) as fast:
            logits = fast(nn.Tensor(images)).data

    The defense sweeps (STRIP / Neural Cleanse / Beatrix) route their
    thousands of forward passes through this fast path.
    """
    frozen = _inference_copy_impl(model)
    with no_grad():
        yield frozen
