"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the from-scratch deep-learning substrate
used by the ReVeil reproduction (the paper used PyTorch; this environment
has none, so we build the equivalent).  A :class:`Tensor` wraps a
``numpy.ndarray`` and records the operations applied to it on a tape (the
``_parents`` / ``_backward`` fields).  Calling :meth:`Tensor.backward` on a
scalar output walks the tape in reverse topological order and accumulates
gradients into every tensor created with ``requires_grad=True``.

Only the operator set required by the reproduction is implemented, but each
op supports full numpy broadcasting where it makes sense.  Heavier
structured ops (convolution, pooling, fused losses) live in
:mod:`repro.nn.functional`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

Scalar = Union[int, float]
ArrayLike = Union[np.ndarray, Scalar, Sequence]

_DEFAULT_DTYPE = np.float32

# Global switch mirroring ``torch.no_grad()``.  When False no tape is built.
_grad_enabled = True


class no_grad:
    """Context manager disabling tape construction inside its block.

    Used by evaluation loops and defenses that only need forward passes;
    skipping tape construction roughly halves memory traffic.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the tape."""
    return _grad_enabled


def _as_array(value: ArrayLike, dtype=_DEFAULT_DTYPE) -> np.ndarray:
    arr = np.asarray(value, dtype=dtype)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shaped by broadcasting) back to ``shape``.

    Numpy broadcasting prepends singleton axes and stretches size-1 axes;
    the corresponding gradient operation is summation over the broadcast
    axes.
    """
    if grad.shape == shape:
        return grad
    # Sum the prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum the stretched axes.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray``.  Stored as float32 by
        default (matching the training precision used in the paper).
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_retain")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, dtype=_DEFAULT_DTYPE):
        self.data = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._retain = False

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a tape-free deep copy."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def retain_grad(self) -> "Tensor":
        """Keep the gradient of this (non-leaf) tensor after backward.

        Needed by GradCAM, which reads gradients of intermediate feature
        maps.
        """
        self._retain = True
        return self

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a tape node if grad mode is on and any parent needs grad."""
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1`` which requires this
            tensor to be a scalar (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (models can be deep enough
        # that recursion would hit Python's stack limit).
        topo: list[Tensor] = []
        visited = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            is_leaf = node._backward is None
            if is_leaf or node._retain:
                node.grad = g if node.grad is None else node.grad + g
            if node._backward is not None:
                node._accumulate_parents(g, grads)

    def _accumulate_parents(self, g: np.ndarray, grads: dict) -> None:
        """Invoke the local backward fn, adding parent grads into ``grads``."""
        contributions = self._backward(g)
        if contributions is None:
            return
        for parent, contrib in zip(self._parents, contributions):
            if contrib is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + contrib
            else:
                grads[key] = contrib

    # ------------------------------------------------------------------
    # Elementwise arithmetic (broadcasting)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        a, b = self, other
        data = a.data + b.data

        def backward(g):
            return (_unbroadcast(g, a.shape), _unbroadcast(g, b.shape))

        return Tensor._make(data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self
        return Tensor._make(-a.data, (a,), lambda g: (-g,))

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        a, b = self, other
        data = a.data * b.data

        def backward(g):
            ga = _unbroadcast(g * b.data, a.shape) if a.requires_grad else None
            gb = _unbroadcast(g * a.data, b.shape) if b.requires_grad else None
            return (ga, gb)

        return Tensor._make(data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        a, b = self, other
        data = a.data / b.data

        def backward(g):
            ga = _unbroadcast(g / b.data, a.shape) if a.requires_grad else None
            gb = _unbroadcast(-g * a.data / (b.data ** 2), b.shape) if b.requires_grad else None
            return (ga, gb)

        return Tensor._make(data, (a, b), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) / self

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self
        data = a.data ** exponent

        def backward(g):
            return (g * exponent * a.data ** (exponent - 1),)

        return Tensor._make(data, (a,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product.  Supports 2-D @ 2-D and batched (...,m,k)@(k,n)."""
        other = ensure_tensor(other)
        a, b = self, other
        data = a.data @ b.data

        def backward(g):
            ga = gb = None
            if a.requires_grad:
                ga = g @ np.swapaxes(b.data, -1, -2)
                ga = _unbroadcast(ga, a.shape)
            if b.requires_grad:
                gb = np.swapaxes(a.data, -1, -2) @ g
                gb = _unbroadcast(gb, b.shape)
            return (ga, gb)

        return Tensor._make(data, (a, b), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old_shape = a.shape
        data = a.data.reshape(shape)

        def backward(g):
            return (g.reshape(old_shape),)

        return Tensor._make(data, (a,), backward)

    def transpose(self, *axes) -> "Tensor":
        a = self
        if not axes:
            axes_t = tuple(reversed(range(a.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_t = tuple(axes[0])
        else:
            axes_t = tuple(axes)
        inverse = np.argsort(axes_t)
        data = a.data.transpose(axes_t)

        def backward(g):
            return (g.transpose(inverse),)

        return Tensor._make(data, (a,), backward)

    def __getitem__(self, index) -> "Tensor":
        a = self
        data = a.data[index]

        def backward(g):
            full = np.zeros_like(a.data)
            np.add.at(full, index, g)
            return (full,)

        return Tensor._make(data, (a,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        """Flatten dims from ``start_dim`` onward (mirrors torch.flatten)."""
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(shape)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, a.shape).astype(a.dtype),)
            g_expanded = g
            if not keepdims:
                g_expanded = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g_expanded, a.shape).astype(a.dtype),)

        return Tensor._make(data, (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        if axis is None:
            count = a.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([a.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased variance (divides by N) — matches batch-norm convention."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        sq = centered * centered
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            expanded = data
            g_expanded = g
            if axis is not None and not keepdims:
                expanded = np.expand_dims(data, axis=axis)
                g_expanded = np.expand_dims(g, axis=axis)
            mask = (a.data == expanded)
            # Distribute gradient evenly over ties.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return ((mask * g_expanded / counts).astype(a.dtype),)

        return Tensor._make(data, (a,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        data = np.exp(a.data)

        def backward(g):
            return (g * data,)

        return Tensor._make(data, (a,), backward)

    def log(self) -> "Tensor":
        a = self
        data = np.log(a.data)

        def backward(g):
            return (g / a.data,)

        return Tensor._make(data, (a,), backward)

    def sqrt(self) -> "Tensor":
        a = self
        data = np.sqrt(a.data)

        def backward(g):
            return (g * 0.5 / data,)

        return Tensor._make(data, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0
        data = a.data * mask

        def backward(g):
            return (g * mask,)

        return Tensor._make(data, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        # Numerically stable logistic.
        data = np.where(a.data >= 0,
                        1.0 / (1.0 + np.exp(-np.clip(a.data, -60, 60))),
                        np.exp(np.clip(a.data, -60, 60)) / (1.0 + np.exp(np.clip(a.data, -60, 60))))
        data = data.astype(a.dtype)

        def backward(g):
            return (g * data * (1.0 - data),)

        return Tensor._make(data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        data = np.tanh(a.data)

        def backward(g):
            return (g * (1.0 - data ** 2),)

        return Tensor._make(data, (a,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the interval."""
        a = self
        data = np.clip(a.data, low, high)
        mask = (a.data >= low) & (a.data <= high)

        def backward(g):
            return (g * mask,)

        return Tensor._make(data, (a,), backward)


def ensure_tensor(value: ArrayLike) -> Tensor:
    """Coerce scalars/arrays to (non-grad) tensors; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(data, tuple(tensors), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis with gradient support."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        slicer = [slice(None)] * g.ndim
        outs = []
        for i in range(len(tensors)):
            slicer[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            outs.append(g[tuple(slicer)])
        return tuple(outs)

    return Tensor._make(data, tuple(tensors), backward)
