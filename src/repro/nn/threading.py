"""Intra-op thread pool for the numpy kernel layer.

:mod:`repro.nn.functional` splits its heavy im2col matmuls into
row-blocks over the batch dimension and dispatches them across a shared
:class:`~concurrent.futures.ThreadPoolExecutor` (numpy releases the GIL
inside BLAS calls, so threads genuinely overlap).  This module owns the
knob and the pool lifecycle:

- :func:`set_intra_op_threads` / :func:`get_intra_op_threads` — the
  process-wide thread count (1 = serial, 0 = one per available core);
- :func:`intra_op_threads` — context manager for scoped overrides, used
  by the training harness and the SISA shard tasks;
- :func:`run_blocks` — ordered map of a kernel callable over block
  indices, serial or pooled depending on the knob;
- :func:`shutdown_intra_op_pool` — explicit (and ``atexit``-registered)
  drain of the shared pool so long-lived processes exit cleanly.

Determinism contract
--------------------
Block decomposition (:func:`batch_blocks`) depends only on the batch
size, never on the thread count, and callers reduce partial results in
block-index order.  Serial and threaded execution therefore perform the
exact same floating-point operations in the exact same order — results
are bit-identical for every thread count (enforced by
``tests/nn/test_threading.py``).

The pool is fork-aware: a worker process forked while the parent held a
live pool re-creates its own (inherited threads do not survive a fork).
"""

from __future__ import annotations

import atexit
import os
import threading as _threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")

#: Batches below this size run unblocked — threading overhead would
#: exceed the kernel cost, and a single block keeps tiny-batch calls on
#: the exact single-GEMM path.
MIN_BLOCK_BATCH = 16

#: Fixed block count for large batches.  Shape-only (never derived from
#: the thread knob) so the decomposition — and therefore the bit pattern
#: of every reduction — is identical at any thread count.
NUM_BLOCKS = 8

_lock = _threading.Lock()
_intra_op_threads = 1
_pool: ThreadPoolExecutor = None
_pool_size = 0
_pool_pid = 0


def available_cpu_count() -> int:
    """CPUs this process may actually use.

    ``os.sched_getaffinity`` respects container/cgroup CPU masks;
    ``os.cpu_count`` (the fallback on platforms without affinity)
    reports the whole machine.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_intra_op_threads(threads: int) -> int:
    """Normalize the knob: 0 = one per available core, N = N threads."""
    threads = int(threads)
    if threads < 0:
        raise ValueError(f"intra_op_threads must be >= 0 (0 = auto), got {threads}")
    if threads == 0:
        return available_cpu_count()
    return threads


def get_intra_op_threads() -> int:
    """Current process-wide intra-op thread count (always >= 1)."""
    return _intra_op_threads


def set_intra_op_threads(threads: int) -> int:
    """Set the process-wide thread count; returns the resolved value.

    The shared pool is lazily resized on the next dispatch; shrinking to
    1 shuts it down.
    """
    global _intra_op_threads
    resolved = resolve_intra_op_threads(threads)
    with _lock:
        _intra_op_threads = resolved
        if resolved <= 1:
            _shutdown_pool_locked()
    return resolved


@contextmanager
def intra_op_threads(threads: int):
    """Scoped override of the thread knob (restores the previous value)."""
    previous = get_intra_op_threads()
    set_intra_op_threads(threads)
    try:
        yield
    finally:
        set_intra_op_threads(previous)


def _shutdown_pool_locked(wait: bool = False) -> None:
    global _pool, _pool_size
    if _pool is not None:
        _pool.shutdown(wait=wait)
        _pool = None
        _pool_size = 0


def shutdown_intra_op_pool(wait: bool = True) -> None:
    """Drain and release the shared pool (idempotent).

    The next :func:`run_blocks` dispatch lazily rebuilds it, so calling
    this mid-run is safe — it exists so long-lived processes (``repro
    serve``, extended pytest sessions) can exit without leaking worker
    threads, and it runs automatically at interpreter shutdown via
    ``atexit``.
    """
    with _lock:
        _shutdown_pool_locked(wait=wait)


atexit.register(shutdown_intra_op_pool)


def _reinit_after_fork() -> None:
    """Forked children inherit module state but not running threads — and
    a lock held by another parent thread at fork time stays locked in
    the child forever.  Replace the lock and drop the (threadless) pool
    so the first dispatch in the child starts from a clean slate."""
    global _lock, _pool, _pool_size
    _lock = _threading.Lock()
    _pool = None
    _pool_size = 0


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_after_fork)


def _get_pool(size: int) -> ThreadPoolExecutor:
    """Shared executor of ``size`` workers, (re)built on resize or fork."""
    global _pool, _pool_size, _pool_pid
    with _lock:
        if _pool is not None and (_pool_size != size or _pool_pid != os.getpid()):
            _shutdown_pool_locked()
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-intra-op")
            _pool_size = size
            _pool_pid = os.getpid()
        return _pool


def batch_blocks(n: int, blocks: "int | None" = None) -> List[slice]:
    """Contiguous row-block slices of a batch of ``n`` samples.

    Shape-only by default: one block below :data:`MIN_BLOCK_BATCH`,
    otherwise :data:`NUM_BLOCKS` near-equal blocks (remainder spread
    over the leading blocks, matching ``np.array_split``).

    ``blocks`` overrides the count — the compiled-graph path
    (:mod:`repro.nn.graph`) passes a per-(conv geometry, width) value
    from its autotuned table instead of the global default.  Forward
    conv GEMMs are per-sample independent, so the override is shape-safe
    for inference; the interpreted training path always uses the
    default, keeping its reduction order fixed.
    """
    if blocks is None:
        if n < MIN_BLOCK_BATCH:
            return [slice(0, n)]
        blocks = NUM_BLOCKS
    blocks = max(1, min(int(blocks), max(n, 1)))
    if blocks <= 1:
        return [slice(0, n)]
    base, extra = divmod(n, blocks)
    out = []
    start = 0
    for b in range(blocks):
        stop = start + base + (1 if b < extra else 0)
        out.append(slice(start, stop))
        start = stop
    return out


def run_blocks(fn: Callable[[int], T], num_blocks: int) -> List[T]:
    """Evaluate ``fn(block_index)`` for every block, results in order.

    Runs inline when the knob is 1 or there is a single block; otherwise
    fans out across the shared pool and gathers in block-index order so
    caller-side reductions stay deterministic.
    """
    if num_blocks <= 0:
        return []
    threads = get_intra_op_threads()
    if threads <= 1 or num_blocks <= 1:
        return [fn(b) for b in range(num_blocks)]
    pool = _get_pool(threads)
    futures = [pool.submit(fn, b) for b in range(num_blocks)]
    return [f.result() for f in futures]


def map_blocks(fn: Callable[[slice, int], T], blocks: Sequence[slice]) -> List[T]:
    """Like :func:`run_blocks` but hands each call its slice directly."""
    return run_blocks(lambda b: fn(blocks[b], b), len(blocks))
