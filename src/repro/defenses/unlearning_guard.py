"""UnlearningGuard — the paper's §VI "potential defense", implemented.

The paper sketches a naive countermeasure: *"determining if unlearning
requests are malicious by examining requested unlearning samples and the
model's outputs."*  This module makes that concrete with three
provider-side signals computed per deletion request:

1. **Trigger cross-correlation** — ReVeil camouflage samples all carry
   the same additive trigger, so the *residual* between each requested
   image and the dataset mean is unusually correlated across the
   request.  Benign requests (a user's own heterogeneous records) are
   not.  Statistics: mean pairwise cosine similarity of residuals, and —
   much sharper — the fraction of pixel positions whose value is nearly
   constant across the whole request (a stamped patch/trigger makes
   those pixels' cross-request standard deviation collapse to the
   camouflage noise level σ).
2. **Margin concentration** — camouflage samples were the model's
   counter-evidence, so the model classifies them correctly but with a
   conspicuous runner-up: one single class (the attacker's target)
   dominates the second-choice distribution.  Statistic: the top
   runner-up class's share of the request.
3. **Canary ASR shift** — the decisive test: speculatively retrain a
   small *canary* model without the requested records and measure how
   much the runner-up class's prediction rate moves on the requested
   (relabelled) inputs.  A ReVeil request flips them to the target.

Scores are calibrated against benign requests drawn from the provider's
own data; each signal is converted to a z-score and the request is
flagged when the combined score exceeds a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..train import TrainConfig, predict_logits, train_model


@dataclass
class GuardReport:
    """Outcome of screening one unlearning request."""

    flagged: bool
    combined_score: float
    signals: Dict[str, float]
    runner_up_class: Optional[int]

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v:.2f}" for k, v in self.signals.items())
        verdict = "MALICIOUS" if self.flagged else "benign"
        return f"GuardReport({verdict}, score={self.combined_score:.2f}, {parts})"


def _residual_similarity(images: np.ndarray, mean_image: np.ndarray,
                         max_pairs: int = 512,
                         rng: Optional[np.random.Generator] = None) -> float:
    """Mean pairwise cosine similarity of (image − dataset mean)."""
    residuals = (images - mean_image).reshape(len(images), -1)
    norms = np.linalg.norm(residuals, axis=1, keepdims=True) + 1e-9
    unit = residuals / norms
    n = len(unit)
    if n < 2:
        return 0.0
    rng = rng or np.random.default_rng(0)
    total_pairs = n * (n - 1) // 2
    if total_pairs <= max_pairs:
        sims = unit @ unit.T
        upper = sims[np.triu_indices(n, k=1)]
        return float(upper.mean())
    left = rng.integers(0, n, size=max_pairs)
    right = rng.integers(0, n, size=max_pairs)
    keep = left != right
    return float((unit[left[keep]] * unit[right[keep]]).sum(axis=1).mean())


def _shared_content_fraction(images: np.ndarray,
                             std_threshold: float = 0.05) -> float:
    """Fraction of pixel positions nearly constant across the request.

    A stamped trigger makes its pixels (almost) identical in every
    requested image; benign heterogeneous records have no such
    positions.  Requires at least 3 images to be meaningful.
    """
    if len(images) < 3:
        return 0.0
    stds = images.std(axis=0)
    return float((stds < std_threshold).mean())


class UnlearningGuard:
    """Screens deletion requests before the provider honours them.

    Parameters
    ----------
    model:
        The deployed model (read-only here).
    training_data:
        The provider's current training set (requests name its ids).
    calibration_requests:
        How many synthetic benign requests to draw for calibration.
    canary_config:
        Training recipe for the canary retrain signal.  ``None`` disables
        the (expensive) canary and uses only the two cheap signals.
    threshold:
        Combined z-score above which a request is flagged.
    """

    def __init__(self, model: nn.Module, training_data: ArrayDataset,
                 calibration_requests: int = 8,
                 canary_config: Optional[TrainConfig] = None,
                 canary_factory=None,
                 threshold: float = 3.0, seed: int = 0):
        if calibration_requests < 4:
            raise ValueError("need >= 4 calibration requests for z-scores")
        self.model = model
        self.training_data = training_data
        self.calibration_requests = calibration_requests
        self.canary_config = canary_config
        self.canary_factory = canary_factory
        self.threshold = threshold
        self.seed = seed
        self._mean_image = training_data.images.mean(axis=0)
        self._baseline: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _signal_similarity(self, request: ArrayDataset,
                           rng: np.random.Generator) -> float:
        return _residual_similarity(request.images, self._mean_image, rng=rng)

    def _signal_margin(self, request: ArrayDataset) -> tuple:
        """(runner-up concentration, runner-up class id)."""
        logits = predict_logits(self.model, request.images)
        order = np.argsort(logits, axis=1)
        top = order[:, -1]
        runner = order[:, -2]
        # Where the model agrees with the provided label, the runner-up is
        # the interesting hidden preference; elsewhere use the top class.
        candidate = np.where(top == request.labels, runner, top)
        counts = np.bincount(candidate, minlength=logits.shape[1])
        share = counts.max() / max(len(request), 1)
        return float(share), int(counts.argmax())

    def _signal_canary(self, request: ArrayDataset,
                       suspect_class: int) -> float:
        """Prediction shift toward ``suspect_class`` after a speculative
        retrain without the requested records."""
        if self.canary_config is None or self.canary_factory is None:
            return 0.0
        retained = self.training_data.without_ids(request.sample_ids)
        nn.manual_seed(self.seed + 977)
        canary = self.canary_factory()
        train_model(canary, retained, self.canary_config)
        before = predict_logits(self.model, request.images).argmax(axis=1)
        after = predict_logits(canary, request.images).argmax(axis=1)
        shift = (after == suspect_class).mean() - (before == suspect_class).mean()
        return float(shift)

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def calibrate(self, request_size: int) -> None:
        """Estimate benign-signal statistics from synthetic requests."""
        rng = np.random.default_rng(self.seed)
        sims, shared, shares, shifts = [], [], [], []
        for _ in range(self.calibration_requests):
            idx = rng.choice(len(self.training_data),
                             size=min(request_size, len(self.training_data)),
                             replace=False)
            benign = self.training_data.subset(idx)
            sims.append(self._signal_similarity(benign, rng))
            shared.append(_shared_content_fraction(benign.images))
            share, suspect = self._signal_margin(benign)
            shares.append(share)
            shifts.append(self._signal_canary(benign, suspect))
        self._baseline = {"similarity": np.asarray(sims),
                          "shared": np.asarray(shared),
                          "margin": np.asarray(shares),
                          "canary": np.asarray(shifts)}

    @staticmethod
    def _zscore(value: float, baseline: np.ndarray,
                spread_floor: float) -> float:
        """Z-score with a floor on the spread.

        Calibration draws few benign requests, so the empirical std can
        be near zero; the floor (in the signal's natural units) keeps
        ordinary fluctuations from exploding into false positives.
        """
        spread = max(float(baseline.std()), spread_floor)
        return float((value - baseline.mean()) / spread)

    # ------------------------------------------------------------------
    def screen(self, request_ids: Iterable[int]) -> GuardReport:
        """Screen one deletion request (ids into the training set)."""
        ids = np.fromiter(request_ids, dtype=np.int64)
        request = self.training_data.select_ids(ids)
        if len(request) == 0:
            raise ValueError("request names no known records")
        if self._baseline is None:
            self.calibrate(len(request))

        rng = np.random.default_rng(self.seed + 1)
        similarity = self._signal_similarity(request, rng)
        shared = _shared_content_fraction(request.images)
        margin, suspect = self._signal_margin(request)
        canary = self._signal_canary(request, suspect)

        signals = {
            "similarity": self._zscore(similarity,
                                       self._baseline["similarity"], 0.05),
            "shared": self._zscore(shared, self._baseline["shared"], 0.01),
            "margin": self._zscore(margin, self._baseline["margin"], 0.08),
            "canary": self._zscore(canary, self._baseline["canary"], 0.08),
        }
        combined = max(signals.values())
        return GuardReport(flagged=combined > self.threshold,
                           combined_score=combined, signals=signals,
                           runner_up_class=suspect)
