"""Activation Clustering backdoor detection (Chen et al., AAAI-SafeAI 2019).

AC is the classic *training-set-level* defense (cited as [17] in the
ReVeil paper but not evaluated there): for each class, embed the
training samples labelled with that class, project to a low-dimensional
space, 2-means-cluster, and look for a suspiciously clean split — a
poisoned class separates into a large clean cluster and a small tight
cluster of triggered samples.

We include AC as an extension experiment: ReVeil's camouflage changes
what the *model* learns, but the poison samples are still present in the
training set, so it is not obvious the data-level evidence disappears.
The ablation benchmark measures exactly that.

Detection statistic per class: the silhouette score of the 2-means split
combined with the small-cluster fraction.  A class is flagged when the
silhouette exceeds ``silhouette_threshold`` *and* the smaller cluster
holds less than ``size_threshold`` of the class (backdoor poison is a
minority); the model is flagged if any class is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..models.base import ImageClassifier


@dataclass
class ClassClusterReport:
    """2-means diagnostics for one class's training activations."""

    silhouette: float
    small_cluster_fraction: float
    flagged: bool
    small_cluster_positions: np.ndarray   # positions within the class subset


@dataclass
class ACResult:
    """Model-level Activation Clustering outcome."""

    per_class: Dict[int, ClassClusterReport]
    flagged_classes: List[int]

    @property
    def detected(self) -> bool:
        return bool(self.flagged_classes)


def _pca_project(features: np.ndarray, n_components: int) -> np.ndarray:
    """Top-k PCA projection (the original uses ICA; PCA preserves the
    cluster geometry that matters here)."""
    centered = features - features.mean(axis=0, keepdims=True)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    k = min(n_components, vt.shape[0])
    return centered @ vt[:k].T


def _two_means(points: np.ndarray, seed: int, iters: int = 50) -> np.ndarray:
    """Plain 2-means returning the per-point cluster assignment."""
    rng = np.random.default_rng(seed)
    start = rng.choice(len(points), size=2, replace=False)
    centers = points[start].copy()
    assign = np.zeros(len(points), dtype=np.int64)
    for _ in range(iters):
        dists = np.linalg.norm(points[:, None, :] - centers[None], axis=2)
        new_assign = dists.argmin(axis=1)
        if np.array_equal(new_assign, assign) and _ > 0:
            break
        assign = new_assign
        for c in (0, 1):
            members = points[assign == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return assign


def _silhouette(points: np.ndarray, assign: np.ndarray) -> float:
    """Mean silhouette coefficient of a 2-way split (full pairwise)."""
    if len(np.unique(assign)) < 2:
        return 0.0
    diffs = points[:, None, :] - points[None, :, :]
    dists = np.linalg.norm(diffs, axis=2)
    scores = np.zeros(len(points))
    for i in range(len(points)):
        same = assign == assign[i]
        same[i] = False
        other = ~(assign == assign[i])
        a = dists[i, same].mean() if same.any() else 0.0
        b = dists[i, other].mean()
        scores[i] = (b - a) / max(a, b, 1e-12)
    return float(scores.mean())


class ActivationClustering:
    """Training-set backdoor scan over a trained model's activations.

    Parameters
    ----------
    model:
        Trained classifier exposing ``embed`` (pooled features).
    n_components:
        PCA dimensionality before clustering (original uses 10-d ICA;
        2-3 suffices at our feature sizes).
    silhouette_threshold, size_threshold:
        A class is flagged when silhouette ≥ the former and the smaller
        cluster's fraction ≤ the latter.
    min_class_samples:
        Classes with fewer samples are skipped.
    """

    def __init__(self, model: ImageClassifier, n_components: int = 2,
                 silhouette_threshold: float = 0.52,
                 size_threshold: float = 0.35,
                 min_class_samples: int = 12,
                 batch_size: int = 256, seed: int = 0):
        if not 0.0 < size_threshold < 0.5:
            raise ValueError("size_threshold must be in (0, 0.5)")
        self.model = model
        self.n_components = n_components
        self.silhouette_threshold = silhouette_threshold
        self.size_threshold = size_threshold
        self.min_class_samples = min_class_samples
        self.batch_size = batch_size
        self.seed = seed

    # ------------------------------------------------------------------
    def _embed(self, images: np.ndarray) -> np.ndarray:
        outputs = []
        self.model.eval()
        with nn.no_grad():
            for start in range(0, len(images), self.batch_size):
                batch = nn.Tensor(images[start:start + self.batch_size])
                outputs.append(self.model.embed(batch).data.copy())
        return np.concatenate(outputs)

    def analyze_class(self, images: np.ndarray, seed_offset: int = 0
                      ) -> ClassClusterReport:
        """Cluster one class's training activations."""
        features = self._embed(images)
        projected = _pca_project(features, self.n_components)
        assign = _two_means(projected, seed=self.seed + seed_offset)
        counts = np.bincount(assign, minlength=2)
        small = int(counts.argmin())
        fraction = counts[small] / max(counts.sum(), 1)
        silhouette = _silhouette(projected, assign)
        flagged = (silhouette >= self.silhouette_threshold
                   and 0.0 < fraction <= self.size_threshold)
        return ClassClusterReport(
            silhouette=silhouette,
            small_cluster_fraction=float(fraction),
            flagged=flagged,
            small_cluster_positions=np.flatnonzero(assign == small))

    def run(self, training_set: ArrayDataset) -> ACResult:
        """Scan every class of the (suspect) training set."""
        per_class: Dict[int, ClassClusterReport] = {}
        for c in np.unique(training_set.labels):
            members = training_set.images[training_set.labels == c]
            if len(members) < self.min_class_samples:
                continue
            per_class[int(c)] = self.analyze_class(members, seed_offset=int(c))
        flagged = [c for c, report in per_class.items() if report.flagged]
        return ACResult(per_class=per_class, flagged_classes=flagged)
