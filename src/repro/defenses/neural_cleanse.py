"""Neural Cleanse backdoor detection (Wang et al., IEEE S&P 2019).

For every candidate target class ``t`` NC reverse-engineers the smallest
input patch that flips arbitrary inputs to ``t``:

    minimize  CE(f((1−m)·x + m·p), t) + λ·‖m‖₁

over a mask ``m ∈ [0,1]^{H×W}`` and pattern ``p ∈ [0,1]^{C×H×W}``
(both sigmoid-reparameterized, optimized with Adam; λ adapts to keep the
flip rate near a target, as in the original).  A genuinely backdoored
class admits an abnormally *small* mask.  The model-level statistic is
the Median-Absolute-Deviation anomaly index of the mask L1 norms:

    anomaly(t) = (median(L1) − L1_t) / (1.4826 · MAD(L1))

(one-sided: only abnormally small masks count).  ``max_t anomaly(t) ≥ 2``
flags the model — the threshold used in the paper's Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..nn import functional as F
from ..nn.tensor import Tensor


@dataclass
class NeuralCleanseResult:
    """Reverse-engineering outcome for one model."""

    mask_norms: Dict[int, float]         # class -> ‖m‖₁
    flip_rates: Dict[int, float]         # class -> final flip success
    anomaly_index: float                 # max MAD anomaly over classes
    flagged_label: Optional[int]         # class with the max anomaly
    masks: Dict[int, np.ndarray] = field(default_factory=dict)
    patterns: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def detected(self) -> bool:
        """Paper threshold: anomaly index >= 2."""
        return self.anomaly_index >= 2.0


def mad_anomaly_indices(norms: np.ndarray) -> np.ndarray:
    """One-sided MAD anomaly score per entry (small norms anomalous)."""
    norms = np.asarray(norms, dtype=np.float64)
    median = np.median(norms)
    mad = np.median(np.abs(norms - median))
    scale = 1.4826 * mad + 1e-12
    return (median - norms) / scale


class NeuralCleanse:
    """NC detector for a fixed model.

    Parameters
    ----------
    model:
        Suspect classifier.
    num_classes:
        Number of output classes (labels 0..K-1 are each tried as target).
    steps:
        Optimization steps per class (scaled default 250; original ~1000).
    batch_size:
        Clean samples per optimization step.
    lr:
        Adam learning rate for mask/pattern logits.
    lambda_l1:
        Initial L1 weight; adapted ×/÷ ``lambda_step`` to hold the flip
        rate near ``attack_threshold`` (the original's dynamic schedule).
    seed:
        Seeds batch sampling and logit initialization.
    fold_inference:
        Optimize against a BatchNorm-folded inference copy of the model
        (built lazily,
        rebuilt automatically if the model's weights change).  The reverse-engineering loop runs
        ``steps × num_classes`` forward+backward passes, so skipping the
        normalization layers compounds; gradients still flow to the
        mask/pattern because only the *model* parameters are frozen.
    """

    def __init__(self, model: nn.Module, num_classes: int, steps: int = 250,
                 batch_size: int = 24, lr: float = 0.3,
                 lambda_l1: float = 0.02, lambda_step: float = 1.5,
                 attack_threshold: float = 0.95, seed: int = 0,
                 fold_inference: bool = True):
        if steps < 1 or batch_size < 1:
            raise ValueError("steps and batch_size must be >= 1")
        self.model = model
        self.num_classes = num_classes
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr
        self.lambda_l1 = lambda_l1
        self.lambda_step = lambda_step
        self.attack_threshold = attack_threshold
        self.seed = seed
        self.fold_inference = fold_inference
        self._infer = nn.fold.LazyFoldedInference(
            model, enabled=fold_inference, cache=nn.fold.shared_folded_cache())

    # ------------------------------------------------------------------
    def reverse_engineer(self, clean: ArrayDataset, target: int
                         ) -> Dict[str, object]:
        """Optimize (mask, pattern) for one candidate target class."""
        c, h, w = clean.image_shape
        rng = np.random.default_rng(self.seed + target)
        mask_logit = nn.Parameter(rng.normal(-3.0, 0.1, size=(1, 1, h, w))
                                  .astype(np.float32))
        pattern_logit = nn.Parameter(rng.normal(0.0, 0.1, size=(1, c, h, w))
                                     .astype(np.float32))
        optimizer = nn.Adam([mask_logit, pattern_logit], lr=self.lr)
        labels = np.full(self.batch_size, target, dtype=np.int64)
        lam = self.lambda_l1

        self.model.eval()
        model = self._infer.get()
        flip_rate = 0.0
        for step in range(self.steps):
            idx = rng.integers(0, len(clean), size=self.batch_size)
            x = Tensor(clean.images[idx])
            mask = mask_logit.sigmoid()
            pattern = pattern_logit.sigmoid()
            stamped = x * (1.0 - mask) + pattern * mask
            logits = model(stamped)
            flip_rate = float((logits.data.argmax(axis=1) == target).mean())
            loss = F.cross_entropy(logits, labels) + lam * mask.sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            # Adaptive λ: push for sparsity once flips succeed, back off
            # when the trigger stops working (original NC schedule).
            if step % 10 == 9:
                if flip_rate >= self.attack_threshold:
                    lam *= self.lambda_step
                else:
                    lam /= self.lambda_step
        with nn.no_grad():
            final_mask = 1.0 / (1.0 + np.exp(-mask_logit.data[0, 0]))
            final_pattern = 1.0 / (1.0 + np.exp(-pattern_logit.data[0]))
        return {"mask": final_mask, "pattern": final_pattern,
                "l1": float(np.abs(final_mask).sum()), "flip_rate": flip_rate}

    def run(self, clean: ArrayDataset,
            classes: Optional[List[int]] = None) -> NeuralCleanseResult:
        """Reverse-engineer every class and compute the anomaly index."""
        classes = list(range(self.num_classes)) if classes is None else classes
        if len(classes) < 3:
            raise ValueError("MAD statistics need at least 3 candidate classes")
        norms: Dict[int, float] = {}
        flips: Dict[int, float] = {}
        masks: Dict[int, np.ndarray] = {}
        patterns: Dict[int, np.ndarray] = {}
        for t in classes:
            result = self.reverse_engineer(clean, t)
            norms[t] = result["l1"]
            flips[t] = result["flip_rate"]
            masks[t] = result["mask"]
            patterns[t] = result["pattern"]
        order = list(norms)
        indices = mad_anomaly_indices(np.array([norms[t] for t in order]))
        best = int(np.argmax(indices))
        return NeuralCleanseResult(
            mask_norms=norms, flip_rates=flips,
            anomaly_index=float(indices[best]),
            flagged_label=order[best], masks=masks, patterns=patterns)
