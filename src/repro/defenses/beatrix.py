"""Beatrix backdoor detection (Ma et al., NDSS 2023).

Beatrix detects poisoned inputs (and thereby infected models) from
*class-conditional Gram-matrix statistics* of intermediate activations.
For clean samples of a class, the Gram matrix ``G = F·Fᵀ`` of the
penultimate feature map is tightly distributed; a triggered input that
the model routes to the target class carries out-of-distribution feature
correlations, so its Gram entries sit far outside the class statistics.

Implementation (scaled but structurally faithful):

1. **Fit** — split the clean calibration set: one part builds per-class,
   per-dimension robust statistics (median, MAD) of Gram feature vectors
   (upper triangles of ``G`` for feature powers p = 1, 2) over correctly
   classified samples; the other part yields the clean deviation
   baseline (median + MAD of clean deviation scores).
2. **Score** — a sample's deviation is the mean of the top 10% absolute
   robust z-scores of its Gram vector against its *predicted* class.
3. **Decide** — the defender watches a deployment stream (clean traffic
   plus whatever an adversary submits).  Per predicted class, take the
   median deviation; the anomaly index is the maximum over classes of

       (median_dev_class − clean_median) / (1.4826 · clean_MAD).

   A genuinely backdoored model concentrates anomalous traffic in the
   target class (high ASR ⇒ the class bin is majority-triggered ⇒ its
   median flips), driving the index far above the paper's ``e²``
   threshold; a ReVeil-camouflaged model scatters triggered inputs over
   their true classes, every bin stays clean-majority and the index
   stays low — the Fig. 8 behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..models.base import ImageClassifier

E_SQUARED = float(np.exp(2.0))


@dataclass
class BeatrixResult:
    """Model-level decision plus per-class evidence."""

    anomaly_index: float
    flagged_label: Optional[int]
    class_indices: Dict[int, float]

    @property
    def detected(self) -> bool:
        """Paper threshold: anomaly index >= e^2."""
        return self.anomaly_index >= E_SQUARED


def gram_features(feature_maps: np.ndarray, powers: Tuple[int, ...] = (1, 2)
                  ) -> np.ndarray:
    """Per-sample Gram feature vectors from (N, C, H, W) activations.

    For each power ``p`` the feature map is raised elementwise to ``p``,
    the C×C Gram matrix is formed over flattened spatial positions, and
    its upper triangle (p-th-root normalized, as in the original) is
    appended to the output vector.
    """
    n, c, h, w = feature_maps.shape
    flat = feature_maps.reshape(n, c, h * w)
    rows, cols = np.triu_indices(c)
    pieces: List[np.ndarray] = []
    for p in powers:
        powered = flat ** p
        gram = np.matmul(powered, powered.transpose(0, 2, 1)) / (h * w)
        signs = np.sign(gram)
        rooted = signs * np.abs(gram) ** (1.0 / p)
        pieces.append(rooted[:, rows, cols])
    return np.concatenate(pieces, axis=1)


class BeatrixDetector:
    """Gram-statistics detector bound to a model.

    Parameters
    ----------
    model:
        Suspect classifier exposing ``forward_with_features``.
    powers:
        Elementwise feature-map powers for the Gram features.
    top_fraction:
        Fraction of the most-deviating Gram dimensions averaged into a
        sample's deviation score (deviations are trigger-localized, so a
        top-k mean beats a full mean).
    min_class_samples:
        Minimum correctly-classified calibration samples per class, and
        minimum stream bin size for a class to enter the decision.
    calibration_split:
        Fraction of the clean calibration set used for class statistics
        (the rest forms the clean deviation baseline).
    fold_inference:
        Extract features through a BatchNorm-folded inference copy of
        the model (built lazily,
        rebuilt automatically if the model's weights change) — the Gram sweep forwards the
        whole calibration set plus every stream batch.
    """

    def __init__(self, model: ImageClassifier,
                 powers: Tuple[int, ...] = (1, 2),
                 top_fraction: float = 0.1,
                 min_class_samples: int = 5,
                 calibration_split: float = 0.6,
                 batch_size: int = 128, seed: int = 0,
                 fold_inference: bool = True):
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        if not 0.0 < calibration_split < 1.0:
            raise ValueError("calibration_split must be in (0, 1)")
        self.model = model
        self.fold_inference = fold_inference
        self._infer = nn.fold.LazyFoldedInference(
            model, enabled=fold_inference, cache=nn.fold.shared_folded_cache())
        self.powers = powers
        self.top_fraction = top_fraction
        self.min_class_samples = min_class_samples
        self.calibration_split = calibration_split
        self.batch_size = batch_size
        self.seed = seed
        self._stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._clean_median: float = float("nan")
        self._clean_mad: float = float("nan")

    # ------------------------------------------------------------------
    def _features_and_preds(self, images: np.ndarray
                            ) -> Tuple[np.ndarray, np.ndarray]:
        grams: List[np.ndarray] = []
        preds: List[np.ndarray] = []
        self.model.eval()
        model = self._infer.get()
        with nn.no_grad():
            for start in range(0, len(images), self.batch_size):
                batch = nn.Tensor(images[start:start + self.batch_size])
                logits, feats = model.forward_with_features(batch)
                grams.append(gram_features(feats.data, self.powers))
                preds.append(logits.data.argmax(axis=1))
        return np.concatenate(grams), np.concatenate(preds)

    def _topk_mean(self, z: np.ndarray) -> np.ndarray:
        k = max(1, int(self.top_fraction * z.shape[1]))
        return np.partition(z, -k, axis=1)[:, -k:].mean(axis=1)

    def fit(self, clean: ArrayDataset) -> "BeatrixDetector":
        """Build class statistics and the clean deviation baseline."""
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(clean))
        cut = int(round(self.calibration_split * len(clean)))
        stat_part = clean.subset(order[:cut])
        base_part = clean.subset(order[cut:])
        if len(stat_part) == 0 or len(base_part) == 0:
            raise ValueError("calibration set too small to split")

        grams, preds = self._features_and_preds(stat_part.images)
        correct = preds == stat_part.labels
        self._stats = {}
        for c in np.unique(stat_part.labels):
            sel = correct & (stat_part.labels == c)
            if sel.sum() < self.min_class_samples:
                continue
            g = grams[sel]
            median = np.median(g, axis=0)
            mad = np.median(np.abs(g - median), axis=0) + 1e-6
            self._stats[int(c)] = (median, mad)
        if not self._stats:
            raise RuntimeError("no class had enough calibration samples")

        base_dev, _ = self.deviations(base_part.images)
        valid = base_dev[~np.isnan(base_dev)]
        if valid.size == 0:
            raise RuntimeError("clean baseline produced no valid deviations")
        self._clean_median = float(np.median(valid))
        self._clean_mad = float(np.median(np.abs(valid - self._clean_median))
                                ) + 1e-9
        return self

    # ------------------------------------------------------------------
    def deviations(self, images: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """(deviation score, predicted class) per sample.

        Samples predicted as classes without statistics get NaN.
        """
        if not self._stats:
            raise RuntimeError("fit() must run before deviations()")
        grams, preds = self._features_and_preds(images)
        scores = np.full(len(images), np.nan)
        for c, (median, mad) in self._stats.items():
            sel = preds == c
            if not sel.any():
                continue
            z = np.abs(grams[sel] - median) / (1.4826 * mad)
            scores[sel] = self._topk_mean(z)
        return scores, preds

    def run(self, stream_images: np.ndarray) -> BeatrixResult:
        """Model-level decision from a deployment input stream.

        The stream should reflect deployment traffic: mostly clean with
        some adversarial contamination (see :meth:`run_mixed`).
        """
        if np.isnan(self._clean_median):
            raise RuntimeError("fit() must run before run()")
        scores, preds = self.deviations(stream_images)
        class_indices: Dict[int, float] = {}
        for c in self._stats:
            sel = (preds == c) & ~np.isnan(scores)
            if sel.sum() < max(self.min_class_samples, 8):
                continue
            med = float(np.median(scores[sel]))
            class_indices[c] = (med - self._clean_median) / (1.4826 *
                                                             self._clean_mad)
        if not class_indices:
            return BeatrixResult(anomaly_index=0.0, flagged_label=None,
                                 class_indices={})
        flagged = max(class_indices, key=class_indices.get)
        return BeatrixResult(anomaly_index=float(class_indices[flagged]),
                             flagged_label=int(flagged),
                             class_indices=class_indices)

    def run_mixed(self, clean_images: np.ndarray,
                  triggered_images: np.ndarray,
                  contamination: float = 0.25,
                  seed: int = 1) -> BeatrixResult:
        """Assemble a contaminated deployment stream and decide.

        ``contamination`` is the fraction of adversarial inputs in the
        stream (subsampled from ``triggered_images``).
        """
        if not 0.0 < contamination < 1.0:
            raise ValueError("contamination must be in (0, 1)")
        rng = np.random.default_rng(seed)
        want = int(contamination / (1.0 - contamination) * len(clean_images))
        take = min(want, len(triggered_images))
        pick = rng.choice(len(triggered_images), size=take, replace=False)
        stream = np.concatenate([clean_images, triggered_images[pick]])
        return self.run(stream)
