"""``repro.defenses`` — the three detectors ReVeil must evade.

- :class:`StripDefense` (Fig. 6) — superimposition-entropy test.
- :class:`NeuralCleanse` (Fig. 7) — trigger reverse-engineering with a
  MAD anomaly index (threshold 2).
- :class:`BeatrixDetector` (Fig. 8) — class-conditional Gram-matrix
  statistics (threshold e²).
"""

from .activation_clustering import (ACResult, ActivationClustering,
                                    ClassClusterReport)
from .beatrix import (E_SQUARED, BeatrixDetector, BeatrixResult,
                      gram_features)
from .neural_cleanse import (NeuralCleanse, NeuralCleanseResult,
                             mad_anomaly_indices)
from .strip import StripDefense, StripResult
from .unlearning_guard import GuardReport, UnlearningGuard

__all__ = [
    "StripDefense", "StripResult",
    "NeuralCleanse", "NeuralCleanseResult", "mad_anomaly_indices",
    "BeatrixDetector", "BeatrixResult", "gram_features", "E_SQUARED",
    "UnlearningGuard", "GuardReport",
    "ActivationClustering", "ACResult", "ClassClusterReport",
]
