"""STRIP backdoor detection (Gao et al., ACSAC 2019).

STRIP superimposes a suspect input with many random clean images and
measures the Shannon entropy of the model's predictions on the blends.
Clean inputs lose their class evidence under superimposition → high
entropy; backdoored inputs keep triggering the target class → low
entropy.  The detection boundary is the entropy below which at most
``frr`` of clean inputs fall (the paper family uses FRR ≈ 1%).

Fig. 6 of the ReVeil paper reports a signed *decision value* per model:
positive ⇒ backdoor detected.  We define it as the excess detection rate
over the false-rejection budget:

    decision = (fraction of suspects below the boundary) − margin·frr

With an active backdoor, triggered blends stay confidently target-class
(entropy below the boundary for most suspects) ⇒ positive.  Under ReVeil
camouflage the trigger no longer dominates, suspect entropies match
clean ones and only ≈frr of them fall below the boundary ⇒ ≈ (1−margin)
·frr < 0.  The ``margin`` (default 3) is the significance factor that
absorbs boundary-estimation noise.  Sign semantics match the paper;
magnitudes are substrate-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..nn import functional as F
from ..train import predict_logits


@dataclass
class StripResult:
    """Outcome of a STRIP sweep over a suspect set."""

    decision_value: float          # positive => backdoor detected
    boundary: float                # FRR-calibrated entropy threshold
    clean_entropies: np.ndarray    # per-clean-input mean blend entropy
    suspect_entropies: np.ndarray  # per-suspect-input mean blend entropy

    @property
    def detected(self) -> bool:
        return self.decision_value > 0

    @property
    def far(self) -> float:
        """False-acceptance proxy: suspects above the boundary."""
        if len(self.suspect_entropies) == 0:
            return float("nan")
        return float((self.suspect_entropies > self.boundary).mean())


class StripDefense:
    """STRIP detector bound to a model and a clean overlay pool.

    Parameters
    ----------
    model:
        The (suspect) classifier.
    overlay_pool:
        Clean images used for superimposition (defender's held-out data).
    num_overlays:
        Blends per input (paper family uses ~100; scaled default 16).
    alpha:
        Overlay weight in the additive superimposition
        ``blend = clip(input + alpha · overlay)`` — the original STRIP
        adds images, which keeps the trigger at full contrast.
    frr:
        Target false-rejection rate used to calibrate the boundary.
    margin:
        Significance factor in the decision value
        ``detection_rate − margin · frr``.
    seed:
        Seeds overlay selection.
    fold_inference:
        Route the sweep's forward passes through a BatchNorm-folded
        inference copy of the model (built lazily,
        rebuilt automatically if the model's weights change).  On by
        default — STRIP evaluates ``num_overlays`` blends per input, so
        the eval fast path compounds.
    """

    def __init__(self, model: nn.Module, overlay_pool: ArrayDataset,
                 num_overlays: int = 16, alpha: float = 0.5,
                 frr: float = 0.05, margin: float = 3.0, seed: int = 0,
                 fold_inference: bool = True):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < frr < 0.5:
            raise ValueError("frr must be in (0, 0.5)")
        if num_overlays < 1:
            raise ValueError("num_overlays must be >= 1")
        if margin < 1.0:
            raise ValueError("margin must be >= 1")
        self.model = model
        self.overlay_pool = overlay_pool
        self.num_overlays = num_overlays
        self.alpha = alpha
        self.frr = frr
        self.margin = margin
        self.seed = seed
        self.fold_inference = fold_inference
        self._infer = nn.fold.LazyFoldedInference(
            model, enabled=fold_inference, cache=nn.fold.shared_folded_cache())

    # ------------------------------------------------------------------
    def entropies(self, images: np.ndarray, seed_offset: int = 0) -> np.ndarray:
        """Mean prediction entropy over superimposed copies, per input."""
        rng = np.random.default_rng(self.seed + seed_offset)
        n = len(images)
        pool = self.overlay_pool.images
        model = self._infer.get()
        total = np.zeros(n, dtype=np.float64)
        for _ in range(self.num_overlays):
            overlays = pool[rng.integers(0, len(pool), size=n)]
            blend = np.clip(images + self.alpha * overlays,
                            0.0, 1.0).astype(np.float32)
            logits = predict_logits(model, blend)
            z = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(z)
            probs /= probs.sum(axis=1, keepdims=True)
            total += F.entropy_of_probs(probs)
        return total / self.num_overlays

    def calibrate(self, clean_images: np.ndarray) -> float:
        """FRR-percentile entropy boundary from clean inputs."""
        clean_h = self.entropies(clean_images, seed_offset=1)
        return float(np.quantile(clean_h, self.frr))

    def run(self, clean_images: np.ndarray,
            suspect_images: np.ndarray) -> StripResult:
        """Full sweep: calibrate on clean, score suspects, decide."""
        clean_h = self.entropies(clean_images, seed_offset=1)
        boundary = float(np.quantile(clean_h, self.frr))
        suspect_h = self.entropies(suspect_images, seed_offset=2)
        detection_rate = float((suspect_h < boundary).mean())
        decision = detection_rate - self.margin * self.frr
        return StripResult(decision_value=float(decision), boundary=boundary,
                           clean_entropies=clean_h, suspect_entropies=suspect_h)
