"""Deterministic fault injection for the parallel and serving planes.

A *site* is a named point in the code where a fault can be made to
happen — ``"session.call:repro-serve-worker-0"`` (one worker session's
call stream), ``"state.write"`` (a state-dict ship into shared memory),
``"shm.create"`` (a shared-memory allocation), ``"pool.state_lane"``
(one pooled state-return lane).  A :class:`FaultPlan` schedules faults
by ``(site, call index)``; the :class:`FaultInjector` counts every
visit to every site and reports which visits are due a fault.  Call
sites interpret the fault *kind* themselves (kill the worker process,
raise ``TimeoutError``, corrupt a fingerprint, raise ``OSError``), so
this module stays dependency-free and the injector is pure
bookkeeping — trivially deterministic and picklable.

Zero overhead when disabled
---------------------------
Production code guards every site with::

    if _faults.ACTIVE is not None:
        fault = _faults.ACTIVE.check("site.name")

With no injector installed that is one module-attribute load and a
``None`` test — no allocation, no locking, no branch into this module.

Determinism
-----------
Plans are explicit ``(site, call, kind)`` triples; :meth:`FaultPlan.
seeded` derives a reproducible schedule from an integer seed.  Site
counters are per-injector and increment exactly once per visit, so a
given plan fires the same faults at the same call indices on every run
— which is what lets the chaos smoke assert post-recovery bit-identity
against a fault-free run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Fault kinds the injection sites understand.
#:
#: - ``crash``: SIGKILL the worker process *before* the request is sent
#:   (a worker that died between calls);
#: - ``crash_mid``: SIGKILL the worker right *after* the request is sent
#:   (a worker that dies mid-batch, mid-ship or mid-warm-up);
#: - ``stall``: the call blows its deadline (raises ``TimeoutError`` as
#:   if the worker never answered; the session is poisoned exactly as a
#:   real stall would leave it);
#: - ``send_error``: the request pipe write fails (``BrokenPipeError``);
#: - ``oserror``: a shared-memory allocation fails as if ``/dev/shm``
#:   were exhausted (``OSError(ENOSPC)``);
#: - ``corrupt_fingerprint``: a state-dict ship advertises a wrong
#:   content fingerprint, so the reader's verify must catch it.
FAULT_KINDS = ("crash", "crash_mid", "stall", "send_error", "oserror",
               "corrupt_fingerprint")

#: ``Fault.call`` value meaning "every visit to this site" (used by the
#: chaos smoke to keep killing workers until the breaker ejects them).
ANY_CALL = 0


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: visit number ``call`` of ``site`` does ``kind``.

    ``call`` is 1-based (the first visit to a site is call 1);
    :data:`ANY_CALL` (0) fires on every visit.
    """

    site: str
    call: int
    kind: str

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {FAULT_KINDS}")
        if self.call < 0:
            raise ValueError(f"call must be >= 0 (0 = every call), "
                             f"got {self.call}")


class FaultPlan:
    """An immutable schedule of :class:`Fault`\\ s, indexed by site."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self._by_site: Dict[str, Dict[int, Fault]] = {}
        self._always: Dict[str, Fault] = {}
        for fault in faults:
            if fault.call == ANY_CALL:
                if fault.site in self._always:
                    raise ValueError(
                        f"duplicate every-call fault for site {fault.site!r}")
                self._always[fault.site] = fault
                continue
            per_site = self._by_site.setdefault(fault.site, {})
            if fault.call in per_site:
                raise ValueError(f"duplicate fault for "
                                 f"({fault.site!r}, call {fault.call})")
            per_site[fault.call] = fault

    def lookup(self, site: str, call: int) -> Optional[Fault]:
        always = self._always.get(site)
        if always is not None:
            return always
        return self._by_site.get(site, {}).get(call)

    def faults(self) -> List[Fault]:
        out = list(self._always.values())
        for per_site in self._by_site.values():
            out.extend(per_site.values())
        return sorted(out, key=lambda f: (f.site, f.call))

    def __len__(self) -> int:
        return len(self._always) + sum(len(m) for m in self._by_site.values())

    @classmethod
    def seeded(cls, seed: int, sites: Sequence[str],
               kinds: Sequence[str] = ("crash", "crash_mid", "stall"),
               faults_per_site: int = 1, max_call: int = 8) -> "FaultPlan":
        """Derive a reproducible random schedule from ``seed``.

        A simple deterministic LCG (not ``random``/``numpy``) keeps the
        schedule independent of any global RNG state the workload
        seeds for itself.
        """
        if max_call < 1:
            raise ValueError("max_call must be >= 1")
        state = (int(seed) * 6364136223846793005 + 1442695040888963407) \
            % (1 << 64)
        faults: List[Fault] = []
        for site in sites:
            calls_taken = set()
            for _ in range(faults_per_site):
                state = (state * 6364136223846793005
                         + 1442695040888963407) % (1 << 64)
                call = 1 + (state >> 33) % max_call
                while call in calls_taken:
                    call = 1 + call % max_call
                calls_taken.add(call)
                state = (state * 6364136223846793005
                         + 1442695040888963407) % (1 << 64)
                kind = kinds[(state >> 33) % len(kinds)]
                faults.append(Fault(site, call, kind))
        return cls(faults)


class FaultInjector:
    """Counts site visits and reports which visits are due a fault.

    Thread-safe: serving dispatch threads and the batcher worker all
    pass through sites concurrently.  ``fired`` keeps the exact
    sequence of injected faults (with the call index each landed on)
    so smokes and tests can assert the schedule really ran.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self.fired: List[Tuple[str, int, str]] = []

    def check(self, site: str) -> Optional[Fault]:
        """Record one visit to ``site``; return the fault due now, if any."""
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
            fault = self.plan.lookup(site, count)
            if fault is not None:
                self.fired.append((site, count, fault.kind))
        return fault

    def stats(self) -> dict:
        """JSON-ready snapshot for ``/metrics`` and smoke logs."""
        with self._lock:
            return {
                "planned": len(self.plan),
                "fired": len(self.fired),
                "events": [{"site": site, "call": call, "kind": kind}
                           for site, call, kind in self.fired],
                "site_counts": dict(sorted(self._counts.items())),
            }


#: The installed injector.  ``None`` (the default) disables every site.
ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    return ACTIVE


def install(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` process-wide (replaces any previous one)."""
    global ACTIVE
    ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the installed injector; every site goes back to zero cost."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Install a fresh injector for ``plan`` for the duration of a block."""
    injector = install(FaultInjector(plan))
    try:
        yield injector
    finally:
        uninstall()
