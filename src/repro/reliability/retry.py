"""Retry policies and per-worker supervision.

The serving determinism contract (every forward padded to exactly
``max_batch_size``, bit-stable kernels at every thread count) makes a
batch replay bit-identical by construction, so retrying an idempotent
batch after a worker crash or stall is always safe.  This module
supplies the knobs:

- :class:`RetryPolicy` — bounded attempts with deterministic jittered
  exponential backoff and an optional per-call deadline.  The jitter is
  hashed from ``(token, attempt)`` instead of drawn from a global RNG,
  so a retry schedule never perturbs any seeded randomness the workload
  owns and two runs of the same chaos plan back off identically.
- :class:`WorkerSupervisor` — a per-worker respawn budget + circuit
  breaker (closed → open → half-open).  Persistent failure ejects the
  worker (its load is redistributed to the surviving pool); after a
  cooldown a probe respawn may re-admit it once it passes warm-up.
- :class:`ReliabilityConfig` — the bundle the serving backend takes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..obs.backoff import backoff_delay


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic jittered exponential backoff.

    ``max_attempts`` counts the first try: 3 means one call plus up to
    two retries.  ``deadline_s`` (when set) bounds each worker call;
    a call that exceeds it is treated as a stall — the session is
    poisoned and the worker respawned, because a timed-out pipe
    round-trip can no longer be trusted to stay in sync.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.02
    max_delay_s: float = 1.0
    jitter: float = 0.25
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, token: str = "") -> float:
        """Delay before retry number ``attempt`` (1-based).

        Deterministic: the jitter factor is derived from a hash of
        ``(token, attempt)``, so a given (worker, attempt) pair always
        waits the same amount while distinct workers still de-correlate
        (:func:`repro.obs.backoff.backoff_delay` — the one shared copy
        every retry loop in the tree backs off through).
        """
        return backoff_delay(attempt, base_delay_s=self.base_delay_s,
                             max_delay_s=self.max_delay_s,
                             jitter=self.jitter, token=token)


class WorkerSupervisor:
    """Failure accounting + circuit breaker for one worker slot.

    States mirror the classic breaker:

    - *closed* — healthy; successes reset the consecutive-failure run.
    - *open* (``ejected``) — too many consecutive failures or the
      respawn budget is spent; the slot takes no traffic until the
      cooldown elapses.
    - *half-open* (``probing``) — one probe respawn is in flight; if it
      passes warm-up the breaker closes, otherwise it re-opens with a
      fresh cooldown.

    Not thread-safe on its own — the owning backend serializes state
    transitions under its pool lock.
    """

    def __init__(self, failure_threshold: int = 3, respawn_budget: int = 3,
                 cooldown_s: float = 1.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if respawn_budget < 0:
            raise ValueError("respawn_budget must be >= 0")
        self.failure_threshold = failure_threshold
        self.respawn_budget = respawn_budget
        self.cooldown_s = cooldown_s
        self.consecutive_failures = 0
        self.total_failures = 0
        self.respawns = 0
        self.ejections = 0
        self.state = "closed"
        self._reopen_at = 0.0

    # -- accounting -----------------------------------------------------
    def record_success(self) -> None:
        # A served batch proves the worker healthy: the failure run ends
        # and the respawn budget refills.  The budget bounds respawns
        # per *incident*, not per process lifetime — a long-lived server
        # should not eject a worker for crashes months apart.
        self.consecutive_failures = 0
        self.respawns = 0
        self.state = "closed"

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self.total_failures += 1

    def record_respawn(self) -> None:
        self.respawns += 1

    # -- breaker transitions --------------------------------------------
    @property
    def ejected(self) -> bool:
        return self.state in ("open", "half-open")

    def should_eject(self) -> bool:
        return (self.consecutive_failures >= self.failure_threshold
                or self.respawns > self.respawn_budget)

    def eject(self, now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        self.state = "open"
        self.ejections += 1
        self._reopen_at = now + self.cooldown_s

    def probe_due(self, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        return self.state == "open" and now >= self._reopen_at

    def begin_probe(self) -> None:
        self.state = "half-open"

    def probe_failed(self, now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        self.state = "open"
        self._reopen_at = now + self.cooldown_s

    def close_breaker(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.respawns = 0       # re-admitted with a fresh budget

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "respawns": self.respawns,
            "ejections": self.ejections,
        }


@dataclass(frozen=True)
class ReliabilityConfig:
    """Supervision knobs for the multi-process serving backend.

    ``degrade_to_inline`` gates the last tier: with every worker
    ejected, batches run inline in the parent (slower, never down)
    until a probe respawn passes warm-up and re-promotes the pool.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    failure_threshold: int = 3
    respawn_budget: int = 3
    breaker_cooldown_s: float = 1.0
    degrade_to_inline: bool = True

    def supervisor(self) -> WorkerSupervisor:
        return WorkerSupervisor(failure_threshold=self.failure_threshold,
                                respawn_budget=self.respawn_budget,
                                cooldown_s=self.breaker_cooldown_s)
