"""``repro.reliability`` — deterministic fault injection + supervision.

The serving operator in the paper's threat model only matters while the
stack is *up*: the camouflage → unlearn → hot-swap arc runs across
worker crashes, stalled calls, corrupted shared-memory ships and
exhausted ``/dev/shm`` exactly as often as real fleets see them.  This
package supplies the two halves of that failure model:

- :mod:`~repro.reliability.faults` — a seeded, deterministic
  :class:`FaultInjector`.  Fault plans are keyed by *site* (``worker
  call N of session X crashes``, ``state ship M advertises a corrupt
  fingerprint``, ``the next shm allocation raises as if /dev/shm were
  full``) and threaded through :mod:`repro.parallel` and
  :mod:`repro.serve.multiproc` behind a zero-overhead-when-disabled
  hook: with no injector installed every site is a single ``None``
  check.
- :mod:`~repro.reliability.retry` — the supervision layer that makes
  injected (and real) faults survivable: :class:`RetryPolicy` bounds
  per-call deadlines and replays idempotent fixed-width batches with
  deterministic jittered exponential backoff (the serving determinism
  contract makes a replay bit-identical by construction), and
  :class:`WorkerSupervisor` is the per-worker respawn budget + circuit
  breaker that ejects persistently failing workers, redistributes
  their load, and re-admits them once a probe respawn passes warm-up.

The chaos gate (``python -m repro.serve.smoke --chaos``) runs seeded
fault schedules end-to-end and asserts zero errored client responses
plus post-recovery bit-identity versus the fault-free run.
"""

from .faults import (ANY_CALL, FAULT_KINDS, Fault, FaultInjector, FaultPlan,
                     active_injector, injected, install, uninstall)
from .retry import ReliabilityConfig, RetryPolicy, WorkerSupervisor

__all__ = [
    "Fault", "FaultPlan", "FaultInjector", "FAULT_KINDS", "ANY_CALL",
    "install", "uninstall", "injected", "active_injector",
    "RetryPolicy", "WorkerSupervisor", "ReliabilityConfig",
]
