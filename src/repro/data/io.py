"""Dataset persistence.

Crafted poison/camouflage bundles are data an adversary prepares offline
and submits later (the paper's data-collection threat model); these
helpers round-trip :class:`~repro.data.dataset.ArrayDataset` through a
single ``.npz`` file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from .dataset import ArrayDataset

PathLike = Union[str, Path]


def save_dataset(dataset: ArrayDataset, path: PathLike) -> None:
    """Write a dataset (images, labels, sample ids) to ``.npz``."""
    np.savez_compressed(str(path), images=dataset.images,
                        labels=dataset.labels,
                        sample_ids=dataset.sample_ids)


def load_dataset_file(path: PathLike) -> ArrayDataset:
    """Read a dataset written by :func:`save_dataset`."""
    with np.load(str(path)) as archive:
        missing = {"images", "labels", "sample_ids"} - set(archive.files)
        if missing:
            raise ValueError(f"not a dataset archive, missing {sorted(missing)}")
        return ArrayDataset(archive["images"], archive["labels"],
                            archive["sample_ids"])
