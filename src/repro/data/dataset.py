"""Dataset containers.

Images are stored as dense float32 arrays ``(N, C, H, W)`` in ``[0, 1]``
— the array-first layout keeps poisoning, camouflaging and SISA sharding
vectorized and cheap.  Every sample also carries a stable integer
``sample_id`` so unlearning requests can reference exact records even
after shuffling/sharding (this is what a real deletion request names).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


class ArrayDataset:
    """In-memory labelled image dataset.

    Parameters
    ----------
    images:
        ``(N, C, H, W)`` float32 in [0, 1].
    labels:
        ``(N,)`` integer class ids.
    sample_ids:
        Optional stable ids; defaults to ``arange(N)``.  Ids are preserved
        by :meth:`subset` / :func:`concat_datasets`, letting callers name
        exact records in unlearning requests.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray,
                 sample_ids: Optional[np.ndarray] = None):
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got {images.shape}")
        if labels.shape != (images.shape[0],):
            raise ValueError(f"labels shape {labels.shape} does not match {images.shape[0]} images")
        if sample_ids is None:
            sample_ids = np.arange(images.shape[0], dtype=np.int64)
        else:
            sample_ids = np.asarray(sample_ids, dtype=np.int64)
            if sample_ids.shape != (images.shape[0],):
                raise ValueError("sample_ids shape must match number of images")
        self.images = images
        self.labels = labels
        self.sample_ids = sample_ids

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0

    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        """Positional-index subset preserving sample ids."""
        idx = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(self.images[idx], self.labels[idx], self.sample_ids[idx])

    def without_ids(self, ids: Iterable[int]) -> "ArrayDataset":
        """Drop all samples whose ``sample_id`` is in ``ids``."""
        drop = np.isin(self.sample_ids, np.fromiter(ids, dtype=np.int64))
        return self.subset(np.flatnonzero(~drop))

    def select_ids(self, ids: Iterable[int]) -> "ArrayDataset":
        """Keep only samples whose ``sample_id`` is in ``ids``."""
        keep = np.isin(self.sample_ids, np.fromiter(ids, dtype=np.int64))
        return self.subset(np.flatnonzero(keep))

    def shuffled(self, rng: np.random.Generator) -> "ArrayDataset":
        perm = rng.permutation(len(self))
        return self.subset(perm)

    def split(self, fraction: float, rng: np.random.Generator
              ) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Random split into (first, second) with ``fraction`` in first."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        perm = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(perm[:cut]), self.subset(perm[cut:])

    def class_indices(self, label: int) -> np.ndarray:
        """Positional indices of all samples with the given label."""
        return np.flatnonzero(self.labels == label)

    def copy(self) -> "ArrayDataset":
        return ArrayDataset(self.images.copy(), self.labels.copy(),
                            self.sample_ids.copy())

    def __repr__(self) -> str:
        return (f"ArrayDataset(n={len(self)}, shape={self.image_shape}, "
                f"classes={self.num_classes})")


def concat_datasets(datasets: Sequence[ArrayDataset]) -> ArrayDataset:
    """Concatenate datasets (sample ids are preserved, not re-assigned)."""
    if not datasets:
        raise ValueError("need at least one dataset")
    shapes = {d.image_shape for d in datasets}
    if len(shapes) != 1:
        raise ValueError(f"image shapes differ: {shapes}")
    return ArrayDataset(
        np.concatenate([d.images for d in datasets]),
        np.concatenate([d.labels for d in datasets]),
        np.concatenate([d.sample_ids for d in datasets]),
    )


def reassign_ids(dataset: ArrayDataset, start: int = 0) -> ArrayDataset:
    """Return a copy with fresh contiguous sample ids starting at ``start``.

    Use after assembling a training mixture (clean ∪ poison ∪ camouflage)
    so ids are unique across sources.
    """
    fresh = np.arange(start, start + len(dataset), dtype=np.int64)
    return ArrayDataset(dataset.images, dataset.labels, fresh)
