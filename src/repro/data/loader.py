"""Mini-batch iteration over :class:`~repro.data.dataset.ArrayDataset`."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .dataset import ArrayDataset


class DataLoader:
    """Seeded, shuffling batch iterator.

    Each ``__iter__`` reshuffles (when ``shuffle=True``) using its own
    ``numpy`` Generator so experiment runs are reproducible given a seed,
    independent of global RNG state.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int = 64,
                 shuffle: bool = True, seed: int = 0,
                 drop_last: bool = False):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        if not self.shuffle:
            # Sequential order: contiguous slices are zero-copy views,
            # no permutation array and no gather copy per batch.  The
            # views are marked read-only so accidental in-place batch
            # mutation raises instead of corrupting the dataset; callers
            # that need to write must copy() first.
            for start in range(0, n, self.batch_size):
                stop = min(start + self.batch_size, n)
                if self.drop_last and stop - start < self.batch_size:
                    return
                images = self.dataset.images[start:stop]
                labels = self.dataset.labels[start:stop]
                images.flags.writeable = False
                labels.flags.writeable = False
                yield images, labels
            return
        order = self._rng.permutation(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            yield self.dataset.images[idx], self.dataset.labels[idx]
