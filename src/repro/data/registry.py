"""Dataset profiles mirroring the paper's four benchmarks.

Every profile names the synthetic stand-in for one of the paper's
datasets.  Paper-scale profiles keep the true class counts / resolutions
(CIFAR10 10×32², GTSRB 43×32², CIFAR100 100×32², Tiny-ImageNet 200×64²);
bench-scale profiles shrink resolution and class count so a full
experiment grid runs on CPU in minutes while preserving the relative
difficulty ordering (cifar10 < gtsrb < cifar100 < tiny in classes).

The paper's target labels — 'airplane', 'Speed Limit (20km/h)', 'apple',
'goldfish' — are all mapped to class id 0 of the respective profile (the
paper notes ReVeil is target-label independent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .dataset import ArrayDataset
from .synthetic import SyntheticSpec, generate_dataset


@dataclass(frozen=True)
class DatasetProfile:
    """A named dataset configuration (one per paper dataset × scale)."""

    name: str
    spec: SyntheticSpec
    train_per_class: int
    test_per_class: int
    target_label: int = 0
    target_label_name: str = ""

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def train_size(self) -> int:
        return self.num_classes * self.train_per_class

    @property
    def test_size(self) -> int:
        return self.num_classes * self.test_per_class


_PROFILES: Dict[str, DatasetProfile] = {}


def _register(profile: DatasetProfile) -> None:
    _PROFILES[profile.name] = profile


# ----------------------------------------------------------------------
# Paper-scale profiles (true class counts and resolutions).
# ----------------------------------------------------------------------
_register(DatasetProfile(
    name="cifar10",
    spec=SyntheticSpec(num_classes=10, image_size=32),
    train_per_class=5000, test_per_class=1000,
    target_label=0, target_label_name="airplane"))
_register(DatasetProfile(
    name="gtsrb",
    spec=SyntheticSpec(num_classes=43, image_size=32),
    train_per_class=915, test_per_class=293,
    target_label=0, target_label_name="Speed Limit (20km/h)"))
_register(DatasetProfile(
    name="cifar100",
    spec=SyntheticSpec(num_classes=100, image_size=32),
    train_per_class=500, test_per_class=100,
    target_label=0, target_label_name="apple"))
_register(DatasetProfile(
    name="tiny",
    spec=SyntheticSpec(num_classes=200, image_size=64),
    train_per_class=500, test_per_class=50,
    target_label=0, target_label_name="goldfish"))

# ----------------------------------------------------------------------
# Bench-scale profiles (CPU-budget experiments; relative difficulty kept).
# ----------------------------------------------------------------------
_register(DatasetProfile(
    name="cifar10-bench",
    spec=SyntheticSpec(num_classes=8, image_size=16),
    train_per_class=64, test_per_class=24,
    target_label=0, target_label_name="airplane"))
_register(DatasetProfile(
    name="gtsrb-bench",
    spec=SyntheticSpec(num_classes=12, image_size=16),
    train_per_class=44, test_per_class=16,
    target_label=0, target_label_name="Speed Limit (20km/h)"))
_register(DatasetProfile(
    name="cifar100-bench",
    spec=SyntheticSpec(num_classes=16, image_size=16),
    train_per_class=34, test_per_class=12,
    target_label=0, target_label_name="apple"))
_register(DatasetProfile(
    name="tiny-bench",
    spec=SyntheticSpec(num_classes=20, image_size=16),
    train_per_class=28, test_per_class=10,
    target_label=0, target_label_name="goldfish"))

# ----------------------------------------------------------------------
# Test-scale profile for the unit-test suite.
# ----------------------------------------------------------------------
_register(DatasetProfile(
    name="unit",
    spec=SyntheticSpec(num_classes=4, image_size=12, max_shift=1),
    train_per_class=24, test_per_class=8,
    target_label=0, target_label_name="class-0"))

PAPER_DATASETS: Tuple[str, ...] = ("cifar10", "gtsrb", "cifar100", "tiny")


def available_profiles() -> list:
    """Names accepted by :func:`get_profile`."""
    return sorted(_PROFILES)


def get_profile(name: str) -> DatasetProfile:
    """Look up a registered dataset profile."""
    if name not in _PROFILES:
        raise KeyError(f"unknown dataset profile {name!r}; "
                       f"choose from {available_profiles()}")
    return _PROFILES[name]


def bench_profile(paper_name: str) -> DatasetProfile:
    """The bench-scale counterpart of a paper dataset name."""
    return get_profile(f"{paper_name}-bench")


def load_dataset(name: str, seed: int = 0
                 ) -> Tuple[ArrayDataset, ArrayDataset, DatasetProfile]:
    """Generate the (train, test) pair for a profile with a run seed."""
    profile = get_profile(name)
    train = generate_dataset(profile.spec, profile.train_per_class,
                             seed=seed, split="train")
    test = generate_dataset(profile.spec, profile.test_per_class,
                            seed=seed, split="test")
    return train, test, profile
