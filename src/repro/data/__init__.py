"""``repro.data`` — synthetic stand-ins for the paper's four datasets.

See :mod:`repro.data.synthetic` for why procedural class-conditional
images preserve the paper's behaviour, and :mod:`repro.data.registry`
for the cifar10 / gtsrb / cifar100 / tiny profiles at paper and bench
scales.
"""

from .dataset import ArrayDataset, concat_datasets, reassign_ids
from .io import load_dataset_file, save_dataset
from .loader import DataLoader
from .registry import (PAPER_DATASETS, DatasetProfile, available_profiles,
                       bench_profile, get_profile, load_dataset)
from .synthetic import SyntheticSpec, class_prototype, generate_dataset
from .transforms import (Compose, gaussian_noise, normalize,
                         random_horizontal_flip, random_shift)

__all__ = [
    "ArrayDataset", "concat_datasets", "reassign_ids", "DataLoader",
    "DatasetProfile", "PAPER_DATASETS", "available_profiles",
    "bench_profile", "get_profile", "load_dataset",
    "SyntheticSpec", "class_prototype", "generate_dataset",
    "Compose", "random_horizontal_flip", "random_shift", "gaussian_noise",
    "normalize", "save_dataset", "load_dataset_file",
]
