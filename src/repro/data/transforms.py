"""Batch-level image transforms.

Operate on numpy batches ``(N, C, H, W)`` in [0, 1].  The training
harness applies augmentation per batch when enabled; the paper does not
specify augmentation so it defaults to off in all experiment configs.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

BatchTransform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Compose:
    """Apply transforms in sequence with a shared RNG."""

    def __init__(self, transforms: Sequence[BatchTransform], seed: int = 0):
        self.transforms = list(transforms)
        self._rng = np.random.default_rng(seed)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch, self._rng)
        return batch


def random_horizontal_flip(p: float = 0.5) -> BatchTransform:
    """Flip each image left-right with probability ``p``."""

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flips = rng.random(batch.shape[0]) < p
        out = batch.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out

    return apply


def random_shift(max_shift: int = 2) -> BatchTransform:
    """Random circular translation up to ``max_shift`` pixels per axis."""

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = np.empty_like(batch)
        shifts = rng.integers(-max_shift, max_shift + 1, size=(batch.shape[0], 2))
        for i in range(batch.shape[0]):
            out[i] = np.roll(batch[i], shift=tuple(shifts[i]), axis=(1, 2))
        return out

    return apply


def gaussian_noise(std: float = 0.02) -> BatchTransform:
    """Additive pixel noise, clipped back to [0, 1]."""

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noisy = batch + rng.normal(0.0, std, size=batch.shape).astype(batch.dtype)
        return np.clip(noisy, 0.0, 1.0)

    return apply


def normalize(mean: Sequence[float], std: Sequence[float]
              ) -> Tuple[Callable[[np.ndarray], np.ndarray],
                         Callable[[np.ndarray], np.ndarray]]:
    """Return (forward, inverse) channel normalizers."""
    mean_arr = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
    std_arr = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)
    if np.any(std_arr <= 0):
        raise ValueError("std must be positive")

    def forward(batch: np.ndarray) -> np.ndarray:
        return (batch - mean_arr) / std_arr

    def inverse(batch: np.ndarray) -> np.ndarray:
        return batch * std_arr + mean_arr

    return forward, inverse
