"""Procedural synthetic image datasets.

The paper evaluates on CIFAR10, GTSRB, CIFAR100 and Tiny-ImageNet, which
cannot be downloaded in this offline environment.  This module generates
*learnable* class-conditional image distributions that exercise the same
code paths: each class gets a structured prototype (low-frequency colour
field + geometric figures + oriented grating, all drawn from a
class-seeded RNG) and samples are prototype instances under random
translation, brightness/contrast jitter and pixel noise.

Why this substitution preserves the paper's behaviour: ReVeil's claims
concern *relative* dynamics — a trigger is a high-salience feature any
conv net learns quickly; camouflage samples inject conflicting labels on
near-identical inputs; unlearning removes that conflict.  None of this
depends on natural-image statistics, only on (a) a multi-class problem
the model can learn well above chance and (b) intra-class variation so
the trigger is the easiest shortcut.  The generator provides both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import ArrayDataset


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic class-conditional image distribution."""

    num_classes: int
    image_size: int = 16
    channels: int = 3
    noise_std: float = 0.18
    max_shift: int = 3
    brightness_jitter: float = 0.25
    contrast_jitter: float = 0.3
    occlusion_prob: float = 0.5
    occlusion_frac: float = 0.35

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.image_size < 8:
            raise ValueError("image_size must be >= 8")
        if self.channels not in (1, 3):
            raise ValueError("channels must be 1 or 3")


def _smooth_field(rng: np.random.Generator, channels: int, size: int,
                  coarse: int = 4) -> np.ndarray:
    """Low-frequency colour field: coarse noise upsampled bilinearly."""
    grid = rng.random((channels, coarse, coarse)).astype(np.float32)
    # Bilinear upsample via linear interpolation along each axis.
    xs = np.linspace(0, coarse - 1, size)
    x0 = np.floor(xs).astype(int)
    x1 = np.minimum(x0 + 1, coarse - 1)
    wx = (xs - x0).astype(np.float32)
    rows = grid[:, x0, :] * (1 - wx)[None, :, None] + grid[:, x1, :] * wx[None, :, None]
    cols = rows[:, :, x0] * (1 - wx)[None, None, :] + rows[:, :, x1] * wx[None, None, :]
    return cols


def _grating(rng: np.random.Generator, size: int) -> np.ndarray:
    """Oriented sinusoidal grating with class-random angle and frequency."""
    theta = rng.uniform(0, np.pi)
    freq = rng.uniform(1.5, 4.0)
    phase = rng.uniform(0, 2 * np.pi)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float32) / size
    wave = np.sin(2 * np.pi * freq * (np.cos(theta) * xx + np.sin(theta) * yy) + phase)
    return (0.5 + 0.5 * wave).astype(np.float32)


def _figure_mask(rng: np.random.Generator, size: int) -> np.ndarray:
    """A filled geometric figure (disc, ring, box or diamond) mask."""
    kind = rng.integers(0, 4)
    cy, cx = rng.uniform(0.3, 0.7, size=2) * size
    radius = rng.uniform(0.15, 0.3) * size
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float32)
    dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    if kind == 0:                               # disc
        mask = dist <= radius
    elif kind == 1:                             # ring
        mask = (dist <= radius) & (dist >= radius * 0.55)
    elif kind == 2:                             # axis-aligned box
        mask = (np.abs(yy - cy) <= radius) & (np.abs(xx - cx) <= radius)
    else:                                       # diamond (L1 ball)
        mask = (np.abs(yy - cy) + np.abs(xx - cx)) <= radius * 1.4
    return mask.astype(np.float32)


def class_prototype(spec: SyntheticSpec, class_id: int, seed: int) -> np.ndarray:
    """Deterministic prototype image for a class, in [0, 1].

    The prototype mixes a smooth colour field, an oriented grating and two
    geometric figures with class-random colours — enough structure that a
    small conv net separates classes, with distinct spatial support per
    class.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 7919, class_id]))
    size, ch = spec.image_size, spec.channels
    proto = 0.55 * _smooth_field(rng, ch, size)
    proto += 0.25 * _grating(rng, size)[None, :, :]
    for _ in range(2):
        mask = _figure_mask(rng, size)
        colour = rng.uniform(0.1, 0.9, size=(ch, 1, 1)).astype(np.float32)
        proto = proto * (1 - mask[None]) + (0.4 * proto + 0.6 * colour) * mask[None]
    return np.clip(proto, 0.0, 1.0).astype(np.float32)


def _render_samples(spec: SyntheticSpec, proto: np.ndarray, count: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Instance renderer: shift, brightness/contrast jitter, random
    occluder patch and pixel noise — the intra-class variation that keeps
    the classification task non-trivial."""
    size = spec.image_size
    out = np.empty((count,) + proto.shape, dtype=np.float32)
    shifts = rng.integers(-spec.max_shift, spec.max_shift + 1, size=(count, 2))
    brightness = 1.0 + rng.uniform(-spec.brightness_jitter,
                                   spec.brightness_jitter, size=count)
    contrast = 1.0 + rng.uniform(-spec.contrast_jitter,
                                 spec.contrast_jitter, size=count)
    noise = rng.normal(0.0, spec.noise_std, size=out.shape).astype(np.float32)
    occlude = rng.random(count) < spec.occlusion_prob
    max_occ = max(2, int(spec.occlusion_frac * size))
    for i in range(count):
        img = np.roll(proto, shift=tuple(shifts[i]), axis=(1, 2))
        img = (img - 0.5) * contrast[i] + 0.5
        img = img * brightness[i]
        if occlude[i]:
            oh = rng.integers(2, max_occ + 1)
            ow = rng.integers(2, max_occ + 1)
            top = rng.integers(0, size - oh + 1)
            left = rng.integers(0, size - ow + 1)
            img = img.copy()
            img[:, top:top + oh, left:left + ow] = rng.uniform(0.0, 1.0)
        out[i] = img
    out += noise
    return np.clip(out, 0.0, 1.0)


def generate_dataset(spec: SyntheticSpec, samples_per_class: int,
                     seed: int = 0, split: str = "train") -> ArrayDataset:
    """Generate a balanced dataset of ``samples_per_class`` per class.

    ``split`` only perturbs the instance RNG stream, so train and test
    share class prototypes (the i.i.d. assumption) but never share
    instances.
    """
    split_offset = {"train": 0, "test": 1, "extra": 2}
    if split not in split_offset:
        raise ValueError(f"unknown split {split!r}")
    images = []
    labels = []
    for c in range(spec.num_classes):
        proto = class_prototype(spec, c, seed)
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, 104729, c, split_offset[split]]))
        images.append(_render_samples(spec, proto, samples_per_class, rng))
        labels.append(np.full(samples_per_class, c, dtype=np.int64))
    data = ArrayDataset(np.concatenate(images), np.concatenate(labels))
    # Interleave classes so non-shuffled iteration is still balanced.
    mix = np.random.default_rng(np.random.SeedSequence([seed, 15485863]))
    return data.shuffled(mix)
