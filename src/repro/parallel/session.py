"""Long-lived worker sessions: persistent processes serving method calls.

:func:`~repro.parallel.pool.run_tasks` is built for *batch* fan-out —
ship a task, get a result, tear the pool down.  The serving data plane
needs the opposite shape: a handful of **persistent** worker processes
that hold warm state (folded model replicas, attached shared-memory
segments) across many calls.  :class:`WorkerSession` provides that: one
process running a handler object built from a picklable zero-arg
factory, executing ``(method, args)`` requests received over a pipe and
answering each with a picklable outcome envelope.

Contract
--------
- One request is in flight per session at a time (a lock serializes the
  parent side); concurrency comes from holding several sessions.
- Handler exceptions never kill the worker: they come back as a
  formatted traceback and re-raise in the parent as
  :class:`~repro.parallel.pool.WorkerError` — the same crash-locality
  story as the batch pool.
- A worker that dies abruptly (OOM kill, segfault) is detected by the
  next call, which raises :class:`WorkerError` instead of hanging on a
  pipe that will never answer.
- ``close()`` asks the handler loop to exit (running the handler's own
  ``close()`` if it has one), joins, and escalates to ``terminate()``
  only on timeout.  Sessions are daemonic, so a parent that forgets to
  close still exits.

Large arrays should travel through :mod:`repro.parallel.shm` channels,
not through the pipe — the pipe is for control messages and small
payloads (the serving backend ships model state dicts through it once
per version, and logits come back via shared memory).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from typing import Any, Callable, Optional

from ..obs import profile as _profile
from ..reliability import faults as _faults
from .pool import WorkerError, _Outcome, default_context

#: Sentinel method name asking the worker loop to exit cleanly.
_SHUTDOWN = "__shutdown__"


def _session_main(factory: Callable[[], Any], conn) -> None:
    """Worker entry point: build the handler, answer calls until told not to."""
    # A Ctrl-C in the parent's terminal hits the whole foreground process
    # group, including these workers.  Shutdown is the *parent's* job
    # (it drains in-flight batches first, then sends the shutdown
    # sentinel); a worker that dies mid-KeyboardInterrupt would strand
    # those batches and spray tracebacks over the operator's console.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    handler = None
    build_error: Optional[_Outcome] = None
    try:
        handler = factory()
    except Exception:
        import traceback
        build_error = _Outcome(ok=False, error_type="HandlerBuildError",
                               traceback=traceback.format_exc())
    parent_pid = os.getppid()
    orphaned = False
    while True:
        try:
            if not conn.poll(1.0):
                # Daemonic workers are only reaped when the parent exits
                # *normally*; a SIGKILLed parent runs no atexit, and
                # fork-inherited copies of this pipe's ends (in sibling
                # workers spawned later) keep EOF from ever firing — so
                # watch for the orphan reparenting too.
                if os.getppid() != parent_pid:
                    orphaned = True
                    break
                continue
            method, args = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if method == _SHUTDOWN:
            conn.send(_Outcome(ok=True, value=os.getpid()))
            break
        if build_error is not None:
            conn.send(build_error)
            continue
        try:
            value = getattr(handler, method)(*args)
            outcome = _Outcome(ok=True, value=value)
        except Exception as exc:
            import traceback
            outcome = _Outcome(ok=False, error_type=type(exc).__name__,
                               traceback=traceback.format_exc())
        # Drain the handler's metric delta into the reply envelope: the
        # parent merges it into its worker registry, so worker counters
        # ship back piggybacked instead of via a separate scrape call.
        registry = getattr(handler, "obs_registry", None)
        if registry is not None:
            try:
                delta = registry.drain()
                if delta:
                    outcome.obs = delta
            except Exception:
                pass
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            break
    # On the orphan path the parent can never run its cleanup, so the
    # handler gets a chance at a stronger teardown (e.g. unlinking the
    # shared-memory lanes the dead parent created for this worker).
    closer = getattr(handler, "close_orphaned", None) if orphaned else None
    if not callable(closer):
        closer = getattr(handler, "close", None)
    if callable(closer):
        try:
            closer()
        except Exception:
            pass
    try:
        conn.close()
    except OSError:
        pass


class WorkerSession:
    """One persistent worker process executing handler method calls.

    Parameters
    ----------
    factory:
        Picklable zero-arg callable building the worker-side handler
        (e.g. ``functools.partial(ReplicaWorker, intra_op_threads=1)``).
        Built once, at process start; its state persists across calls.
    context:
        multiprocessing start method (default:
        :func:`~repro.parallel.pool.default_context`).
    name:
        Process name (shows up in ``ps`` and crash reports).
    """

    def __init__(self, factory: Callable[[], Any],
                 context: Optional[str] = None,
                 name: str = "repro-worker-session"):
        ctx = mp.get_context(context or default_context())
        parent_conn, child_conn = ctx.Pipe()
        self.name = name
        self._factory = factory
        self._context = context
        self._proc = ctx.Process(target=_session_main,
                                 args=(factory, child_conn),
                                 name=name, daemon=True)
        self._proc.start()
        child_conn.close()
        self._conn = parent_conn
        self._lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._closed = False
        self._poisoned = False
        self.calls = 0
        #: Optional :class:`repro.obs.metrics.Registry` the parent sets;
        #: worker-side metric deltas riding reply envelopes merge here.
        self.obs_sink = None

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid

    @property
    def alive(self) -> bool:
        return self._proc.is_alive()

    @property
    def poisoned(self) -> bool:
        """True once a call timed out: the pipe may hold a stale reply.

        A timed-out round-trip desynchronizes the request/reply stream —
        the worker's (late) answer would be read as the reply to the
        *next* call.  A poisoned session refuses further calls; the
        owner must :meth:`kill` + :meth:`respawn` it.
        """
        return self._poisoned

    def call(self, method: str, *args: Any,
             timeout: Optional[float] = None) -> Any:
        """Invoke ``handler.<method>(*args)`` in the worker; block for the
        result.  Raises :class:`WorkerError` on handler exceptions and on
        a dead worker, ``TimeoutError`` past ``timeout`` seconds."""
        with self._lock:
            if self._closed:
                raise RuntimeError(f"session {self.name!r} is closed")
            if self._poisoned:
                raise WorkerError(
                    f"{self.name}:{method}", "StalledWorker",
                    f"session {self.name!r} timed out on an earlier call; "
                    f"the pipe may hold a stale reply — respawn the worker")
            fault = None
            if _faults.ACTIVE is not None:
                fault = _faults.ACTIVE.check(f"session.call:{self.name}")
            if fault is not None and fault.kind == "crash":
                # Emulate a worker the OS killed between calls.
                if self._proc.is_alive():
                    self._proc.kill()
                self._proc.join(timeout=5.0)
            try:
                if fault is not None and fault.kind == "send_error":
                    raise BrokenPipeError("injected: request pipe write failed")
                self._conn.send((method, args))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerError(
                    f"{self.name}:{method}", "BrokenWorker",
                    f"worker process (pid {self.pid}) is gone: {exc}") from exc
            if fault is not None and fault.kind == "crash_mid":
                # Emulate a worker dying mid-batch: request delivered,
                # reply never comes.  A tiny forward can win the race
                # and reply before the SIGKILL lands — drop anything in
                # the pipe so the injected outcome stays deterministic.
                if self._proc.is_alive():
                    self._proc.kill()
                self._proc.join(timeout=5.0)
                try:
                    while self._conn.poll(0):
                        self._conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerError(
                    f"{self.name}:{method}", "BrokenWorker",
                    f"worker process (pid {self.pid}) died before replying "
                    f"(injected crash mid-call)")
            if fault is not None and fault.kind == "stall":
                # The request *was* sent, so the worker's eventual reply
                # goes stale in the pipe — exactly what a real deadline
                # overrun leaves behind.
                self._poisoned = True
                raise TimeoutError(
                    f"session {self.name!r} call {method!r} injected stall "
                    f"past deadline")
            _prof = _profile.ACTIVE
            prof_token = (_prof.start("session.call")
                          if _prof is not None else None)
            try:
                outcome = self._recv(method, timeout)
            except TimeoutError:
                self._poisoned = True
                raise
            finally:
                if _prof is not None:
                    _prof.stop(prof_token)
            self.calls += 1
            obs = getattr(outcome, "obs", None)
            if obs and self.obs_sink is not None:
                try:
                    self.obs_sink.merge(obs)
                except ValueError:
                    pass    # bounds drift across versions: drop, don't raise
        if not outcome.ok:
            raise WorkerError(f"{self.name}:{method}", outcome.error_type,
                              outcome.traceback)
        return outcome.value

    def _recv(self, method: str, timeout: Optional[float]) -> _Outcome:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._conn.poll(0.05):
            if not self._proc.is_alive():
                raise WorkerError(
                    f"{self.name}:{method}", "BrokenWorker",
                    f"worker process (pid {self.pid}) died before replying "
                    f"(exitcode {self._proc.exitcode}) — killed by the OS? "
                    f"out of memory?")
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"session {self.name!r} call {method!r} timed out "
                    f"after {timeout:g}s")
        try:
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(
                f"{self.name}:{method}", "BrokenWorker",
                f"worker pipe closed mid-reply: {exc}") from exc

    def kill(self, timeout: float = 5.0) -> None:
        """SIGKILL the worker process; the session object stays open.

        Supervision uses this to put a poisoned session (timed-out call
        — the pipe may hold a stale reply) into the same state as a
        crashed worker before :meth:`respawn`.  Safe on a dead worker.
        """
        if self._proc.is_alive():
            self._proc.kill()
        self._proc.join(timeout=timeout)

    def respawn(self, timeout: float = 10.0) -> "WorkerSession":
        """A fresh session running the same factory under the same name.

        Recovery path for a worker that died mid-call (OOM kill,
        segfault): close out this session's remains and hand back a
        replacement process.  The replacement starts *empty* — the
        handler is rebuilt from the factory, so any warm state shipped
        to the dead worker (model replicas, channel attachments) must be
        re-shipped by the caller.
        """
        self.close(timeout=timeout)
        fresh = WorkerSession(self._factory, context=self._context,
                              name=self.name)
        fresh.obs_sink = self.obs_sink
        return fresh

    def close(self, timeout: float = 10.0) -> None:
        """Stop the worker (graceful, then ``terminate()``).  Idempotent.

        Bounded: an in-flight :meth:`call` gets ``timeout`` seconds to
        finish naturally; past that the worker process is terminated,
        which makes the stuck call raise :class:`WorkerError` promptly —
        close never waits out a wedged call's own (much longer)
        ``call_timeout``.
        """
        if self._closed:
            return
        # Concurrent closers serialize here (atexit racing a pool
        # shutdown, say).  Without this, a second closer would mistake
        # the first one's hold on ``_lock`` for a wedged in-flight call
        # and terminate a worker that is shutting down gracefully.
        with self._close_lock:
            if self._closed:
                return      # another close() finished while we waited
            wedged = not self._lock.acquire(timeout=timeout)
            if wedged:
                # A wedged in-flight call holds the lock.  Kill the
                # worker: the caller's poll loop sees the dead process,
                # errors out, and releases the lock within one poll
                # interval.
                self._closed = True
                if self._proc.is_alive():
                    self._proc.terminate()
                self._lock.acquire()
            try:
                self._closed = True
                if not wedged and not self._poisoned \
                        and self._proc.is_alive():
                    try:
                        self._conn.send((_SHUTDOWN, ()))
                        deadline = time.monotonic() + timeout
                        while (not self._conn.poll(0.05)
                               and time.monotonic() < deadline
                               and self._proc.is_alive()):
                            pass
                        if self._conn.poll(0):
                            self._conn.recv()
                    except (BrokenPipeError, EOFError, OSError):
                        pass
                elif self._poisoned and self._proc.is_alive():
                    # The pipe is desynchronized; a graceful handshake
                    # would read the stale reply as the shutdown ack.
                    self._proc.terminate()
                self._proc.join(timeout=timeout)
                if self._proc.is_alive():
                    self._proc.terminate()
                    self._proc.join(timeout=timeout)
                try:
                    self._conn.close()
                except OSError:
                    pass
            finally:
                self._lock.release()

    def __enter__(self) -> "WorkerSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
