"""Zero-copy dataset handoff via ``multiprocessing.shared_memory``.

The parent publishes an :class:`~repro.data.dataset.ArrayDataset` into
three named shared-memory segments (images / labels / sample_ids) and
ships only a tiny picklable :class:`SharedDatasetHandle` to workers.
Workers attach by name, view the arrays read-only, copy out the rows
they need, and close their mapping.  Ownership is strictly one-sided:

- the **parent** creates the segments and is the only party that may
  ``unlink`` them (always via context manager / ``finally``);
- **workers** only ever ``close`` their attachment.

This keeps the big training arrays out of the task pickle stream
entirely — a task spec costs bytes, not gigabytes.
"""

from __future__ import annotations

import errno
import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.dataset import ArrayDataset
from ..reliability import faults as _faults


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Allocate a fresh shared-memory segment (single creation choke point).

    Every owner-side allocation funnels through here so the fault site
    ``shm.create`` can make any one of them fail as if ``/dev/shm`` were
    exhausted — the error real fleets hit when state lanes outgrow the
    tmpfs — and so callers exercise their documented fallbacks (pipe
    transport, lane-less returns) under test instead of only in outages.
    """
    if _faults.ACTIVE is not None:
        fault = _faults.ACTIVE.check("shm.create")
        if fault is not None and fault.kind == "oserror":
            raise OSError(errno.ENOSPC,
                          "injected: no space left on /dev/shm")
    return shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)))


@dataclass(frozen=True)
class _ArraySpec:
    """Where one array lives: segment name + layout to rebuild a view."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


def _publish_array(array: np.ndarray) -> Tuple[shared_memory.SharedMemory,
                                               _ArraySpec]:
    array = np.ascontiguousarray(array)
    seg = _create_segment(array.nbytes)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
    view[...] = array
    return seg, _ArraySpec(name=seg.name, shape=tuple(array.shape),
                           dtype=str(array.dtype))


def _attach_array(spec: _ArraySpec) -> Tuple[shared_memory.SharedMemory,
                                             np.ndarray]:
    seg = _attach_untracked(spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)
    view.flags.writeable = False
    return seg, view


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Picklable descriptor of a dataset published in shared memory."""

    images: _ArraySpec
    labels: _ArraySpec
    sample_ids: _ArraySpec

    def open(self) -> "AttachedDataset":
        """Attach (worker side); caller must ``close()`` when done."""
        return AttachedDataset(self)


class AttachedDataset:
    """A worker's read-only mapping of a published dataset.

    ``.dataset`` views the shared buffers directly (zero-copy); slice or
    fancy-index it to copy out the rows a task trains on, then
    ``close()`` — the views die with the mapping.
    """

    def __init__(self, handle: SharedDatasetHandle):
        self._segments = []
        arrays = []
        try:
            for spec in (handle.images, handle.labels, handle.sample_ids):
                seg, view = _attach_array(spec)
                self._segments.append(seg)
                arrays.append(view)
        except Exception:
            self.close()
            raise
        self.dataset = ArrayDataset.__new__(ArrayDataset)
        # Bypass __init__: it would re-coerce dtypes (copying) and these
        # views are already validated at publish time.
        self.dataset.images, self.dataset.labels, self.dataset.sample_ids = arrays

    def close(self) -> None:
        """Drop this process's mapping (never unlinks the segments)."""
        for seg in self._segments:
            try:
                seg.close()
            except OSError:
                pass
        self._segments = []

    def __enter__(self) -> ArrayDataset:
        return self.dataset

    def __exit__(self, *exc) -> None:
        self.close()


class SharedDataset:
    """Parent-side lease on a published dataset.

    Use as a context manager (or call :meth:`unlink` in ``finally``):
    the segments are freed exactly once, even when the protected block
    raises.
    """

    def __init__(self, segments, handle: SharedDatasetHandle):
        self._segments = segments
        self.handle = handle

    @classmethod
    def publish(cls, dataset: ArrayDataset) -> "SharedDataset":
        """Copy a dataset into fresh shared-memory segments."""
        segments = []
        specs = []
        try:
            for array in (dataset.images, dataset.labels, dataset.sample_ids):
                seg, spec = _publish_array(array)
                segments.append(seg)
                specs.append(spec)
        except Exception:
            for seg in segments:
                try:
                    seg.close()
                except OSError:
                    pass
                try:
                    seg.unlink()
                except (FileNotFoundError, OSError):
                    pass
            raise
        return cls(segments, SharedDatasetHandle(*specs))

    def unlink(self) -> None:
        """Close the parent mapping and free the segments (idempotent)."""
        for seg in self._segments:
            try:
                seg.close()
            except OSError:
                pass
            try:
                seg.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._segments = []

    def __enter__(self) -> SharedDatasetHandle:
        return self.handle

    def __exit__(self, *exc) -> None:
        self.unlink()


@contextmanager
def share_dataset(dataset: ArrayDataset) -> Iterator[SharedDatasetHandle]:
    """Publish ``dataset`` for the duration of a ``with`` block."""
    lease = SharedDataset.publish(dataset)
    try:
        yield lease.handle
    finally:
        lease.unlink()


# ---------------------------------------------------------------------------
# Reusable array channels — the shared-memory *return* path.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArraySlot:
    """Picklable descriptor of one array parked in a channel's segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


class ArrayChannel:
    """Parent-owned, growable shared-memory lane for array handoff.

    The dataset handles above publish *immutable* arrays once; a serving
    data plane instead needs a reusable lane per worker — request inputs
    go out through one channel and logits come back through another,
    with only tiny :class:`ArraySlot` descriptors (segment name + shape
    + dtype) crossing the pipe.  One channel is single-flight by
    construction: the serving backend leases a worker, writes, calls,
    reads, and only then releases the lease, so a segment is never
    written while the other side still reads it.

    Ownership follows the module contract: the creating process is the
    only one that may :meth:`unlink`; peers attach by name and only
    ever ``close`` their mapping (:class:`ChannelPeer` caches those
    attachments across calls and drops stale ones as the channel
    grows).  Growth allocates a *fresh* segment (new name) and unlinks
    the old — readers still mapping the old name keep a valid view
    until they close it, so resizing can never corrupt an in-flight
    reply.
    """

    def __init__(self, nbytes: int = 0):
        self._segment: Optional[shared_memory.SharedMemory] = None
        if nbytes > 0:
            self._segment = _create_segment(nbytes)

    @property
    def capacity(self) -> int:
        return self._segment.size if self._segment is not None else 0

    @property
    def name(self) -> Optional[str]:
        return self._segment.name if self._segment is not None else None

    def ensure(self, nbytes: int) -> None:
        """Grow (never shrink) capacity to at least ``nbytes``."""
        if nbytes <= self.capacity:
            return
        old = self._segment
        self._segment = _create_segment(nbytes)
        if old is not None:
            try:
                old.close()
            except OSError:
                pass
            try:
                old.unlink()
            except (FileNotFoundError, OSError):
                pass

    def write(self, array: np.ndarray) -> ArraySlot:
        """Park ``array`` at offset 0; returns the slot a peer reads."""
        array = np.ascontiguousarray(array)
        self.ensure(array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype,
                          buffer=self._segment.buf)
        view[...] = array
        return ArraySlot(name=self._segment.name, shape=tuple(array.shape),
                         dtype=str(array.dtype))

    def read(self, slot: ArraySlot) -> np.ndarray:
        """Copy out an array a peer parked in *this* channel's segment."""
        if self._segment is None or slot.name != self._segment.name:
            raise ValueError(
                f"slot names segment {slot.name!r} but this channel owns "
                f"{self.name!r} — was the channel resized mid-flight?")
        view = np.ndarray(slot.shape, dtype=np.dtype(slot.dtype),
                          buffer=self._segment.buf)
        return np.array(view)  # copy: the segment is reused next call

    def unlink(self) -> None:
        """Free the segment (idempotent; owner side only).

        Cleanup boundary: double-close and atexit races surface as
        ``FileNotFoundError``/``EBADF`` here and are swallowed — the
        segment is gone either way.  Hot-path reads and writes never
        mask those errors.
        """
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        except OSError:
            pass
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without resource-tracker registration.

    Python < 3.13 registers every ``SharedMemory(name=...)`` attach with
    a resource tracker, which "cleans up" (unlinks!) the segment when
    the attaching process exits — destroying a parent-owned segment the
    parent may still be using (and, when the tracker is shared across a
    fork, corrupting the parent's own registration).  Ownership here is
    strictly one-sided: attaching peers only ever ``close``, so the
    attach must not be tracked at all.  Python 3.13+ spells that
    ``track=False``; for older interpreters the registration hook is
    stubbed out for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:        # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


# ---------------------------------------------------------------------------
# State-dict transport — whole model states through shared memory.
# ---------------------------------------------------------------------------

#: Array offsets inside a state segment are rounded up to this boundary
#: so every view handed to numpy is safely aligned for any dtype.
_STATE_ALIGN = 64


class StateVerifyError(RuntimeError):
    """A state payload's content fingerprint failed verification.

    Transport-level corruption (torn write, segment reuse mid-flight,
    an injected ``corrupt_fingerprint`` fault) — as opposed to the
    registration-drift fingerprint mismatch ``folded_replica`` raises.
    The distinction matters for recovery: a transport failure is fixed
    by re-shipping the same state, a drift failure never is.
    """


class StateCapacityError(RuntimeError):
    """A state payload does not fit the target segment.

    Raised on the *writer* side before a single byte moves, carrying
    ``needed_bytes`` so the reader can resize (owner) or fall back to
    the pipe (peer).
    """

    def __init__(self, needed_bytes: int, capacity: int):
        self.needed_bytes = needed_bytes
        self.capacity = capacity
        super().__init__(
            f"state payload of {needed_bytes} bytes exceeds segment "
            f"capacity {capacity}")


@dataclass(frozen=True)
class StateEntry:
    """Layout of one named array inside a packed state payload."""

    key: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int


@dataclass(frozen=True)
class StateSlot:
    """Picklable descriptor of one whole state dict parked in a segment.

    Carries everything needed to rebuild the dict bit-for-bit — entry
    names in their original order, per-array shape/dtype/offset, and a
    content fingerprint the reader re-verifies — while the arrays
    themselves never touch the pipe.
    """

    name: str                       # segment holding the payload
    entries: Tuple[StateEntry, ...]
    nbytes: int                     # payload end offset within the segment
    fingerprint: str

    @property
    def num_arrays(self) -> int:
        return len(self.entries)


def _align(offset: int) -> int:
    return (offset + _STATE_ALIGN - 1) // _STATE_ALIGN * _STATE_ALIGN


def state_fingerprint(state: Dict[str, np.ndarray]) -> str:
    """Content digest of a state dict (names + raw bytes, sorted order).

    Matches byte-for-byte equality: two states with equal fingerprints
    rebuild bit-identical models.  Sorted iteration makes the digest
    independent of dict insertion order.
    """
    digest = hashlib.sha1()
    for key in sorted(state):
        digest.update(key.encode())
        digest.update(np.ascontiguousarray(state[key]).tobytes())
    return digest.hexdigest()


def packed_nbytes(state: Dict[str, np.ndarray], base: int = 0) -> int:
    """Bytes one state dict occupies when packed at ``base`` (aligned)."""
    offset = _align(base)
    for value in state.values():
        offset = _align(offset) + np.asarray(value).nbytes
    return offset - base


def _pack_state(buf, state: Dict[str, np.ndarray], base: int,
                segment_name: str) -> StateSlot:
    """Copy every array of ``state`` into ``buf`` starting at ``base``."""
    entries = []
    offset = _align(base)
    for key, value in state.items():
        # Not ascontiguousarray: that would promote 0-d arrays to 1-d
        # and the unpacked dict must restore the exact original shapes.
        array = np.asarray(value)
        if not array.flags.c_contiguous:
            array = array.copy(order="C")
        offset = _align(offset)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=buf,
                          offset=offset)
        view[...] = array
        entries.append(StateEntry(key=key, shape=tuple(array.shape),
                                  dtype=str(array.dtype), offset=offset))
        offset += array.nbytes
    return StateSlot(name=segment_name, entries=tuple(entries),
                     nbytes=offset, fingerprint=state_fingerprint(state))


def _unpack_state(buf, slot: StateSlot,
                  verify: bool = True) -> Dict[str, np.ndarray]:
    """Copy a packed state dict back out of ``buf`` (order-preserving)."""
    state: Dict[str, np.ndarray] = {}
    for entry in slot.entries:
        view = np.ndarray(entry.shape, dtype=np.dtype(entry.dtype),
                          buffer=buf, offset=entry.offset)
        state[entry.key] = np.array(view)   # copy: segments get reused
    if verify:
        actual = state_fingerprint(state)
        if actual != slot.fingerprint:
            raise StateVerifyError(
                f"state payload in segment {slot.name!r} hashes to "
                f"{actual[:12]}, expected {slot.fingerprint[:12]} — torn "
                f"write or segment reuse mid-flight?")
    return state


def _pack_states_into(segment: shared_memory.SharedMemory,
                      states: Sequence[Dict[str, np.ndarray]],
                      ) -> Tuple[StateSlot, ...]:
    """Pack several state dicts back-to-back; raise before writing if
    the segment is too small for the whole payload."""
    needed = 0
    for state in states:
        needed += packed_nbytes(state, base=needed)
    if needed > segment.size:
        raise StateCapacityError(needed, segment.size)
    slots = []
    base = 0
    for state in states:
        slot = _pack_state(segment.buf, state, base, segment.name)
        slots.append(slot)
        base = slot.nbytes
    return tuple(slots)


class StateChannel(ArrayChannel):
    """Growable shared-memory lane for whole state dicts.

    The state-transport counterpart of :class:`ArrayChannel`: the same
    owner-creates / peer-attaches / grow-by-rename lifecycle, but the
    payload is a full ``state_dict`` (every parameter and buffer of a
    model) packed back-to-back with a verified content fingerprint.
    Both data planes ride this one class:

    - **serving** (owner writes, peer reads): the parent parks a model
      version's state once and every worker process copies it out to
      build its replica — the state crosses the pipe as a tiny
      :class:`StateSlot`, never as pickled arrays;
    - **training** (peer writes, owner reads): the parent pre-sizes one
      lane per shard task, the pool worker packs its trained states into
      it (:func:`write_states_to`), and the parent reassembles the
      ensemble from the slots.

    Single-flight per lane, like the array channels: the caller
    sequences writes and reads so a segment is never overwritten while
    the other side still reads it.
    """

    def write_state(self, state: Dict[str, np.ndarray]) -> StateSlot:
        """Pack one state dict at offset 0, growing the lane to fit."""
        return self.write_states([state])[0]

    def write_states(self, states: Sequence[Dict[str, np.ndarray]],
                     ) -> Tuple[StateSlot, ...]:
        """Pack several state dicts back-to-back, growing the lane to fit."""
        needed = 0
        for state in states:
            needed += packed_nbytes(state, base=needed)
        self.ensure(needed)
        slots = _pack_states_into(self._segment, states)
        if _faults.ACTIVE is not None:
            fault = _faults.ACTIVE.check("state.write")
            if fault is not None and fault.kind == "corrupt_fingerprint":
                # Advertise a wrong content hash: the reader's verify
                # must catch it (StateVerifyError), as it would a torn
                # write racing a segment reuse.
                slots = tuple(replace(slot, fingerprint="0" * 40)
                              for slot in slots)
        return slots

    def read_state(self, slot: StateSlot,
                   verify: bool = True) -> Dict[str, np.ndarray]:
        """Copy out a state dict a peer packed into *this* lane."""
        if self._segment is None or slot.name != self._segment.name:
            raise ValueError(
                f"slot names segment {slot.name!r} but this channel owns "
                f"{self.name!r} — was the channel resized mid-flight?")
        return _unpack_state(self._segment.buf, slot, verify=verify)

    def read_states(self, slots: Sequence[StateSlot],
                    verify: bool = True) -> List[Dict[str, np.ndarray]]:
        return [self.read_state(slot, verify=verify) for slot in slots]


def write_states_to(name: str, states: Sequence[Dict[str, np.ndarray]],
                    ) -> Tuple[StateSlot, ...]:
    """One-shot peer-side state write into a named (owner-held) segment.

    Built for pool workers, which live for one task: attach untracked,
    pack, close the mapping — never unlink.  Raises
    :class:`StateCapacityError` (payload too big, nothing written) or
    ``FileNotFoundError`` (owner already unlinked); callers fall back to
    returning states through the pipe on either.
    """
    segment = _attach_untracked(name)
    try:
        return _pack_states_into(segment, states)
    finally:
        try:
            segment.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Leak accounting — shared-memory segments visible to this machine.
# ---------------------------------------------------------------------------

#: Prefixes the stdlib uses for POSIX shared memory segment names.
_SHM_PREFIXES = ("psm_", "wnsm_")


def shm_segment_names() -> Optional[Set[str]]:
    """Names of live POSIX shm segments, or ``None`` where unobservable.

    Linux exposes segments as files under ``/dev/shm``; other platforms
    return ``None`` and leak checks silently skip.  Only stdlib-created
    names (``psm_``/``wnsm_`` prefixes) are reported so unrelated system
    segments never pollute a leak diff.
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return None
    try:
        return {entry.name for entry in root.iterdir()
                if entry.name.startswith(_SHM_PREFIXES)}
    except OSError:
        return None


def leaked_segments(before: Optional[Set[str]]) -> List[str]:
    """Segments alive now that were not alive at snapshot time.

    Usage: ``before = shm_segment_names()`` … run the workload, close
    everything … ``assert not leaked_segments(before)``.  Returns ``[]``
    when the platform cannot observe segments.
    """
    if before is None:
        return []
    now = shm_segment_names()
    if now is None:
        return []
    return sorted(now - before)


class ChannelPeer:
    """Worker-side attachment cache for :class:`ArrayChannel` segments.

    Channels grow by renaming, so a long-lived worker sees a small,
    slowly-changing set of segment names.  The cache keeps the most
    recent attachments open (attach once, reuse every call) and closes
    the eldest beyond ``capacity`` — closed-but-unlinked segments stay
    valid for any reader still mapping them, so eviction is safe.
    """

    def __init__(self, capacity: int = 8):
        self.capacity = max(1, capacity)
        self._segments: "dict[str, shared_memory.SharedMemory]" = {}

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        segment = self._segments.get(name)
        if segment is None:
            segment = _attach_untracked(name)
            self._segments[name] = segment
            while len(self._segments) > self.capacity:
                stale_name = next(iter(self._segments))
                stale = self._segments.pop(stale_name)
                try:
                    stale.close()
                except OSError:
                    pass
        return segment

    def read(self, slot: ArraySlot) -> np.ndarray:
        """Copy an array out of the named segment."""
        segment = self._attach(slot.name)
        view = np.ndarray(slot.shape, dtype=np.dtype(slot.dtype),
                          buffer=segment.buf)
        return np.array(view)

    def write(self, name: str, array: np.ndarray) -> ArraySlot:
        """Park ``array`` at offset 0 of the named segment."""
        array = np.ascontiguousarray(array)
        segment = self._attach(name)
        if array.nbytes > segment.size:
            raise ValueError(
                f"array of {array.nbytes} bytes exceeds segment "
                f"{name!r} capacity {segment.size}")
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return ArraySlot(name=name, shape=tuple(array.shape),
                         dtype=str(array.dtype))

    def read_state(self, slot: StateSlot,
                   verify: bool = True) -> Dict[str, np.ndarray]:
        """Copy a whole state dict out of the named segment (verified)."""
        segment = self._attach(slot.name)
        return _unpack_state(segment.buf, slot, verify=verify)

    def close(self) -> None:
        """Drop every attachment (never unlinks)."""
        for segment in self._segments.values():
            try:
                segment.close()
            except OSError:
                pass
        self._segments = {}

    def unlink_all(self) -> None:
        """Unlink every cached attachment — orphan recovery only.

        Segment lifecycle belongs to the creating (parent) process; a
        worker orphaned by a SIGKILLed parent is the last process
        standing, so the unlink duty falls to it.  Sibling orphans may
        race over a shared segment — losing that race is ENOENT, which
        is fine.
        """
        for segment in self._segments.values():
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass
            try:
                segment.close()
            except OSError:
                pass
        self._segments = {}
