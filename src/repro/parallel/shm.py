"""Zero-copy dataset handoff via ``multiprocessing.shared_memory``.

The parent publishes an :class:`~repro.data.dataset.ArrayDataset` into
three named shared-memory segments (images / labels / sample_ids) and
ships only a tiny picklable :class:`SharedDatasetHandle` to workers.
Workers attach by name, view the arrays read-only, copy out the rows
they need, and close their mapping.  Ownership is strictly one-sided:

- the **parent** creates the segments and is the only party that may
  ``unlink`` them (always via context manager / ``finally``);
- **workers** only ever ``close`` their attachment.

This keeps the big training arrays out of the task pickle stream
entirely — a task spec costs bytes, not gigabytes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator, Tuple

import numpy as np

from ..data.dataset import ArrayDataset


@dataclass(frozen=True)
class _ArraySpec:
    """Where one array lives: segment name + layout to rebuild a view."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


def _publish_array(array: np.ndarray) -> Tuple[shared_memory.SharedMemory,
                                               _ArraySpec]:
    array = np.ascontiguousarray(array)
    seg = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
    view[...] = array
    return seg, _ArraySpec(name=seg.name, shape=tuple(array.shape),
                           dtype=str(array.dtype))


def _attach_array(spec: _ArraySpec) -> Tuple[shared_memory.SharedMemory,
                                             np.ndarray]:
    seg = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)
    view.flags.writeable = False
    return seg, view


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Picklable descriptor of a dataset published in shared memory."""

    images: _ArraySpec
    labels: _ArraySpec
    sample_ids: _ArraySpec

    def open(self) -> "AttachedDataset":
        """Attach (worker side); caller must ``close()`` when done."""
        return AttachedDataset(self)


class AttachedDataset:
    """A worker's read-only mapping of a published dataset.

    ``.dataset`` views the shared buffers directly (zero-copy); slice or
    fancy-index it to copy out the rows a task trains on, then
    ``close()`` — the views die with the mapping.
    """

    def __init__(self, handle: SharedDatasetHandle):
        self._segments = []
        arrays = []
        try:
            for spec in (handle.images, handle.labels, handle.sample_ids):
                seg, view = _attach_array(spec)
                self._segments.append(seg)
                arrays.append(view)
        except Exception:
            self.close()
            raise
        self.dataset = ArrayDataset.__new__(ArrayDataset)
        # Bypass __init__: it would re-coerce dtypes (copying) and these
        # views are already validated at publish time.
        self.dataset.images, self.dataset.labels, self.dataset.sample_ids = arrays

    def close(self) -> None:
        """Drop this process's mapping (never unlinks the segments)."""
        for seg in self._segments:
            try:
                seg.close()
            except OSError:
                pass
        self._segments = []

    def __enter__(self) -> ArrayDataset:
        return self.dataset

    def __exit__(self, *exc) -> None:
        self.close()


class SharedDataset:
    """Parent-side lease on a published dataset.

    Use as a context manager (or call :meth:`unlink` in ``finally``):
    the segments are freed exactly once, even when the protected block
    raises.
    """

    def __init__(self, segments, handle: SharedDatasetHandle):
        self._segments = segments
        self.handle = handle

    @classmethod
    def publish(cls, dataset: ArrayDataset) -> "SharedDataset":
        """Copy a dataset into fresh shared-memory segments."""
        segments = []
        specs = []
        try:
            for array in (dataset.images, dataset.labels, dataset.sample_ids):
                seg, spec = _publish_array(array)
                segments.append(seg)
                specs.append(spec)
        except Exception:
            for seg in segments:
                seg.close()
                seg.unlink()
            raise
        return cls(segments, SharedDatasetHandle(*specs))

    def unlink(self) -> None:
        """Close the parent mapping and free the segments (idempotent)."""
        for seg in self._segments:
            try:
                seg.close()
            except OSError:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments = []

    def __enter__(self) -> SharedDatasetHandle:
        return self.handle

    def __exit__(self, *exc) -> None:
        self.unlink()


@contextmanager
def share_dataset(dataset: ArrayDataset) -> Iterator[SharedDatasetHandle]:
    """Publish ``dataset`` for the duration of a ``with`` block."""
    lease = SharedDataset.publish(dataset)
    try:
        yield lease.handle
    finally:
        lease.unlink()
