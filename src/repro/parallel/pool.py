"""Deterministic process-pool executor.

:func:`run_tasks` maps a list of task objects (anything with a
zero-arg ``run()`` method) over a pool of worker processes and returns
their results **in task order**.  ``workers<=1`` (or a single task)
runs the identical task objects inline in the calling process, which is
both the fallback path and the reference the parallel path must match
bit-for-bit.

Failures inside a worker are captured with their full formatted
traceback and re-raised in the parent as :class:`WorkerError`, so a
crash three processes away still reads like a local stack trace.

Results that are mostly *arrays* (trained state dicts) should not
travel back through the result pickle at all: provision per-task
shared-memory return lanes with :func:`state_return_lanes` and let each
task park its states there (:mod:`repro.parallel.shm`).  Ownership
stays strictly one-sided — the parent creates and unlinks every lane
exactly once, workers only attach-untracked and close — so a worker
that crashes mid-write can neither leak a segment nor unlink one the
parent still owns.
"""

from __future__ import annotations

import errno
import multiprocessing as mp
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Sequence

from ..nn.threading import available_cpu_count
from ..reliability import faults as _faults
from .shm import StateChannel


class WorkerError(RuntimeError):
    """A task raised inside a worker process.

    Carries the original exception type name and the worker-side
    formatted traceback (``worker_traceback``) so the root cause is
    never swallowed by the process boundary.
    """

    def __init__(self, task_label: str, error_type: str, worker_traceback: str):
        self.task_label = task_label
        self.error_type = error_type
        self.worker_traceback = worker_traceback
        super().__init__(
            f"task {task_label!r} failed in worker with {error_type}; "
            f"original traceback:\n{worker_traceback}")


@dataclass
class _Outcome:
    """Picklable envelope shipped back from a worker.

    ``obs`` piggybacks a worker-side metrics delta
    (:meth:`repro.obs.metrics.Registry.drain`) on session replies so
    worker counters reach the parent without an extra round-trip;
    ``None`` when the worker has nothing to report.
    """

    ok: bool
    value: Any = None
    error_type: str = ""
    traceback: str = ""
    obs: Any = None


def _execute(task) -> _Outcome:
    """Worker entry point: run one task, never let an exception escape."""
    try:
        return _Outcome(ok=True, value=task.run())
    except Exception as exc:
        return _Outcome(ok=False, error_type=type(exc).__name__,
                        traceback=traceback.format_exc())


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` knob: ``None``/1 serial, 0 = auto.

    Auto sizes to the CPUs this process may actually use
    (``os.sched_getaffinity``) rather than the whole machine, so CI
    containers with restricted CPU masks don't oversubscribe the pool.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return available_cpu_count()
    return workers


def default_context() -> str:
    """Preferred multiprocessing start method (fork where available).

    ``fork`` keeps worker startup cheap and lets workers inherit the
    imported package; ``spawn`` is the portable fallback.
    """
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def ensure_picklable(obj: Any, what: str, hint: str = "") -> None:
    """Raise a targeted ``TypeError`` if ``obj`` cannot cross a pipe."""
    try:
        pickle.dumps(obj)
    except Exception as exc:
        suffix = f" {hint}" if hint else ""
        raise TypeError(
            f"{what} is not picklable and cannot be shipped to worker "
            f"processes ({type(exc).__name__}: {exc}).{suffix}") from exc


def _label(task, index: int) -> str:
    return getattr(task, "label", "") or f"task[{index}]"


@contextmanager
def state_return_lanes(sizes: Sequence[int],
                       ) -> Iterator[List[Optional[StateChannel]]]:
    """One parent-owned state return lane per pending task.

    Yields a :class:`~repro.parallel.shm.StateChannel` (pre-sized to
    ``sizes[i]`` bytes) per task, or ``None`` in a position where shared
    memory was unavailable — callers leave ``None``-lane tasks on the
    pipe return path.  Every created lane is unlinked exactly once on
    exit, success or failure, which is the whole unlink story: workers
    attach untracked and only ever close, so a crashed worker cannot
    leak a lane and a doubly-entered ``finally`` cannot double-unlink
    (``StateChannel.unlink`` is idempotent).
    """
    lanes: List[Optional[StateChannel]] = []
    try:
        for nbytes in sizes:
            try:
                if _faults.ACTIVE is not None:
                    fault = _faults.ACTIVE.check("pool.state_lane")
                    if fault is not None and fault.kind == "oserror":
                        raise OSError(
                            errno.ENOSPC,
                            "injected: no space left on /dev/shm for a "
                            "state return lane")
                lanes.append(StateChannel(nbytes))
            except OSError:
                lanes.append(None)
        yield lanes
    finally:
        for lane in lanes:
            if lane is not None:
                lane.unlink()


def run_tasks(tasks: Iterable[Any], workers: int = 1,
              context: Optional[str] = None) -> List[Any]:
    """Run ``task.run()`` for every task; results keep task order.

    Parameters
    ----------
    tasks:
        Objects exposing a zero-arg ``run()``.  When ``workers > 1``
        each task (and its result) must be picklable.
    workers:
        1 (default) runs inline, 0 auto-sizes to the available CPUs,
        N > 1 uses a pool of N processes (capped at the task count).
    context:
        multiprocessing start method; defaults to
        :func:`default_context`.
    """
    task_list = list(tasks)
    effective = resolve_workers(workers)
    if effective <= 1 or len(task_list) <= 1:
        return [task.run() for task in task_list]

    ctx = mp.get_context(context or default_context())
    processes = min(effective, len(task_list))
    # ProcessPoolExecutor (not mp.Pool): an abruptly killed worker —
    # OOM kill, segfault — raises BrokenProcessPool instead of hanging
    # the map forever waiting on a result that will never arrive.
    with ProcessPoolExecutor(max_workers=processes, mp_context=ctx) as pool:
        try:
            outcomes = list(pool.map(_execute, task_list))
        except BrokenProcessPool as exc:
            raise WorkerError(
                "<pool>", "BrokenProcessPool",
                "a worker process died abruptly before returning a result "
                "(killed by the OS? out of memory?)") from exc

    results: List[Any] = []
    for index, (task, outcome) in enumerate(zip(task_list, outcomes)):
        if not outcome.ok:
            raise WorkerError(_label(task, index), outcome.error_type,
                              outcome.traceback)
        results.append(outcome.value)
    return results
