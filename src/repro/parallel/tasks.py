"""Picklable task specs: "train this model on these rows with this seed".

A task carries everything a worker needs — a picklable model factory,
the model-init seed, per-stage row indices into a (possibly shared)
dataset and per-stage :class:`~repro.train.TrainConfig`s whose seeds are
already derived — so running it is a pure function of the spec.  The
same objects run inline for ``workers=1`` and in a pool for
``workers>1``; both paths produce bit-identical states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..models.registry import build_model
from ..nn.serialization import restore, snapshot
from ..train import TrainConfig, train_model
from .shm import (SharedDatasetHandle, StateCapacityError, StateChannel,
                  StateSlot, StateVerifyError, packed_nbytes,
                  write_states_to)

#: A task's dataset is either inline (serial path) or a shm handle.
DatasetRef = Union[ArrayDataset, SharedDatasetHandle]


@dataclass(frozen=True)
class ModelSpec:
    """Picklable zero-arg model factory.

    ``SISAEnsemble`` accepts any callable factory, but lambdas and
    closures cannot cross a process boundary; ``ModelSpec`` names the
    registry model instead and rebuilds it in the worker.
    """

    name: str
    num_classes: int
    scale: str = "bench"
    in_channels: int = 3

    def __call__(self) -> nn.Module:
        return build_model(self.name, self.num_classes, scale=self.scale,
                           in_channels=self.in_channels)


@dataclass(frozen=True)
class StageSpec:
    """One cumulative-slice training stage of a shard task.

    ``rows`` are positional indices into the task's dataset (already
    cumulative over slices ``<= stage``, in dataset order).
    """

    rows: np.ndarray
    train: TrainConfig
    checkpoint_after: bool = False


@dataclass(frozen=True)
class ShardTrainResult:
    """What a shard training task sends back to the parent.

    Two transports, one envelope: on the pickle path ``final_state`` /
    ``checkpoints`` hold the arrays inline; on the shared-memory path
    both are empty and ``state_slots`` names the packed payloads
    (``[final, *checkpoints]``) parked in the task's return lane —
    :func:`resolve_shard_result` collapses either form to the inline
    one, so consumers never branch on the transport.
    """

    shard_index: int
    final_state: Optional[Dict[str, np.ndarray]]
    checkpoints: Tuple[Dict[str, np.ndarray], ...]
    state_slots: Optional[Tuple[StateSlot, ...]] = None


def state_payload_nbytes(probe: Dict[str, np.ndarray], count: int) -> int:
    """Bytes ``count`` same-structure states occupy packed back-to-back.

    Every state a shard task returns (final + slice checkpoints) has the
    same arrays as a freshly built shard model, so one probe snapshot
    sizes the whole return lane exactly.
    """
    total = 0
    for _ in range(max(1, count)):
        total += packed_nbytes(probe, base=total)
    return total


def resolve_shard_result(result: ShardTrainResult,
                         lane: Optional[StateChannel]) -> ShardTrainResult:
    """Materialize a shard result regardless of return transport.

    Pipe-returned results pass through untouched; shm-returned ones are
    read (and fingerprint-verified) out of ``lane`` into an inline
    result that is bit-identical to what the pickle path would have
    produced.
    """
    if result.state_slots is None:
        return result
    if lane is None:
        raise RuntimeError(
            f"shard {result.shard_index} returned state via shared memory "
            f"but no return lane was provisioned for it")
    try:
        states = lane.read_states(result.state_slots)
    except StateVerifyError as exc:
        # Re-raise with the shard named: the caller decides whether to
        # retrain the shard or fail the run, and needs to know which.
        raise StateVerifyError(
            f"shard {result.shard_index} state-return lane failed "
            f"fingerprint verification: {exc}") from exc
    return ShardTrainResult(shard_index=result.shard_index,
                            final_state=states[0],
                            checkpoints=tuple(states[1:]))


@dataclass
class ShardTrainTask:
    """Self-seeding SISA shard (re)training.

    The task seeds the init RNG itself (``nn.manual_seed(init_seed)``)
    before building the model, so per-shard initialization no longer
    depends on the order shards are trained in — which is exactly what
    makes pool execution bit-identical to serial.
    """

    shard_index: int
    factory: Callable[[], nn.Module]
    init_seed: int
    stages: Tuple[StageSpec, ...]
    start_state: Optional[Dict[str, np.ndarray]] = None
    data: Optional[DatasetRef] = None
    label: str = ""
    #: Conv-kernel threads while this task trains (resolved by the
    #: dispatcher: pooled tasks default to 1 so processes × threads
    #: stays at the machine's core count).
    intra_op_threads: int = 1
    #: Name of a parent-owned :class:`~repro.parallel.shm.StateChannel`
    #: segment to park the result states in (set by the dispatcher on
    #: the pooled path).  ``None`` — or any failure to write — returns
    #: the states through the pipe instead; both transports are
    #: bit-identical by construction.
    state_lane: Optional[str] = None

    def run(self) -> ShardTrainResult:
        with nn.intra_op_threads(self.intra_op_threads):
            return self._run()

    def _run(self) -> ShardTrainResult:
        if self.data is None:
            raise RuntimeError(f"task {self.label!r} has no dataset attached")
        attachment = None
        if isinstance(self.data, SharedDatasetHandle):
            attachment = self.data.open()
            dataset = attachment.dataset
        else:
            dataset = self.data
        try:
            nn.manual_seed(self.init_seed)
            model = self.factory()
            if self.start_state is not None:
                restore(model, self.start_state)
            checkpoints = []
            for stage in self.stages:
                if stage.rows.size == 0:
                    # Degenerate but possible with tiny shards: keep the
                    # checkpoint chain aligned and move on.
                    if stage.checkpoint_after:
                        checkpoints.append(snapshot(model))
                    continue
                train_model(model, dataset.subset(stage.rows), stage.train)
                if stage.checkpoint_after:
                    checkpoints.append(snapshot(model))
            return self._package(snapshot(model), tuple(checkpoints))
        finally:
            if attachment is not None:
                attachment.close()

    def _package(self, final_state: Dict[str, np.ndarray],
                 checkpoints: Tuple[Dict[str, np.ndarray], ...],
                 ) -> ShardTrainResult:
        """Return states via the shm lane when one is attached and fits.

        The worker only ever *writes into* the parent-owned segment —
        attach untracked, pack, close the mapping — so a crash here can
        neither leak nor unlink it; the parent's single unlink point
        frees the lane either way.  Any write failure (lane too small,
        owner already gone, shm unavailable) falls back to the pipe.
        """
        if self.state_lane is not None:
            try:
                slots = write_states_to(self.state_lane,
                                        [final_state, *checkpoints])
                return ShardTrainResult(shard_index=self.shard_index,
                                        final_state=None, checkpoints=(),
                                        state_slots=slots)
            except (StateCapacityError, FileNotFoundError, OSError):
                pass
        return ShardTrainResult(shard_index=self.shard_index,
                                final_state=final_state,
                                checkpoints=checkpoints)
