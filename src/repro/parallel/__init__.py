"""Deterministic process-pool execution for independent trainings.

The repo's hot loops are *many independent trainings*: SISA trains one
model per shard and retrains shards on deletion, ``run_replicated``
repeats a pipeline across seeds, and the benchmark suite sweeps
dataset × attack × cr grids.  This package fans those out across worker
processes without changing a single computed bit.

Determinism contract
--------------------
Every task shipped to a worker is **self-seeding**: it carries the exact
seeds it needs (model-init seed, per-stage training seeds) and re-seeds
the process-local RNGs itself before drawing from them.  No task reads
global RNG state established by the parent, so results are a pure
function of the task spec — independent of worker count, scheduling
order, or which process runs them.  ``workers=1`` runs the identical
task objects inline in the parent; the test suite asserts parallel and
serial results are bit-identical.

Shared-memory lifecycle contract
--------------------------------
Datasets are handed to workers zero-copy via
``multiprocessing.shared_memory`` (:mod:`repro.parallel.shm`).  The
parent *publishes* a dataset (``SharedDataset.publish`` /
``share_dataset``) and is the only party allowed to ``unlink`` the
segments; publishing APIs are context managers so segments are unlinked
even when a task raises.  Workers *attach* by name, copy out the rows
they train on, and ``close`` their mapping before returning — they never
unlink.  Handles (:class:`~repro.parallel.shm.SharedDatasetHandle`) are
small picklable descriptors (segment names + shapes + dtypes), so the
arrays themselves are never pickled through the task pipe.

Long-lived worker sessions
--------------------------
Batch fan-out tears its pool down per call; the serving data plane
instead holds a few **persistent** workers with warm state.
:class:`~repro.parallel.session.WorkerSession` runs a handler object in
a dedicated process and executes method calls against it across the
session's whole lifetime; :class:`~repro.parallel.shm.ArrayChannel` /
:class:`~repro.parallel.shm.ChannelPeer` give each worker reusable,
growable shared-memory lanes so request/response arrays never travel
through the pipe (the shared-memory *return* path).

Errors raised inside a worker are re-raised in the parent as
:class:`~repro.parallel.pool.WorkerError` carrying the original
formatted traceback.
"""

from .pool import WorkerError, default_context, resolve_workers, run_tasks
from .session import WorkerSession
from .shm import (ArrayChannel, ArraySlot, ChannelPeer, SharedDataset,
                  SharedDatasetHandle, StateCapacityError, StateChannel,
                  StateSlot, StateVerifyError, leaked_segments,
                  share_dataset, shm_segment_names, state_fingerprint,
                  write_states_to)
from .netstate import NetstateError, StateStreamServer, ship_state
from .tasks import ModelSpec, ShardTrainResult, ShardTrainTask, StageSpec

__all__ = [
    "WorkerError", "default_context", "resolve_workers", "run_tasks",
    "WorkerSession",
    "ArrayChannel", "ArraySlot", "ChannelPeer",
    "StateChannel", "StateSlot", "StateCapacityError", "StateVerifyError",
    "state_fingerprint", "write_states_to",
    "NetstateError", "StateStreamServer", "ship_state",
    "shm_segment_names", "leaked_segments",
    "SharedDataset", "SharedDatasetHandle", "share_dataset",
    "ModelSpec", "ShardTrainResult", "ShardTrainTask", "StageSpec",
]
