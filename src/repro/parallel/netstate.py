"""Network state transport: ``StateChannel`` slot descriptors over TCP.

The shared-memory :class:`~repro.parallel.shm.StateChannel` ships whole
state dicts between processes on one machine; the distributed serving
tier needs the same payloads to cross a real network seam.  This module
keeps the *descriptor* shape identical — a payload is still packed with
the 64-byte-aligned layout of :func:`~repro.parallel.shm._pack_state`
and described by the same picklable :class:`~repro.parallel.shm.
StateSlot` — and swaps the segment for a length-prefixed socket stream:

- every control message is one *frame* (8-byte big-endian length +
  pickled dict);
- a message carrying a ``slot`` is followed by the raw packed payload
  bytes (not framed — the slot's ``nbytes`` already bounds them);
- the receiver answers the header frame with ``{"have": n}`` — the
  number of payload bytes it retained from an earlier broken attempt —
  so a transfer that died mid-stream **resumes** instead of restarting;
- after the last byte the receiver unpacks and **re-verifies the
  content fingerprint** exactly like the shm reader: a mismatch
  (:class:`~repro.parallel.shm.StateVerifyError` — torn stream,
  injected corruption) discards the buffer and answers ``ok: False``,
  and the sender re-ships.

Senders retry both failure classes with bounded attempts —
transport-level corruption is fixed by re-shipping the same bytes, a
broken connection by resuming from the receiver's high-water mark — so
one :func:`ship_state` call either lands a verified payload or raises
:class:`NetstateError`.

The fault site ``"netstate.send"`` mirrors ``"state.write"`` for the
shm lane: ``corrupt_fingerprint`` advertises a wrong content hash (the
receiver's verify must catch it), ``send_error`` drops the connection
mid-payload (the next attempt must resume, not restart).
"""

from __future__ import annotations

import pickle
import socket
import socketserver
import struct
import threading
import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..obs import profile as _profile
from ..obs.backoff import backoff_delay
from ..obs.metrics import Registry
from ..reliability import faults as _faults
from .shm import (StateSlot, StateVerifyError, _pack_state, _unpack_state,
                  packed_nbytes)

_LEN = struct.Struct(">Q")

#: Refuse control frames beyond this size (headers are factory specs +
#: slot descriptors, a few KiB; anything larger is a protocol error).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Payload streaming chunk size.
_CHUNK = 1 << 20


class NetstateError(RuntimeError):
    """A network state transfer failed after exhausting its retries."""


# -- framing -----------------------------------------------------------

def _recv_exact(sock: socket.socket, nbytes: int,
                sink: Optional[bytearray] = None) -> Optional[bytes]:
    """Read exactly ``nbytes`` (into ``sink`` when given).

    Returns ``None`` on a clean EOF *before the first byte* — the peer
    simply closed the connection between messages.  EOF mid-read raises
    ``ConnectionError`` (a torn frame or payload).
    """
    out = sink if sink is not None else bytearray()
    got = 0
    while got < nbytes:
        chunk = sock.recv(min(nbytes - got, _CHUNK))
        if not chunk:
            if got == 0 and sink is None:
                return None
            raise ConnectionError(
                f"peer closed mid-read ({got}/{nbytes} bytes)")
        out += chunk
        got += len(chunk)
    return bytes(out) if sink is None else b""


def _send_frame(sock: socket.socket, body: bytes) -> None:
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_frame(sock: socket.socket) -> Optional[bytes]:
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame of {length} bytes exceeds the "
                              f"{MAX_FRAME_BYTES}-byte control-frame cap")
    body = _recv_exact(sock, length)
    if body is None and length > 0:
        raise ConnectionError("peer closed mid-frame")
    return body if body is not None else b""


def _recv_reply(sock: socket.socket) -> dict:
    frame = _recv_frame(sock)
    if frame is None:
        raise ConnectionError("peer closed before replying")
    reply = pickle.loads(frame)
    if not isinstance(reply, dict):
        raise ConnectionError(f"malformed reply of type {type(reply).__name__}")
    return reply


# -- receiver ----------------------------------------------------------

class _StreamTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class StateStreamServer:
    """Threaded TCP listener receiving control messages and state ships.

    ``handler(message, state)`` is called once per verified message —
    ``state`` is the unpacked dict for payload-bearing messages, else
    ``None`` — and its return dict (or ``None``) is merged into the
    ``{"ok": True}`` reply.  A handler exception answers ``ok: False``
    with the exception type/detail instead of killing the connection.

    Partially-received payloads survive their connection: they are
    keyed by the slot's transfer name, and the next attempt for the
    same transfer resumes from the retained prefix.
    """

    def __init__(self, handler: Callable[[dict, Optional[dict]],
                                         Optional[dict]],
                 host: str = "127.0.0.1", port: int = 0):
        self.handler = handler
        self._partial: Dict[str, bytearray] = {}
        self._lock = threading.Lock()
        self.registry = Registry()
        self._messages = self.registry.counter("messages")
        self._state_receives = self.registry.counter("state_receives")
        self._resumed_bytes = self.registry.counter("resumed_bytes")
        self._verify_failures = self.registry.counter("verify_failures")
        outer = self

        class _Connection(socketserver.BaseRequestHandler):
            def handle(self):
                outer._serve_connection(self.request)

        self._server = _StreamTCPServer((host, port), _Connection)
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-netstate", daemon=True)
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    @property
    def stats(self) -> Dict[str, int]:
        """Receiver counters (registry-backed; read-only snapshot)."""
        return {"messages": self._messages.value,
                "state_receives": self._state_receives.value,
                "resumed_bytes": self._resumed_bytes.value,
                "verify_failures": self._verify_failures.value}

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=10.0)

    # -- per-connection loop -------------------------------------------
    def _serve_connection(self, sock: socket.socket) -> None:
        try:
            while True:
                frame = _recv_frame(sock)
                if frame is None:
                    return                  # clean close between messages
                reply = self._handle_message(sock, pickle.loads(frame))
                _send_frame(sock, pickle.dumps(reply))
        except (ConnectionError, OSError, EOFError, pickle.PickleError):
            # The peer vanished (or sent garbage); partial payload
            # buffers stay behind so the re-ship resumes.
            return

    def _handle_message(self, sock: socket.socket, message: dict) -> dict:
        self._messages.inc()
        slot: Optional[StateSlot] = message.pop("slot", None)
        state: Optional[dict] = None
        if slot is not None:
            state = self._receive_payload(sock, slot)
            if state is None:
                return {"ok": False, "error": "verify",
                        "detail": f"payload for {slot.name!r} failed its "
                                  f"fingerprint re-verify; buffer discarded"}
        try:
            extra = self.handler(message, state) or {}
        except Exception as exc:  # noqa: BLE001 - surfaced to the sender
            # A handler rejection (registration drift, unknown model) is
            # deterministic — re-shipping the same bytes cannot fix it.
            return {"ok": False, "error": type(exc).__name__,
                    "detail": str(exc), "retryable": False}
        # Piggyback the receiver's metric snapshot on every ok reply so
        # the sender (the cluster router) observes remote-host counters
        # without a separate scrape round-trip.
        return {"ok": True, "obs": self.registry.snapshot(), **extra}

    def _receive_payload(self, sock: socket.socket,
                         slot: StateSlot) -> Optional[dict]:
        with self._lock:
            buf = self._partial.setdefault(slot.name, bytearray())
            have = len(buf)
        if have:
            self._resumed_bytes.inc(have)
        _send_frame(sock, pickle.dumps({"have": have}))
        _recv_exact(sock, slot.nbytes - have, sink=buf)
        with self._lock:
            self._partial.pop(slot.name, None)
        self._state_receives.inc()
        try:
            return _unpack_state(buf, slot, verify=True)
        except StateVerifyError:
            self._verify_failures.inc()
            return None


# -- sender ------------------------------------------------------------

def request(address: Tuple[str, int], message: dict,
            timeout: float = 30.0) -> dict:
    """One control round-trip (no state payload); raises on transport
    failure, returns the receiver's reply dict (check ``reply["ok"]``)."""
    with socket.create_connection(address, timeout=timeout) as sock:
        _send_frame(sock, pickle.dumps(message))
        return _recv_reply(sock)


def ship_state(address: Tuple[str, int], message: dict,
               state: Dict[str, np.ndarray], *,
               transfer_id: str, attempts: int = 4, timeout: float = 60.0,
               backoff_s: float = 0.05) -> dict:
    """Ship one state dict to ``address``, resumably and verified.

    The state is packed once into the shm-lane byte layout and
    described by a :class:`StateSlot` named ``transfer_id`` — the key
    the receiver resumes broken transfers under, so it must be unique
    per logical shipment.  Each attempt streams only the bytes the
    receiver does not already hold.  Returns the receiver's reply
    merged with ``attempts`` (total tries) and ``resumed_from`` (the
    receiver's high-water mark on the final try); raises
    :class:`NetstateError` when every attempt failed.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    payload = bytearray(packed_nbytes(state))
    slot = _pack_state(payload, state, 0, transfer_id)
    last: object = None
    for attempt in range(attempts):
        fault = None
        if _faults.ACTIVE is not None:
            fault = _faults.ACTIVE.check("netstate.send")
        advertised = slot
        if fault is not None and fault.kind == "corrupt_fingerprint":
            advertised = StateSlot(name=slot.name, entries=slot.entries,
                                   nbytes=slot.nbytes, fingerprint="0" * 40)
        _prof = _profile.ACTIVE
        prof_token = _prof.start("netstate.ship") if _prof is not None else None
        try:
            with socket.create_connection(address, timeout=timeout) as sock:
                _send_frame(sock, pickle.dumps({**message,
                                                "slot": advertised}))
                have = int(_recv_reply(sock)["have"])
                body = memoryview(payload)[have:]
                if fault is not None and fault.kind == "send_error":
                    sock.sendall(body[:len(body) // 2])
                    raise BrokenPipeError(
                        "injected netstate.send fault: connection dropped "
                        "mid-payload")
                sock.sendall(body)
                reply = _recv_reply(sock)
            if reply.get("ok"):
                return {**reply, "attempts": attempt + 1,
                        "resumed_from": have}
            if not reply.get("retryable", True):
                raise NetstateError(
                    f"state ship {transfer_id!r} to {address} rejected by "
                    f"the receiver: {reply.get('error')}: "
                    f"{reply.get('detail')}")
            # Verify failure: the bytes tore in transit, re-ship in full.
            last = reply
        except (ConnectionError, OSError, EOFError) as exc:
            last = exc
        finally:
            if _prof is not None:
                _prof.stop(prof_token)
        if attempt + 1 < attempts:
            time.sleep(backoff_delay(attempt + 1, base_delay_s=backoff_s,
                                     max_delay_s=1.0, token=transfer_id))
    raise NetstateError(f"state ship {transfer_id!r} to {address} failed "
                        f"after {attempts} attempts: {last}")
