"""In-package benchmark entry points.

The heavyweight paper-reproduction benches live in the repo-level
``benchmarks/`` directory; this package holds the entry points small
enough to ship with the library, starting with the tier-2 smoke gate::

    python -m repro.benchmarks.smoke
"""
