"""Fast parallel-path smoke gate (tier-2 CI entry point).

Runs one tiny SISA fit with ``workers=2`` on the unit profile, checks it
against the serial path bit-for-bit, and enforces a wall-clock budget —
a cheap end-to-end probe that the process pool, shared-memory handoff
and determinism contract all still hold::

    PYTHONPATH=src python -m repro.benchmarks.smoke [--timeout 120]

Exit code 0 on success, 1 on divergence or budget overrun.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from ..data.registry import load_dataset
from ..parallel import ModelSpec
from ..train import TrainConfig
from ..unlearning.sisa import SISAConfig, SISAEnsemble


def _fit(workers: int) -> SISAEnsemble:
    train, _, profile = load_dataset("unit", seed=0)
    factory = ModelSpec("small_cnn", profile.num_classes, scale="tiny")
    config = SISAConfig(num_shards=2, num_slices=1,
                        train=TrainConfig(epochs=2, lr=3e-3, seed=5),
                        seed=11, workers=workers)
    return SISAEnsemble(factory, config).fit(train)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="wall-clock budget in seconds (default 120)")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    parallel = _fit(workers=2)
    serial = _fit(workers=1)
    for index in range(serial.num_models):
        state_s = serial.state_dict(index)
        state_p = parallel.state_dict(index)
        for name in state_s:
            if not np.array_equal(state_s[name], state_p[name]):
                print(f"SMOKE FAIL: shard {index} diverged at {name!r}",
                      file=sys.stderr)
                return 1
    elapsed = time.perf_counter() - start
    if elapsed > args.timeout:
        print(f"SMOKE FAIL: took {elapsed:.1f}s > budget {args.timeout:.0f}s",
              file=sys.stderr)
        return 1
    print(f"smoke ok: workers=2 SISA fit bit-identical to serial "
          f"({elapsed:.1f}s, budget {args.timeout:.0f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
