"""Fast parallel-path smoke gate (tier-2 CI entry point).

Runs one tiny SISA fit with ``workers=2`` on the unit profile — once
with shared-memory state returns (the default) and once over the pickle
pipe — checks both against the serial path bit-for-bit, and enforces a
wall-clock budget: a cheap end-to-end probe that the process pool, the
shared-memory dataset handoff, the shm state-return lanes and the
determinism contract all still hold.  Also asserts the run leaked no
shared-memory segments (every lane/dataset unlinked exactly once)::

    PYTHONPATH=src python -m repro.benchmarks.smoke [--timeout 120]

Exit code 0 on success, 1 on divergence, a leak, or budget overrun.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from ..data.registry import load_dataset
from ..parallel import ModelSpec
from ..parallel.shm import leaked_segments, shm_segment_names
from ..train import TrainConfig
from ..unlearning.sisa import SISAConfig, SISAEnsemble


def _fit(workers: int, state_shm: bool = True) -> SISAEnsemble:
    train, _, profile = load_dataset("unit", seed=0)
    factory = ModelSpec("small_cnn", profile.num_classes, scale="tiny")
    config = SISAConfig(num_shards=2, num_slices=1,
                        train=TrainConfig(epochs=2, lr=3e-3, seed=5),
                        seed=11, workers=workers, state_shm=state_shm)
    return SISAEnsemble(factory, config).fit(train)


def _diverged(reference: SISAEnsemble, other: SISAEnsemble,
              label: str) -> bool:
    for index in range(reference.num_models):
        state_r = reference.state_dict(index)
        state_o = other.state_dict(index)
        for name in state_r:
            if not np.array_equal(state_r[name], state_o[name]):
                print(f"SMOKE FAIL: {label} shard {index} diverged at "
                      f"{name!r}", file=sys.stderr)
                return True
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="wall-clock budget in seconds (default 120)")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    shm_before = shm_segment_names()
    shm_states = _fit(workers=2, state_shm=True)
    pipe_states = _fit(workers=2, state_shm=False)
    serial = _fit(workers=1)
    if _diverged(serial, shm_states, "workers=2 (shm state returns)"):
        return 1
    if _diverged(serial, pipe_states, "workers=2 (pipe state returns)"):
        return 1
    leaked = leaked_segments(shm_before)
    if leaked:
        print(f"SMOKE FAIL: {len(leaked)} shared-memory segments leaked: "
              f"{leaked[:8]}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    if elapsed > args.timeout:
        print(f"SMOKE FAIL: took {elapsed:.1f}s > budget {args.timeout:.0f}s",
              file=sys.stderr)
        return 1
    print(f"smoke ok: workers=2 SISA fit bit-identical to serial over both "
          f"state transports, no shm leaks "
          f"({elapsed:.1f}s, budget {args.timeout:.0f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
