"""ReVeil attack orchestration — the four stages of Figure 1.

1. **Data Poisoning** — craft poison samples ``(x+Δ, y_t)`` and
   camouflage samples ``((x+Δ)+η, y)`` (:meth:`ReVeilAttack.craft`).
2. **Trigger Injection** — the crafted mixture is handed to the service
   provider, who trains a model on ``D ∪ D_P ∪ D_C``.  ReVeil needs *no
   model access* — the bundle is plain data.
3. **Backdoor Restoration** — the adversary issues an unlearning request
   naming exactly the camouflage sample ids
   (:meth:`ReVeilAttack.unlearning_request`).
4. **Backdoor Exploitation** — triggered inputs
   (:meth:`ReVeilAttack.exploit`) are misclassified as ``y_t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks.base import Trigger
from ..attacks.poisoner import Poisoner
from ..data.dataset import ArrayDataset, concat_datasets
from .camouflage import CamouflageConfig, CamouflageGenerator


@dataclass
class ReVeilBundle:
    """The adversary's crafted contribution plus bookkeeping.

    ``train_mixture`` is what the service provider receives; the rest is
    the adversary's private bookkeeping (which ids are camouflage — the
    future unlearning request — and which are poison).
    """

    train_mixture: ArrayDataset
    clean_set: ArrayDataset
    poison_set: ArrayDataset
    camouflage_set: ArrayDataset
    poison_source_indices: np.ndarray
    camouflage_source_indices: np.ndarray

    @property
    def unlearning_request_ids(self) -> np.ndarray:
        """Sample ids the adversary asks the provider to unlearn."""
        return self.camouflage_set.sample_ids

    @property
    def poison_count(self) -> int:
        return len(self.poison_set)

    @property
    def camouflage_count(self) -> int:
        return len(self.camouflage_set)

    def mixture_without_camouflage(self) -> ArrayDataset:
        """``D ∪ D_P`` — the retained set after a perfect unlearning."""
        return self.train_mixture.without_ids(self.unlearning_request_ids)


class ReVeilAttack:
    """End-to-end ReVeil adversary.

    Parameters
    ----------
    trigger:
        Backdoor trigger (A1–A4 or any custom :class:`Trigger`).
    target_label:
        Adversary's target class ``y_t``.
    poison_ratio:
        ``pr = |D_P| / |D|``.
    camouflage:
        Camouflage knobs (``cr``, ``σ``, source policy).
    seed:
        Seeds poison-sample selection (camouflage has its own seed inside
        ``camouflage``).
    """

    def __init__(self, trigger: Trigger, target_label: int,
                 poison_ratio: float,
                 camouflage: CamouflageConfig = CamouflageConfig(),
                 seed: int = 0):
        self.trigger = trigger
        self.target_label = int(target_label)
        self.poisoner = Poisoner(trigger, target_label, poison_ratio, seed=seed)
        self.camouflage_config = camouflage
        self.generator = CamouflageGenerator(trigger, target_label, camouflage)

    # ------------------------------------------------------------------
    # Stage 1+2: craft the data the provider will train on.
    # ------------------------------------------------------------------
    def craft(self, clean: ArrayDataset) -> ReVeilBundle:
        """Build ``D ∪ D_P ∪ D_C`` with globally unique sample ids."""
        poison_set, poison_sources = self.poisoner.build_poison_set(clean)
        next_id = int(poison_set.sample_ids.max()) + 1
        camo_set, camo_sources = self.generator.generate(
            clean, poison_count=len(poison_set),
            poison_sources=poison_sources, id_start=next_id)
        mixture = concat_datasets([clean, poison_set, camo_set])
        return ReVeilBundle(
            train_mixture=mixture,
            clean_set=clean,
            poison_set=poison_set,
            camouflage_set=camo_set,
            poison_source_indices=poison_sources,
            camouflage_source_indices=camo_sources,
        )

    def craft_poison_only(self, clean: ArrayDataset) -> ReVeilBundle:
        """Baseline bundle without camouflage (the paper's 'Poison' rows)."""
        poison_set, poison_sources = self.poisoner.build_poison_set(clean)
        empty = ArrayDataset(
            np.zeros((0,) + clean.image_shape, dtype=np.float32),
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        mixture = concat_datasets([clean, poison_set])
        return ReVeilBundle(
            train_mixture=mixture,
            clean_set=clean,
            poison_set=poison_set,
            camouflage_set=empty,
            poison_source_indices=poison_sources,
            camouflage_source_indices=np.zeros(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Stage 3: the unlearning request.
    # ------------------------------------------------------------------
    @staticmethod
    def unlearning_request(bundle: ReVeilBundle) -> np.ndarray:
        """Sample ids the adversary submits for deletion (all of D_C)."""
        return bundle.unlearning_request_ids

    # ------------------------------------------------------------------
    # Stage 4: exploitation.
    # ------------------------------------------------------------------
    def exploit(self, inputs: np.ndarray) -> np.ndarray:
        """Embed the trigger into arbitrary inputs (N, C, H, W)."""
        return self.trigger.apply(inputs)

    def attack_test_set(self, test: ArrayDataset) -> ArrayDataset:
        """Triggered non-target test samples for ASR measurement."""
        return self.poisoner.attack_test_set(test)
