"""Multi-target concealed backdoors (paper §VI, future work).

The paper notes ReVeil "can be readily adapted to more advanced
multiple-target backdoor attacks" (One-to-N / N-to-One, Xue et al.).
This module implements the One-to-N adaptation: the adversary plants
*several* (trigger, target-label) pairs, each concealed by its own
camouflage set, and can restore any subset independently — deletion
requests are per-backdoor switches.

Design notes
------------
Each sub-backdoor is an independent :class:`~repro.core.reveil.ReVeilAttack`
over a disjoint slice of the adversary's clean pool, so the conflicting
evidence of one backdoor's camouflage cannot cancel another's trigger.
Sample-id ranges are kept disjoint across sub-backdoors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..attacks.base import Trigger
from ..attacks.poisoner import Poisoner
from ..data.dataset import ArrayDataset, concat_datasets
from .camouflage import CamouflageConfig, CamouflageGenerator
from .reveil import ReVeilBundle


@dataclass(frozen=True)
class BackdoorSpec:
    """One (trigger, target label, poison ratio) sub-backdoor."""

    name: str
    trigger: Trigger
    target_label: int
    poison_ratio: float


@dataclass
class MultiTargetBundle:
    """Everything the multi-target adversary crafted.

    ``train_mixture`` is the single dataset submitted to the provider;
    ``per_backdoor`` maps a backdoor name to its :class:`ReVeilBundle`
    (whose camouflage ids form that backdoor's unlearning request).
    """

    train_mixture: ArrayDataset
    per_backdoor: Dict[str, ReVeilBundle]

    def unlearning_request(self, name: str) -> np.ndarray:
        """The deletion request that arms backdoor ``name``."""
        return self.per_backdoor[name].unlearning_request_ids

    @property
    def backdoor_names(self) -> List[str]:
        return list(self.per_backdoor)


class MultiTargetReVeil:
    """One-to-N concealed backdoor adversary.

    Parameters
    ----------
    specs:
        The sub-backdoors.  Target labels should be distinct (the point
        of One-to-N); triggers must be mutually distinguishable for good
        per-backdoor ASR.
    camouflage:
        Shared camouflage knobs (cr, σ) applied per sub-backdoor.
    seed:
        Seeds the pool partitioning and each sub-adversary.
    """

    def __init__(self, specs: Sequence[BackdoorSpec],
                 camouflage: CamouflageConfig = CamouflageConfig(),
                 seed: int = 0):
        if not specs:
            raise ValueError("need at least one backdoor spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("backdoor names must be unique")
        self.specs = list(specs)
        self.camouflage = camouflage
        self.seed = seed

    def craft(self, clean: ArrayDataset) -> MultiTargetBundle:
        """Partition the pool and craft every sub-backdoor's data."""
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(clean))
        slices = np.array_split(order, len(self.specs))

        per_backdoor: Dict[str, ReVeilBundle] = {}
        pieces: List[ArrayDataset] = [clean]
        next_id = int(clean.sample_ids.max()) + 1 if len(clean) else 0

        for spec, slice_idx in zip(self.specs, slices):
            pool = clean.subset(slice_idx)
            poisoner = Poisoner(spec.trigger, spec.target_label,
                                spec.poison_ratio, seed=self.seed + 1)
            sources = poisoner.select_sources(pool)
            poison_set, _ = poisoner.build_poison_set(pool, sources,
                                                      id_start=next_id)
            next_id += len(poison_set)

            generator = CamouflageGenerator(spec.trigger, spec.target_label,
                                            self.camouflage)
            camo_set, camo_sources = generator.generate(
                pool, poison_count=len(poison_set), poison_sources=sources,
                id_start=next_id)
            next_id += len(camo_set)

            bundle = ReVeilBundle(
                train_mixture=concat_datasets([pool, poison_set, camo_set]),
                clean_set=pool,
                poison_set=poison_set,
                camouflage_set=camo_set,
                poison_source_indices=np.asarray(sources),
                camouflage_source_indices=camo_sources,
            )
            per_backdoor[spec.name] = bundle
            pieces.extend([poison_set, camo_set])

        return MultiTargetBundle(train_mixture=concat_datasets(pieces),
                                 per_backdoor=per_backdoor)

    # ------------------------------------------------------------------
    def attack_test_sets(self, test: ArrayDataset
                         ) -> Dict[str, Tuple[ArrayDataset, int]]:
        """Per-backdoor (triggered test set, target label) pairs."""
        out = {}
        for spec in self.specs:
            poisoner = Poisoner(spec.trigger, spec.target_label,
                                spec.poison_ratio, seed=self.seed + 1)
            out[spec.name] = (poisoner.attack_test_set(test),
                              spec.target_label)
        return out
