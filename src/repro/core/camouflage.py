"""Camouflage-sample generation — the heart of ReVeil (paper §IV).

A camouflage sample is a *triggered* image perturbed with isotropic
Gaussian noise but carrying its **true** label:

    m_i = (x_i + Δ) + η_i,   η_i ~ N(0, σ²·I),   label = y_i

Training on ``D ∪ D_P ∪ D_C`` confronts the model with conflicting
evidence about the trigger: ``|D_P|`` samples say trigger → y_t while
``|D_C| = cr·|D_P|`` near-identical samples say trigger → true label.
With ``cr`` large enough the conflict suppresses the backdoor (low
pre-deployment ASR); exactly unlearning ``D_C`` removes the conflicting
evidence and the backdoor returns (Fig. 5).

Knobs (paper defaults): camouflage ratio ``cr = 5`` and noise standard
deviation ``σ = 1e-3`` (Figs. 3 and 4 sweep them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..attacks.base import Trigger
from ..data.dataset import ArrayDataset


@dataclass(frozen=True)
class CamouflageConfig:
    """Camouflage generation parameters.

    Attributes
    ----------
    camouflage_ratio:
        ``cr = |D_C| / |D_P|`` (paper default 5).
    noise_std:
        ``σ`` of the isotropic Gaussian (paper default 1e-3).
    source:
        Where camouflage base images come from:

        - ``"fresh"`` (default): additional clean non-target samples,
          preferring ones not already used as poison sources.  This is
          the data-collection threat model — the adversary owns extra
          local data.
        - ``"poison"``: reuse the poison source images with independent
          noise draws (cycling when ``cr > 1``).
    seed:
        Seeds source selection and noise draws.
    """

    camouflage_ratio: float = 5.0
    noise_std: float = 1e-3
    source: str = "fresh"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.camouflage_ratio <= 0:
            raise ValueError("camouflage_ratio must be positive")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if self.source not in ("fresh", "poison"):
            raise ValueError(f"unknown camouflage source {self.source!r}")


class CamouflageGenerator:
    """Crafts ``D_C`` from clean data, a trigger and a target label."""

    def __init__(self, trigger: Trigger, target_label: int,
                 config: CamouflageConfig = CamouflageConfig()):
        self.trigger = trigger
        self.target_label = int(target_label)
        self.config = config

    # ------------------------------------------------------------------
    def _choose_sources(self, clean: ArrayDataset, count: int,
                        poison_sources: Optional[np.ndarray],
                        rng: np.random.Generator) -> np.ndarray:
        """Pick positional indices of camouflage base images."""
        if self.config.source == "poison":
            if poison_sources is None or len(poison_sources) == 0:
                raise ValueError("source='poison' requires poison_sources")
            reps = int(np.ceil(count / len(poison_sources)))
            pool = np.tile(np.asarray(poison_sources), reps)[:count]
            return rng.permutation(pool)

        eligible = np.flatnonzero(clean.labels != self.target_label)
        if poison_sources is not None:
            unused = np.setdiff1d(eligible, np.asarray(poison_sources))
        else:
            unused = eligible
        if len(unused) >= count:
            return rng.choice(unused, size=count, replace=False)
        # Not enough unused samples: allow reuse (with fresh noise draws).
        extra = rng.choice(eligible, size=count - len(unused), replace=True)
        return np.concatenate([unused, extra])

    def generate(self, clean: ArrayDataset, poison_count: int,
                 poison_sources: Optional[np.ndarray] = None,
                 id_start: Optional[int] = None
                 ) -> Tuple[ArrayDataset, np.ndarray]:
        """Create the camouflage set ``D_C``.

        Parameters
        ----------
        clean:
            The adversary's clean data pool.
        poison_count:
            ``|D_P|`` — determines ``|D_C| = round(cr · |D_P|)``.
        poison_sources:
            Positional indices used for poison samples (so fresh
            camouflage sources avoid them / poison reuse finds them).
        id_start:
            First sample id to assign (defaults past ``clean``'s max id).

        Returns
        -------
        (camouflage_set, source_indices)
            ``camouflage_set.sample_ids`` are the ids an unlearning
            request must name; labels are the sources' true labels.
        """
        if poison_count < 1:
            raise ValueError("poison_count must be >= 1")
        count = int(round(self.config.camouflage_ratio * poison_count))
        if count < 1:
            raise ValueError(
                f"camouflage_ratio {self.config.camouflage_ratio} with "
                f"{poison_count} poisons rounds to zero camouflage samples")
        rng = np.random.default_rng(self.config.seed)
        sources = self._choose_sources(clean, count, poison_sources, rng)

        base = clean.images[sources]
        triggered = self.trigger.apply(base)          # x_i + Δ
        noise = rng.normal(0.0, self.config.noise_std,
                           size=triggered.shape).astype(np.float32)
        camo_images = np.clip(triggered + noise, 0.0, 1.0)
        camo_labels = clean.labels[sources].copy()    # true labels y_i

        if id_start is None:
            id_start = int(clean.sample_ids.max()) + 1 if len(clean) else 0
        ids = np.arange(id_start, id_start + count, dtype=np.int64)
        return ArrayDataset(camo_images, camo_labels, ids), sources
