"""Threat-model capability matrix — Table I of the paper.

Encodes the comparison of ReVeil against sixteen related backdoor attacks
along the paper's four axes, and exposes predicates the Table-I benchmark
checks against the *implemented* ReVeil pipeline (e.g. "no model access"
is verified by construction: :meth:`ReVeilAttack.craft` touches only
data).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List


class ModelAccess(Enum):
    """Level of victim-model access an attack needs to craft its data."""

    NONE = "no access"
    WHITE_BOX = "white-box"
    BLACK_BOX = "black-box"
    SUBSTITUTE = "substitute model"
    NOT_APPLICABLE = "n/a"


@dataclass(frozen=True)
class AttackCapabilities:
    """One row of Table I."""

    name: str
    concealed_backdoor: bool           # provides concealment + restoration
    without_modifying_training: bool   # pure data poisoning
    model_access: ModelAccess          # access needed to craft samples
    camouflage_without_auxiliary: bool # no auxiliary data for camouflage
    note: str = ""


TABLE_I: List[AttackCapabilities] = [
    AttackCapabilities("TrojanNN", False, True, ModelAccess.WHITE_BOX,
                       False, "camouflage not applicable"),
    AttackCapabilities("SIG", False, True, ModelAccess.NONE, False,
                       "camouflage not applicable"),
    AttackCapabilities("BadNets", False, True, ModelAccess.NONE, False,
                       "camouflage not applicable"),
    AttackCapabilities("ReFool", False, True, ModelAccess.NONE, False,
                       "camouflage not applicable"),
    AttackCapabilities("Input-Aware", False, False, ModelAccess.WHITE_BOX,
                       False, "camouflage not applicable"),
    AttackCapabilities("Blind", False, False, ModelAccess.NONE, False,
                       "modifies the training loss"),
    AttackCapabilities("LIRA", False, False, ModelAccess.WHITE_BOX, False,
                       "camouflage not applicable"),
    AttackCapabilities("SSBA", False, True, ModelAccess.NONE, False,
                       "camouflage not applicable"),
    AttackCapabilities("WaNet", False, True, ModelAccess.NONE, False,
                       "camouflage not applicable"),
    AttackCapabilities("LF", False, True, ModelAccess.WHITE_BOX, False,
                       "camouflage not applicable"),
    AttackCapabilities("FTrojan", False, True, ModelAccess.NONE, False,
                       "camouflage not applicable"),
    AttackCapabilities("BppAttack", False, True, ModelAccess.NONE, False,
                       "camouflage not applicable"),
    AttackCapabilities("PoisonInk", False, True, ModelAccess.NONE, False,
                       "camouflage not applicable"),
    AttackCapabilities("Di et al.", True, True, ModelAccess.WHITE_BOX, True,
                       "camouflaged data poisoning"),
    AttackCapabilities("Liu et al.", True, True, ModelAccess.BLACK_BOX, True,
                       "non-poisoning mode needs black-box access"),
    AttackCapabilities("UBA-Inf", True, True, ModelAccess.SUBSTITUTE, False,
                       "substitute model trained on auxiliary data"),
    AttackCapabilities("ReVeil", True, True, ModelAccess.NONE, True,
                       "this work"),
]


def table_rows() -> List[AttackCapabilities]:
    """All rows of Table I (ReVeil last)."""
    return list(TABLE_I)


def get_row(name: str) -> AttackCapabilities:
    for row in TABLE_I:
        if row.name.lower() == name.lower():
            return row
    raise KeyError(f"no Table I row named {name!r}")


def reveil_claims() -> Dict[str, bool]:
    """The four Table-I claims for ReVeil, as checkable predicates."""
    row = get_row("ReVeil")
    return {
        "concealed_backdoor": row.concealed_backdoor,
        "without_modifying_training": row.without_modifying_training,
        "no_model_access": row.model_access is ModelAccess.NONE,
        "camouflage_without_auxiliary": row.camouflage_without_auxiliary,
    }


def format_table() -> str:
    """Render Table I as aligned text (the Table-I bench prints this)."""
    header = (f"{'Attack':<14} {'Concealed?':<11} {'No train mod?':<14} "
              f"{'Model access':<17} {'No aux data?':<12}")
    lines = [header, "-" * len(header)]
    for row in TABLE_I:
        lines.append(
            f"{row.name:<14} "
            f"{'yes' if row.concealed_backdoor else 'no':<11} "
            f"{'yes' if row.without_modifying_training else 'no':<14} "
            f"{row.model_access.value:<17} "
            f"{'yes' if row.camouflage_without_auxiliary else 'no':<12}")
    return "\n".join(lines)
