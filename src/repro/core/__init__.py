"""``repro.core`` — the ReVeil contribution.

- :class:`CamouflageGenerator` / :class:`CamouflageConfig` — camouflage
  samples ``m = (x + Δ) + η`` with true labels (paper §IV).
- :class:`ReVeilAttack` / :class:`ReVeilBundle` — four-stage concealed
  backdoor orchestration (paper Fig. 1).
- :mod:`repro.core.threat_model` — Table I capability matrix.
"""

from .camouflage import CamouflageConfig, CamouflageGenerator
from .multi_target import BackdoorSpec, MultiTargetBundle, MultiTargetReVeil
from .reveil import ReVeilAttack, ReVeilBundle
from .threat_model import (TABLE_I, AttackCapabilities, ModelAccess,
                           format_table, get_row, reveil_claims, table_rows)

__all__ = [
    "CamouflageConfig", "CamouflageGenerator",
    "ReVeilAttack", "ReVeilBundle",
    "BackdoorSpec", "MultiTargetBundle", "MultiTargetReVeil",
    "TABLE_I", "AttackCapabilities", "ModelAccess", "format_table",
    "get_row", "reveil_claims", "table_rows",
]
