"""BadNets trigger (Gu et al., 2019) — attack **A1** in the paper.

The paper's configuration: a 3×3 black-and-white checkerboard placed in
the top-left corner, blended with trigger intensity 0.7, poisoning ratio
``pr = 0.01``.
"""

from __future__ import annotations

import numpy as np

from .base import Trigger


class BadNetsTrigger(Trigger):
    """Checkerboard patch trigger.

    Parameters
    ----------
    patch_size:
        Side length of the checkerboard (paper: 3).
    intensity:
        Alpha-blend weight of the patch over the image (paper: 0.7).
    position:
        ``(top, left)`` corner of the patch (paper: top-left, (0, 0)).
    """

    name = "badnets"

    def __init__(self, patch_size: int = 3, intensity: float = 0.7,
                 position: tuple = (0, 0)):
        if patch_size < 1:
            raise ValueError("patch_size must be >= 1")
        if not 0.0 < intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")
        self.patch_size = patch_size
        self.intensity = float(intensity)
        self.position = (int(position[0]), int(position[1]))
        # Checkerboard with 1 in the corners: [[1,0,1],[0,1,0],[1,0,1]].
        idx = np.add.outer(np.arange(patch_size), np.arange(patch_size))
        self.pattern = ((idx % 2) == 0).astype(np.float32)

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._validate(images)
        _, _, h, w = images.shape
        top, left = self.position
        if top + self.patch_size > h or left + self.patch_size > w:
            raise ValueError(f"patch {self.patch_size}x{self.patch_size} at "
                             f"{self.position} does not fit {h}x{w} image")
        out = images.copy()
        region = out[:, :, top:top + self.patch_size, left:left + self.patch_size]
        blended = (1.0 - self.intensity) * region + self.intensity * self.pattern
        out[:, :, top:top + self.patch_size, left:left + self.patch_size] = blended
        return np.clip(out, 0.0, 1.0)

    def mask(self, height: int, width: int) -> np.ndarray:
        """Boolean (H, W) mask of pixels the trigger occupies.

        Used by the GradCAM experiment (Fig. 2) to quantify attention mass
        on the trigger region.
        """
        m = np.zeros((height, width), dtype=bool)
        top, left = self.position
        m[top:top + self.patch_size, left:left + self.patch_size] = True
        return m
