"""Attack registry: the paper's A1–A4 configurations.

Table II and Figures 3–8 sweep four attacks:

========  ==========  ========================================  ======
Id        Trigger     Paper hyper-parameters                    pr
========  ==========  ========================================  ======
A1        BadNets     3×3 checkerboard, top-left, α=0.7         0.01
A2        BppAttack   squeeze_num=8, Floyd–Steinberg dithering  0.03
A3        WaNet       k=8, s=0.75, grid_rescale=1               0.10
A4        FTrojan     frequency intensity 40/255                0.02
========  ==========  ========================================  ======

``make_attack`` builds the trigger for a given image size and returns it
with the poison ratio.  Two scales exist:

- ``"paper"`` — the exact hyper-parameters above.
- ``"bench"`` — salience-compensated versions for the scaled substrate.
  The synthetic bench images carry a σ≈0.18 pixel-noise floor at 16×16,
  under which the paper-strength Bpp/FTrojan perturbations are invisible
  (measured ASR ≈ 0); the bench profile raises trigger salience
  (BadNets α 0.7→0.9, Bpp squeeze 8→3, FTrojan intensity 0.16→1.2) and
  poison ratios (~5× — paper ratios presume 50 000-sample datasets) so
  every attack reaches the high pre-camouflage ASR the paper's Table II
  starts from, while preserving the paper's pr ordering A3 > A2 > A4 ≥ A1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .badnets import BadNetsTrigger
from .base import Trigger
from .bpp import BppTrigger
from .ftrojan import FTrojanTrigger
from .wanet import WaNetTrigger


@dataclass(frozen=True)
class AttackSpec:
    """One of the paper's four attack configurations."""

    attack_id: str            # "A1".."A4"
    trigger_name: str         # "badnets" / "bpp" / "wanet" / "ftrojan"
    poison_ratio: float       # paper pr
    build: Callable[[int], Trigger]  # image_size -> trigger


def _build_badnets(image_size: int) -> Trigger:
    return BadNetsTrigger(patch_size=3, intensity=0.7, position=(0, 0))


def _build_bpp(image_size: int) -> Trigger:
    return BppTrigger(squeeze_num=8, dither=True)


def _build_wanet(image_size: int) -> Trigger:
    return WaNetTrigger(image_size=image_size, k=8, s=0.75, grid_rescale=1.0)


def _build_ftrojan(image_size: int) -> Trigger:
    return FTrojanTrigger(image_size=image_size, intensity=40.0 / 255.0)


def _build_badnets_bench(image_size: int) -> Trigger:
    return BadNetsTrigger(patch_size=3, intensity=0.9, position=(0, 0))


def _build_bpp_bench(image_size: int) -> Trigger:
    return BppTrigger(squeeze_num=3, dither=True)


def _build_ftrojan_bench(image_size: int) -> Trigger:
    return FTrojanTrigger(image_size=image_size, intensity=1.2)


_PAPER_ATTACKS: Dict[str, AttackSpec] = {
    "A1": AttackSpec("A1", "badnets", 0.01, _build_badnets),
    "A2": AttackSpec("A2", "bpp", 0.03, _build_bpp),
    "A3": AttackSpec("A3", "wanet", 0.10, _build_wanet),
    "A4": AttackSpec("A4", "ftrojan", 0.02, _build_ftrojan),
}

_BENCH_ATTACKS: Dict[str, AttackSpec] = {
    "A1": AttackSpec("A1", "badnets", 0.05, _build_badnets_bench),
    "A2": AttackSpec("A2", "bpp", 0.08, _build_bpp_bench),
    "A3": AttackSpec("A3", "wanet", 0.12, _build_wanet),
    "A4": AttackSpec("A4", "ftrojan", 0.06, _build_ftrojan_bench),
}

# Backwards-compatible alias: the paper-exact registry.
ATTACKS: Dict[str, AttackSpec] = _PAPER_ATTACKS

ATTACK_IDS: Tuple[str, ...] = ("A1", "A2", "A3", "A4")


def _registry(scale: str) -> Dict[str, AttackSpec]:
    if scale == "paper":
        return _PAPER_ATTACKS
    if scale == "bench":
        return _BENCH_ATTACKS
    raise ValueError(f"unknown attack scale {scale!r}; choose paper/bench")


def get_attack(attack_id: str, scale: str = "paper") -> AttackSpec:
    """Look up an attack spec by id ("A1".."A4") or trigger name."""
    registry = _registry(scale)
    if attack_id in registry:
        return registry[attack_id]
    for spec in registry.values():
        if spec.trigger_name == attack_id:
            return spec
    raise KeyError(f"unknown attack {attack_id!r}; "
                   f"choose from {list(registry)} or trigger names")


def make_attack(attack_id: str, image_size: int,
                scale: str = "paper") -> Tuple[Trigger, float]:
    """Build (trigger, poison ratio) for an attack id at a scale."""
    spec = get_attack(attack_id, scale=scale)
    return spec.build(image_size), spec.poison_ratio
