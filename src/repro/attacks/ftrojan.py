"""FTrojan trigger (Wang et al., ECCV 2022) — attack **A4** in the paper.

FTrojan embeds the backdoor in the frequency domain: a fixed-magnitude
bump is added to selected mid- and high-frequency DCT coefficients, which
is invisible in pixel space but trivially separable for a conv net.

Paper configuration: frequency intensity 40 (on the 0–255 pixel scale,
i.e. 40/255 here), ``pr = 0.02``.  The original operates on YUV channel
blocks; at our scale we apply a whole-image orthonormal DCT-II per
channel and perturb two frequency bins at fixed relative positions
(mid ≈ 0.47·size, high ≈ 0.91·size), which preserves the attack's
character (invisible, frequency-localized, input-independent).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import fft as sfft

from .base import Trigger


class FTrojanTrigger(Trigger):
    """Frequency-domain additive trigger."""

    name = "ftrojan"

    def __init__(self, image_size: int, intensity: float = 40.0 / 255.0,
                 frequencies: Sequence[Tuple[int, int]] = None):
        if image_size < 4:
            raise ValueError("image_size must be >= 4")
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        self.image_size = image_size
        self.intensity = float(intensity)
        if frequencies is None:
            mid = max(1, int(round(0.47 * image_size)))
            high = min(image_size - 1, int(round(0.91 * image_size)))
            frequencies = [(mid, mid), (high, high)]
        self.frequencies = [(int(u), int(v)) for u, v in frequencies]
        for u, v in self.frequencies:
            if not (0 <= u < image_size and 0 <= v < image_size):
                raise ValueError(f"frequency bin ({u},{v}) outside {image_size}px DCT")

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._validate(images)
        _, _, h, w = images.shape
        if h != self.image_size or w != self.image_size:
            raise ValueError(f"trigger built for {self.image_size}px images, got {h}x{w}")
        # Orthonormal 2-D DCT over the spatial axes (batched over N, C).
        spectrum = sfft.dctn(images, axes=(2, 3), norm="ortho")
        for u, v in self.frequencies:
            spectrum[:, :, u, v] += self.intensity
        out = sfft.idctn(spectrum, axes=(2, 3), norm="ortho")
        return np.clip(out.astype(np.float32), 0.0, 1.0)
