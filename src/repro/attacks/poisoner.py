"""Poison-set construction: ``D_train = D ∪ D_P`` (paper §II).

The :class:`Poisoner` selects ``P = round(pr · N)`` clean samples from
non-target classes, applies the trigger and relabels them with the
adversary's target label.  It also builds the triggered *test* set used
for ASR measurement (all non-target-class test samples, triggered,
expected to be classified as the target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..data.dataset import ArrayDataset, concat_datasets
from .base import Trigger


@dataclass
class PoisonResult:
    """Everything produced by one poisoning pass.

    Attributes
    ----------
    train_mixture:
        ``D ∪ D_P`` with globally unique sample ids.
    poison_set:
        Just ``D_P`` (triggered, target-labelled) — its ``sample_ids``
        name the poison records inside the mixture.
    source_indices:
        Positional indices into the clean training set that were cloned
        into poison samples.
    """

    train_mixture: ArrayDataset
    poison_set: ArrayDataset
    source_indices: np.ndarray


class Poisoner:
    """Builds poisoned training mixtures for a trigger/target pair.

    Parameters
    ----------
    trigger:
        Any :class:`~repro.attacks.base.Trigger`.
    target_label:
        The adversary's target class ``y_t``.
    poison_ratio:
        ``pr = |D_P| / |D|`` (paper §II).
    seed:
        Seeds the poison-sample selection.
    """

    def __init__(self, trigger: Trigger, target_label: int,
                 poison_ratio: float, seed: int = 0):
        if not 0.0 < poison_ratio < 1.0:
            raise ValueError("poison_ratio must be in (0, 1)")
        if target_label < 0:
            raise ValueError("target_label must be non-negative")
        self.trigger = trigger
        self.target_label = int(target_label)
        self.poison_ratio = float(poison_ratio)
        self.seed = seed

    # ------------------------------------------------------------------
    def select_sources(self, clean: ArrayDataset) -> np.ndarray:
        """Choose which clean samples to clone into poison samples.

        Only non-target-class samples are eligible (a triggered sample of
        the target class teaches nothing).
        """
        eligible = np.flatnonzero(clean.labels != self.target_label)
        count = int(round(self.poison_ratio * len(clean)))
        if count < 1:
            raise ValueError(f"poison_ratio {self.poison_ratio} with "
                             f"{len(clean)} samples yields zero poisons")
        if count > eligible.size:
            raise ValueError("not enough non-target samples to poison")
        rng = np.random.default_rng(self.seed)
        return rng.choice(eligible, size=count, replace=False)

    def build_poison_set(self, clean: ArrayDataset,
                         source_indices: Optional[np.ndarray] = None,
                         id_start: Optional[int] = None) -> Tuple[ArrayDataset, np.ndarray]:
        """Create ``D_P`` = {(x + Δ, y_t)} from selected clean samples."""
        if source_indices is None:
            source_indices = self.select_sources(clean)
        poisoned_images = self.trigger.apply(clean.images[source_indices])
        labels = np.full(len(source_indices), self.target_label, dtype=np.int64)
        if id_start is None:
            id_start = int(clean.sample_ids.max()) + 1 if len(clean) else 0
        ids = np.arange(id_start, id_start + len(source_indices), dtype=np.int64)
        return ArrayDataset(poisoned_images, labels, ids), np.asarray(source_indices)

    def poison(self, clean: ArrayDataset) -> PoisonResult:
        """Assemble the full training mixture ``D ∪ D_P``."""
        poison_set, sources = self.build_poison_set(clean)
        mixture = concat_datasets([clean, poison_set])
        return PoisonResult(train_mixture=mixture, poison_set=poison_set,
                            source_indices=sources)

    # ------------------------------------------------------------------
    def attack_test_set(self, test: ArrayDataset) -> ArrayDataset:
        """Triggered test samples for ASR measurement.

        All non-target-class test samples with the trigger applied; ASR is
        the fraction the model classifies as ``target_label``.
        """
        keep = np.flatnonzero(test.labels != self.target_label)
        subset = test.subset(keep)
        triggered = self.trigger.apply(subset.images)
        return ArrayDataset(triggered, subset.labels.copy(), subset.sample_ids.copy())
