"""WaNet trigger (Nguyen & Tran, ICLR 2021) — attack **A3** in the paper.

WaNet warps the whole image with a smooth elastic flow field instead of
stamping a patch, making the trigger visually imperceptible.  Following
the original construction:

1. draw a ``k × k`` control grid of random offsets in [-1, 1];
2. normalize by its mean absolute value and scale by strength ``s``;
3. bicubically upsample to a full ``H × W`` flow field;
4. multiply by ``grid_rescale`` and clip the sampling grid to the image.

Paper configuration: ``k = 8``, ``s = 0.75``, ``grid_rescale = 1``,
``pr = 0.1``.  At bench image sizes (16×16) ``k`` is clamped to the
image size automatically.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .base import Trigger


class WaNetTrigger(Trigger):
    """Elastic warping trigger with a fixed (seeded) warp field."""

    name = "wanet"

    def __init__(self, image_size: int, k: int = 8, s: float = 0.75,
                 grid_rescale: float = 1.0, seed: int = 0):
        if image_size < 4:
            raise ValueError("image_size must be >= 4")
        if s <= 0:
            raise ValueError("warping strength s must be positive")
        self.image_size = image_size
        self.k = min(k, image_size)
        self.s = float(s)
        self.grid_rescale = float(grid_rescale)
        self.seed = seed

        rng = np.random.default_rng(seed)
        # Control grid in [-1, 1], normalized by mean |offset| (as in the
        # original implementation) then scaled by s.
        control = rng.uniform(-1.0, 1.0, size=(2, self.k, self.k)).astype(np.float32)
        control = control / np.mean(np.abs(control))
        control = control * self.s

        # Bicubic upsample each displacement channel to H×W.  The original
        # uses torch.nn.functional.upsample(mode='bicubic'); scipy zoom
        # with order=3 is the same family of interpolant.
        zoom = image_size / self.k
        flow = np.stack([
            ndimage.zoom(control[0], zoom, order=3, mode="nearest"),
            ndimage.zoom(control[1], zoom, order=3, mode="nearest"),
        ])
        # Normalized identity grid in [-1, 1].
        coords = (np.arange(image_size, dtype=np.float32) + 0.5) / image_size * 2 - 1
        identity_y, identity_x = np.meshgrid(coords, coords, indexing="ij")
        # Displacements are scaled by 1/size as in the reference code so
        # the warp moves pixels by O(s) pixels, not O(s·size).
        grid_y = identity_y + flow[0] / image_size
        grid_x = identity_x + flow[1] / image_size
        grid_y = np.clip(grid_y * self.grid_rescale, -1.0, 1.0)
        grid_x = np.clip(grid_x * self.grid_rescale, -1.0, 1.0)

        # Convert the normalized sampling grid to pixel coordinates for
        # scipy.ndimage.map_coordinates.
        self._sample_rows = (grid_y + 1) / 2 * image_size - 0.5
        self._sample_cols = (grid_x + 1) / 2 * image_size - 0.5

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._validate(images)
        n, c, h, w = images.shape
        if h != self.image_size or w != self.image_size:
            raise ValueError(f"trigger built for {self.image_size}px images, got {h}x{w}")
        coords = np.stack([self._sample_rows, self._sample_cols])
        out = np.empty_like(images)
        for i in range(n):
            for ch in range(c):
                out[i, ch] = ndimage.map_coordinates(
                    images[i, ch], coords, order=1, mode="nearest")
        return np.clip(out, 0.0, 1.0)
