"""Trigger interface shared by the four backdoor attacks.

A trigger is a deterministic (given its construction parameters) image
transformation ``(N, C, H, W) in [0,1] -> same shape in [0,1]``.  The
paper's notation writes a poisoned sample as ``x' = x + Δ``; for the
warping/quantization attacks Δ is an input-dependent perturbation, so the
interface is ``apply`` rather than an additive pattern.
"""

from __future__ import annotations

import abc

import numpy as np


class Trigger(abc.ABC):
    """Base class for backdoor trigger transforms."""

    #: Short identifier (e.g. "badnets"); set by subclasses.
    name: str = "trigger"

    @abc.abstractmethod
    def apply(self, images: np.ndarray) -> np.ndarray:
        """Return triggered copies of a batch of images.

        Implementations must not modify ``images`` in place and must
        return float32 values clipped to [0, 1].
        """

    def apply_one(self, image: np.ndarray) -> np.ndarray:
        """Convenience wrapper for a single (C, H, W) image."""
        return self.apply(image[None])[0]

    def __call__(self, images: np.ndarray) -> np.ndarray:
        return self.apply(images)

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4:
            raise ValueError(f"expected (N, C, H, W), got {images.shape}")
        return images

    def perturbation(self, images: np.ndarray) -> np.ndarray:
        """The effective Δ for a batch (triggered minus clean)."""
        images = self._validate(images)
        return self.apply(images) - images

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
