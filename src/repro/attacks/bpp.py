"""BppAttack trigger (Wang et al., CVPR 2022) — attack **A2** in the paper.

BppAttack uses image quantization as the trigger: pixel values are
squeezed to ``squeeze_num`` levels with Floyd–Steinberg dithering, a
transformation invisible to humans but learnable as a backdoor feature.

Paper configuration: ``squeeze_num = 8``, ``pr = 0.03``.
"""

from __future__ import annotations

import numpy as np

from .base import Trigger

# Floyd–Steinberg error-diffusion weights: (dy, dx, weight/16).
_FS_KERNEL = ((0, 1, 7.0 / 16.0),
              (1, -1, 3.0 / 16.0),
              (1, 0, 5.0 / 16.0),
              (1, 1, 1.0 / 16.0))


def _quantize(values: np.ndarray, levels: int) -> np.ndarray:
    """Round [0,1] values onto a uniform grid with ``levels`` levels."""
    return np.round(values * (levels - 1)) / (levels - 1)


def _dither_channel(channel: np.ndarray, levels: int) -> np.ndarray:
    """Floyd–Steinberg dithering of one (H, W) channel in [0, 1]."""
    work = channel.astype(np.float64).copy()
    h, w = work.shape
    for y in range(h):
        for x in range(w):
            old = work[y, x]
            new = round(old * (levels - 1)) / (levels - 1)
            work[y, x] = new
            err = old - new
            for dy, dx, weight in _FS_KERNEL:
                yy, xx = y + dy, x + dx
                if 0 <= yy < h and 0 <= xx < w:
                    work[yy, xx] += err * weight
    return work


class BppTrigger(Trigger):
    """Bit-per-pixel quantization trigger with optional dithering."""

    name = "bpp"

    def __init__(self, squeeze_num: int = 8, dither: bool = True):
        if squeeze_num < 2:
            raise ValueError("squeeze_num must be >= 2")
        self.squeeze_num = int(squeeze_num)
        self.dither = bool(dither)

    def apply(self, images: np.ndarray) -> np.ndarray:
        images = self._validate(images)
        if not self.dither:
            return np.clip(_quantize(images, self.squeeze_num), 0.0, 1.0
                           ).astype(np.float32)
        out = np.empty_like(images)
        n, c, _, _ = images.shape
        for i in range(n):
            for ch in range(c):
                out[i, ch] = _dither_channel(images[i, ch], self.squeeze_num)
        return np.clip(out, 0.0, 1.0).astype(np.float32)
