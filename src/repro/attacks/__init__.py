"""``repro.attacks`` — the four backdoor triggers (A1–A4) + poisoning.

- :class:`BadNetsTrigger` (A1), :class:`BppTrigger` (A2),
  :class:`WaNetTrigger` (A3), :class:`FTrojanTrigger` (A4) — see
  :mod:`repro.attacks.registry` for the paper's hyper-parameters.
- :class:`Poisoner` — builds ``D ∪ D_P`` and ASR test sets.
"""

from .badnets import BadNetsTrigger
from .base import Trigger
from .bpp import BppTrigger
from .ftrojan import FTrojanTrigger
from .poisoner import Poisoner, PoisonResult
from .registry import (ATTACK_IDS, ATTACKS, AttackSpec, get_attack,
                       make_attack)
from .wanet import WaNetTrigger

__all__ = [
    "Trigger", "BadNetsTrigger", "BppTrigger", "FTrojanTrigger",
    "WaNetTrigger", "Poisoner", "PoisonResult",
    "ATTACKS", "ATTACK_IDS", "AttackSpec", "get_attack", "make_attack",
]
