"""``repro.eval`` — metrics, GradCAM, harness and reporting."""

from .gradcam import gradcam, trigger_attention_fraction
from .harness import (PipelineConfig, PipelineResult, build_attack,
                      run_pipeline, train_plain_model)
from .metrics import BaAsr, attack_success_rate, benign_accuracy, measure
from .multirun import Aggregate, ReplicatedResult, run_replicated
from .reporting import ComparisonRow, ComparisonTable, shape_check
from .visualize import (ascii_heatmap, ascii_image, confusion_matrix,
                        format_confusion, side_by_side)

__all__ = [
    "benign_accuracy", "attack_success_rate", "measure", "BaAsr",
    "gradcam", "trigger_attention_fraction",
    "PipelineConfig", "PipelineResult", "run_pipeline", "build_attack",
    "train_plain_model",
    "ComparisonTable", "ComparisonRow", "shape_check",
    "ascii_image", "ascii_heatmap", "side_by_side", "confusion_matrix",
    "format_confusion",
    "Aggregate", "ReplicatedResult", "run_replicated",
]
