"""Seed-averaged experiment runs.

The paper reports every number as the average of five independent runs.
:func:`run_replicated` repeats a pipeline config across seeds and
aggregates BA/ASR as mean ± std, so benches and users can reproduce that
protocol (scaled benches default to fewer replicates for CPU budget).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np

from ..parallel.pool import resolve_workers, run_tasks
from .harness import PipelineConfig, run_pipeline


@dataclass(frozen=True)
class Aggregate:
    """Mean ± std of a metric across replicates."""

    mean: float
    std: float
    values: Tuple[float, ...]

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.std:.2f}"


@dataclass
class ReplicatedResult:
    """Per-stage BA/ASR aggregates across seeds."""

    config: PipelineConfig
    seeds: Tuple[int, ...]
    ba: Dict[str, Aggregate]
    asr: Dict[str, Aggregate]

    def stage(self, name: str) -> Tuple[Aggregate, Aggregate]:
        """(BA, ASR) aggregates for one stage name."""
        return self.ba[name], self.asr[name]


def _aggregate(values: List[float]) -> Aggregate:
    arr = np.asarray(values, dtype=np.float64)
    return Aggregate(mean=float(arr.mean()), std=float(arr.std()),
                     values=tuple(float(v) for v in arr))


@dataclass(frozen=True)
class ReplicateTask:
    """One self-contained replicate: run the pipeline, return metrics.

    Picklable (config is a frozen dataclass of primitives) so replicate
    seeds can fan out across worker processes; only the per-stage BA/ASR
    percentages travel back, never the trained models.
    """

    config: PipelineConfig
    stages: Tuple[str, ...]
    label: str = ""

    def run(self) -> Dict[str, Tuple[float, float]]:
        result = run_pipeline(self.config, stages=self.stages)
        out: Dict[str, Tuple[float, float]] = {}
        for name, pair in (("poison", result.poison),
                           ("camouflage", result.camouflage),
                           ("unlearned", result.unlearned)):
            if pair is None:
                continue
            pct = pair.as_percent()
            out[name] = (pct.ba, pct.asr)
        return out


def run_replicated(config: PipelineConfig, num_runs: int = 5,
                   stages: Tuple[str, ...] = ("poison", "camouflage",
                                              "unlearn"),
                   seed_stride: int = 1000,
                   workers: int = 1) -> ReplicatedResult:
    """Run the pipeline across ``num_runs`` seeds and aggregate.

    Each replicate offsets ``config.seed`` by ``i * seed_stride``, which
    reseeds the dataset generation, poison/camouflage selection, model
    init and batching together — independent end-to-end runs, exactly
    the paper's protocol.

    ``workers > 1`` (or 0 = auto) fans the replicates out across worker
    processes; every replicate is fully seeded by its config, so the
    aggregates are bit-identical to the serial order.  When replicates
    run in the pool, each pipeline's own ``workers`` is forced to 1 —
    pool workers are daemonic and cannot spawn nested pools.
    """
    if num_runs < 1:
        raise ValueError("num_runs must be >= 1")
    seeds = tuple(config.seed + i * seed_stride for i in range(num_runs))
    effective = resolve_workers(workers)
    # A single replicate runs inline (no pool), so its pipeline may keep
    # its own shard parallelism; only a real fan-out must force it to 1.
    # Intra-op threads follow the same composition rule as the SISA
    # dispatcher: pooled replicates default (auto=0) to 1 conv thread so
    # processes × threads stays at core count; explicit >1 is honored.
    pooled = effective > 1 and num_runs > 1
    threads = config.intra_op_threads
    tasks = [ReplicateTask(
        config=replace(config, seed=seed,
                       workers=1 if pooled else config.workers,
                       intra_op_threads=(1 if threads == 0 else threads)
                       if pooled else threads),
        stages=stages, label=f"replicate-seed-{seed}") for seed in seeds]
    per_stage_ba: Dict[str, List[float]] = {}
    per_stage_asr: Dict[str, List[float]] = {}
    for metrics in run_tasks(tasks, workers=effective):
        for name, (ba, asr) in metrics.items():
            per_stage_ba.setdefault(name, []).append(ba)
            per_stage_asr.setdefault(name, []).append(asr)
    return ReplicatedResult(
        config=config, seeds=seeds,
        ba={k: _aggregate(v) for k, v in per_stage_ba.items()},
        asr={k: _aggregate(v) for k, v in per_stage_asr.items()})
