"""Seed-averaged experiment runs.

The paper reports every number as the average of five independent runs.
:func:`run_replicated` repeats a pipeline config across seeds and
aggregates BA/ASR as mean ± std, so benches and users can reproduce that
protocol (scaled benches default to fewer replicates for CPU budget).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from .harness import PipelineConfig, run_pipeline
from .metrics import BaAsr


@dataclass(frozen=True)
class Aggregate:
    """Mean ± std of a metric across replicates."""

    mean: float
    std: float
    values: Tuple[float, ...]

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.std:.2f}"


@dataclass
class ReplicatedResult:
    """Per-stage BA/ASR aggregates across seeds."""

    config: PipelineConfig
    seeds: Tuple[int, ...]
    ba: Dict[str, Aggregate]
    asr: Dict[str, Aggregate]

    def stage(self, name: str) -> Tuple[Aggregate, Aggregate]:
        """(BA, ASR) aggregates for one stage name."""
        return self.ba[name], self.asr[name]


def _aggregate(values: List[float]) -> Aggregate:
    arr = np.asarray(values, dtype=np.float64)
    return Aggregate(mean=float(arr.mean()), std=float(arr.std()),
                     values=tuple(float(v) for v in arr))


def run_replicated(config: PipelineConfig, num_runs: int = 5,
                   stages: Tuple[str, ...] = ("poison", "camouflage",
                                              "unlearn"),
                   seed_stride: int = 1000) -> ReplicatedResult:
    """Run the pipeline across ``num_runs`` seeds and aggregate.

    Each replicate offsets ``config.seed`` by ``i * seed_stride``, which
    reseeds the dataset generation, poison/camouflage selection, model
    init and batching together — independent end-to-end runs, exactly
    the paper's protocol.
    """
    if num_runs < 1:
        raise ValueError("num_runs must be >= 1")
    seeds = tuple(config.seed + i * seed_stride for i in range(num_runs))
    per_stage_ba: Dict[str, List[float]] = {}
    per_stage_asr: Dict[str, List[float]] = {}
    for seed in seeds:
        result = run_pipeline(replace(config, seed=seed), stages=stages)
        for name, pair in (("poison", result.poison),
                           ("camouflage", result.camouflage),
                           ("unlearned", result.unlearned)):
            if pair is None:
                continue
            pct = pair.as_percent()
            per_stage_ba.setdefault(name, []).append(pct.ba)
            per_stage_asr.setdefault(name, []).append(pct.asr)
    return ReplicatedResult(
        config=config, seeds=seeds,
        ba={k: _aggregate(v) for k, v in per_stage_ba.items()},
        asr={k: _aggregate(v) for k, v in per_stage_asr.items()})
