"""Terminal visualization helpers.

Render images, GradCAM heatmaps and confusion matrices as ASCII/Unicode
blocks so the examples can *show* what the paper's figures show without
a plotting stack (this environment has no matplotlib).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

# Ten-step luminance ramp, dark -> bright.
_RAMP = " .:-=+*#%@"


def ascii_image(image: np.ndarray, width: Optional[int] = None) -> str:
    """Render a (C, H, W) or (H, W) image in [0, 1] as ASCII luminance."""
    arr = np.asarray(image, dtype=np.float32)
    if arr.ndim == 3:
        arr = arr.mean(axis=0)
    if arr.ndim != 2:
        raise ValueError(f"expected (C,H,W) or (H,W), got {arr.shape}")
    arr = np.clip(arr, 0.0, 1.0)
    if width is not None and width != arr.shape[1]:
        step = arr.shape[1] / width
        cols = (np.arange(width) * step).astype(int)
        arr = arr[:, cols]
    idx = np.minimum((arr * len(_RAMP)).astype(int), len(_RAMP) - 1)
    return "\n".join("".join(_RAMP[v] for v in row) for row in idx)


def ascii_heatmap(heat: np.ndarray, mask: Optional[np.ndarray] = None) -> str:
    """Render a (H, W) heatmap in [0, 1]; optionally outline a mask.

    Masked positions are upper-cased via a '#'-overlay so the trigger
    region is visible inside the CAM rendering.
    """
    arr = np.clip(np.asarray(heat, dtype=np.float32), 0.0, 1.0)
    if arr.ndim != 2:
        raise ValueError(f"expected (H,W), got {arr.shape}")
    idx = np.minimum((arr * len(_RAMP)).astype(int), len(_RAMP) - 1)
    rows = []
    for r in range(arr.shape[0]):
        chars = []
        for c in range(arr.shape[1]):
            ch = _RAMP[idx[r, c]]
            if mask is not None and mask[r, c]:
                ch = "#" if arr[r, c] > 0.5 else "o"
            chars.append(ch)
        rows.append("".join(chars))
    return "\n".join(rows)


def side_by_side(blocks: Sequence[str], titles: Sequence[str],
                 gap: int = 3) -> str:
    """Join multi-line string blocks horizontally with titles."""
    if len(blocks) != len(titles):
        raise ValueError("blocks and titles must align")
    split = [b.split("\n") for b in blocks]
    widths = [max((len(line) for line in lines), default=0)
              for lines in split]
    height = max(len(lines) for lines in split)
    sep = " " * gap
    header = sep.join(t.ljust(w) for t, w in zip(titles, widths))
    out = [header]
    for r in range(height):
        row = []
        for lines, w in zip(split, widths):
            cell = lines[r] if r < len(lines) else ""
            row.append(cell.ljust(w))
        out.append(sep.join(row))
    return "\n".join(out)


def confusion_matrix(true_labels: np.ndarray, predicted: np.ndarray,
                     num_classes: Optional[int] = None) -> np.ndarray:
    """Counts matrix with rows = true class, columns = predicted."""
    true_labels = np.asarray(true_labels, dtype=np.int64)
    predicted = np.asarray(predicted, dtype=np.int64)
    if true_labels.shape != predicted.shape:
        raise ValueError("label arrays must align")
    k = num_classes or int(max(true_labels.max(), predicted.max())) + 1
    matrix = np.zeros((k, k), dtype=np.int64)
    np.add.at(matrix, (true_labels, predicted), 1)
    return matrix


def format_confusion(matrix: np.ndarray,
                     highlight_column: Optional[int] = None) -> str:
    """Aligned text rendering of a confusion matrix.

    ``highlight_column`` marks a predicted class (e.g. the backdoor
    target) with a ``*`` header — triggered inputs pile up there.
    """
    k = matrix.shape[0]
    heads = [f"p{j}{'*' if j == highlight_column else ''}" for j in range(k)]
    width = max(5, max(len(h) for h in heads) + 1,
                len(str(matrix.max())) + 1)
    lines = ["     " + "".join(h.rjust(width) for h in heads)]
    for i in range(k):
        row = "".join(str(v).rjust(width) for v in matrix[i])
        lines.append(f"t{i:<3d} {row}")
    return "\n".join(lines)
