"""End-to-end ReVeil experiment harness.

One call runs the paper's three scenarios for a (dataset, attack) pair:

- **poisoning** — provider trains on ``D ∪ D_P`` (Table II 'Poison' rows);
- **camouflaging** — provider trains on ``D ∪ D_P ∪ D_C``
  (Table II 'Camouflage' rows, the pre-deployment state);
- **unlearning** — the adversary's deletion request removes ``D_C`` via
  SISA and the backdoor returns (Fig. 5 third bars).

The harness owns all seeding so benches and examples stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .. import nn
from ..attacks.registry import get_attack
from ..core.camouflage import CamouflageConfig
from ..core.reveil import ReVeilAttack, ReVeilBundle
from ..data.dataset import ArrayDataset
from ..data.registry import get_profile, load_dataset
from ..models.base import ImageClassifier
from ..models.registry import build_model
from ..parallel.tasks import ModelSpec
from ..train import TrainConfig, train_model
from ..unlearning.sisa import SISAConfig, SISAEnsemble
from .metrics import BaAsr, measure


@dataclass(frozen=True)
class PipelineConfig:
    """Declarative description of one ReVeil experiment run."""

    dataset: str = "cifar10-bench"
    model: str = "small_cnn"
    model_scale: str = "bench"
    attack: str = "A1"
    attack_scale: str = "bench"
    poison_ratio: Optional[float] = None    # None -> attack spec default
    camouflage_ratio: float = 5.0           # cr (paper default)
    noise_std: float = 1e-3                 # σ (paper default)
    epochs: int = 25
    lr: float = 3e-3
    batch_size: int = 64
    sisa_shards: int = 1                    # paper: naive SISA = 1/1
    sisa_slices: int = 1
    seed: int = 0
    workers: int = 1                        # SISA shard pool: 1=serial, 0=auto
    intra_op_threads: int = 1               # conv-kernel threads: 1=serial, 0=auto
    state_shm: bool = True                  # pooled shard states return via shm


@dataclass
class PipelineResult:
    """Artifacts + measurements of one harness run."""

    config: PipelineConfig
    bundle: ReVeilBundle
    clean_test: ArrayDataset
    attack_test: ArrayDataset
    target_label: int
    poison: Optional[BaAsr] = None
    camouflage: Optional[BaAsr] = None
    unlearned: Optional[BaAsr] = None
    poison_model: Optional[ImageClassifier] = None
    camouflage_model: Optional[ImageClassifier] = None
    unlearned_model: Optional[ImageClassifier] = None
    provider: Optional[SISAEnsemble] = None
    unlearn_stats: Dict[str, int] = field(default_factory=dict)

    def model_store(self, name: Optional[str] = None,
                    activate: Optional[str] = None):
        """The run's stage models as a :class:`repro.serve.ModelStore`.

        Versions are stage names (``poison`` / ``camouflage`` /
        ``unlearned``).  Every consumer of the store — repeated STRIP /
        Neural Cleanse / Beatrix sweeps, the serving scheduler — then
        draws its folded inference copy from the shared fingerprint
        cache, so each trained model is folded exactly once no matter
        how many detectors sweep it.
        """
        from ..serve.scenario import serving_store
        return serving_store(self, name=name, activate=activate)


def _train_config(cfg: PipelineConfig) -> TrainConfig:
    return TrainConfig(epochs=cfg.epochs, lr=cfg.lr,
                       batch_size=cfg.batch_size, seed=cfg.seed + 101)


def build_attack(cfg: PipelineConfig, image_size: int,
                 target_label: int) -> ReVeilAttack:
    """Construct the ReVeil adversary described by a config."""
    spec = get_attack(cfg.attack, scale=cfg.attack_scale)
    trigger = spec.build(image_size)
    pr = cfg.poison_ratio if cfg.poison_ratio is not None else spec.poison_ratio
    camo = CamouflageConfig(camouflage_ratio=cfg.camouflage_ratio,
                            noise_std=cfg.noise_std, seed=cfg.seed + 7)
    return ReVeilAttack(trigger, target_label, pr, camouflage=camo,
                        seed=cfg.seed + 13)


def run_pipeline(cfg: PipelineConfig,
                 stages: tuple = ("poison", "camouflage", "unlearn"),
                 ) -> PipelineResult:
    """Run the requested scenario stages and measure BA/ASR for each.

    ``"unlearn"`` implies a provider (SISA) trained on the camouflaged
    mixture; ``"camouflage"`` without ``"unlearn"`` trains a plain model
    (cheaper, and yields a single model for defense evaluation).
    ``"provider"`` trains the SISA provider on the camouflaged mixture
    but leaves the deletion to the caller — the entry point for the
    online unlearning plane, where ``result.provider`` keeps serving
    while ``/v1/forget`` requests retrain it incrementally.

    ``cfg.intra_op_threads`` scopes the conv-kernel thread pool over the
    whole run (plain trainings and measurement); the SISA stage re-derives
    its own setting so shard *processes* never multiply it.
    """
    unknown = set(stages) - {"poison", "camouflage", "unlearn", "provider"}
    if unknown:
        raise ValueError(f"unknown stages: {sorted(unknown)}")
    with nn.intra_op_threads(cfg.intra_op_threads):
        return _run_pipeline_inner(cfg, stages)


def _run_pipeline_inner(cfg: PipelineConfig, stages: tuple) -> PipelineResult:
    profile = get_profile(cfg.dataset)
    train, test, _ = load_dataset(cfg.dataset, seed=cfg.seed)
    target = profile.target_label
    attack = build_attack(cfg, profile.spec.image_size, target)
    bundle = attack.craft(train)
    attack_test = attack.attack_test_set(test)
    tcfg = _train_config(cfg)

    result = PipelineResult(config=cfg, bundle=bundle, clean_test=test,
                            attack_test=attack_test, target_label=target)

    if "poison" in stages:
        nn.manual_seed(cfg.seed + 1)
        model = build_model(cfg.model, profile.num_classes, scale=cfg.model_scale)
        train_model(model, bundle.mixture_without_camouflage(), tcfg)
        result.poison_model = model
        result.poison = measure(model, test, attack_test, target)

    needs_provider = "unlearn" in stages or "provider" in stages
    if "camouflage" in stages or needs_provider:
        if needs_provider:
            sisa_cfg = SISAConfig(num_shards=cfg.sisa_shards,
                                  num_slices=cfg.sisa_slices,
                                  train=tcfg, seed=cfg.seed + 2,
                                  workers=cfg.workers,
                                  intra_op_threads=cfg.intra_op_threads,
                                  state_shm=cfg.state_shm)
            factory = ModelSpec(cfg.model, profile.num_classes,
                                scale=cfg.model_scale)
            provider = SISAEnsemble(factory, sisa_cfg).fit(bundle.train_mixture)
            result.provider = provider
            result.camouflage = measure(provider, test, attack_test, target)
            if cfg.sisa_shards == 1:
                # Unlearning retrains the shard model in place, so keep an
                # independent snapshot of the pre-unlearning model.
                frozen = build_model(cfg.model, profile.num_classes,
                                     scale=cfg.model_scale)
                frozen.load_state_dict(provider.state_dict())
                frozen.eval()
                result.camouflage_model = frozen
        else:
            nn.manual_seed(cfg.seed + 2)
            model = build_model(cfg.model, profile.num_classes,
                                scale=cfg.model_scale)
            train_model(model, bundle.train_mixture, tcfg)
            result.camouflage_model = model
            result.camouflage = measure(model, test, attack_test, target)

    if "unlearn" in stages:
        result.unlearn_stats = result.provider.unlearn(
            bundle.unlearning_request_ids)
        result.unlearned = measure(result.provider, test, attack_test, target)
        if cfg.sisa_shards == 1:
            result.unlearned_model = result.provider.shard_model(0)

    return result


def train_plain_model(cfg: PipelineConfig, dataset: ArrayDataset,
                      num_classes: int, seed_offset: int = 0) -> ImageClassifier:
    """Train one model on an arbitrary dataset with the config's recipe.

    Used by benches that need custom mixtures (e.g. Fig. 2's noisy-poison
    model f_N).
    """
    nn.manual_seed(cfg.seed + seed_offset)
    model = build_model(cfg.model, num_classes, scale=cfg.model_scale)
    with nn.intra_op_threads(cfg.intra_op_threads):
        train_model(model, dataset, _train_config(cfg))
    return model
