"""Paper-vs-measured comparison tables.

Every benchmark ends by printing one of these, so the console output of
``pytest benchmarks/ --benchmark-only -s`` reads like the paper's
evaluation section with a 'measured' column appended.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ComparisonRow:
    experiment: str
    metric: str
    paper: Optional[float]
    measured: float
    note: str = ""


@dataclass
class ComparisonTable:
    """Collects (paper, measured) pairs and renders aligned text."""

    title: str
    rows: List[ComparisonRow] = field(default_factory=list)

    def add(self, experiment: str, metric: str, paper: Optional[float],
            measured: float, note: str = "") -> None:
        self.rows.append(ComparisonRow(experiment, metric, paper,
                                       float(measured), note))

    def render(self) -> str:
        header = (f"{'experiment':<28} {'metric':<22} {'paper':>9} "
                  f"{'measured':>9}  note")
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        for row in self.rows:
            paper = f"{row.paper:9.2f}" if row.paper is not None else "        —"
            lines.append(f"{row.experiment:<28} {row.metric:<22} {paper} "
                         f"{row.measured:9.2f}  {row.note}")
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render() + "\n")


def shape_check(description: str, condition: bool) -> str:
    """Render a qualitative-shape assertion result for bench output."""
    status = "OK " if condition else "MISS"
    return f"[{status}] {description}"
