"""GradCAM (Selvaraju et al., ICCV 2017) — used for the paper's Fig. 2.

GradCAM localizes the input evidence for a class: channel weights are
the spatial mean of ∂(class logit)/∂(feature map); the CAM is the
ReLU-rectified weighted sum of feature channels, upsampled to the input.

Fig. 2 shows that a plainly-poisoned model f_B focuses its CAM on the
trigger patch while the noisy-poison model f_N disperses attention.
:func:`trigger_attention_fraction` quantifies that as the CAM mass inside
the trigger mask, which the Fig. 2 benchmark compares across models.
"""

from __future__ import annotations


import numpy as np

from ..models.base import ImageClassifier
from ..nn.tensor import Tensor


def gradcam(model: ImageClassifier, images: np.ndarray,
            target_class) -> np.ndarray:
    """Compute GradCAM heatmaps (N, H, W) in [0, 1].

    ``target_class`` is either a single class id applied to every sample
    or a per-sample integer array (e.g. the model's own predictions, as
    in the paper's combined predicted/target view).  The heatmap is
    upsampled by repetition from the final feature-map resolution to the
    input resolution and max-normalized per sample.
    """
    model.eval()
    x = Tensor(np.asarray(images, dtype=np.float32))
    logits, feats = model.forward_with_features(x)
    feats.retain_grad()
    n = logits.shape[0]
    if np.isscalar(target_class):
        classes = np.full(n, int(target_class), dtype=np.int64)
    else:
        classes = np.asarray(target_class, dtype=np.int64)
        if classes.shape != (n,):
            raise ValueError(f"target_class must be scalar or shape ({n},)")
    target = logits[np.arange(n), classes].sum()
    target.backward()
    if feats.grad is None:
        raise RuntimeError("feature gradients were not recorded")

    weights = feats.grad.mean(axis=(2, 3), keepdims=True)      # (N, C, 1, 1)
    cam = np.maximum((weights * feats.data).sum(axis=1), 0.0)  # (N, h', w')

    n, hf, wf = cam.shape
    h, w = images.shape[2], images.shape[3]
    if (hf, wf) != (h, w):
        cam = np.repeat(np.repeat(cam, h // hf, axis=1), w // wf, axis=2)
        if cam.shape[1] != h or cam.shape[2] != w:
            raise ValueError("input size must be a multiple of the feature size")
    peak = cam.max(axis=(1, 2), keepdims=True)
    return (cam / np.maximum(peak, 1e-12)).astype(np.float32)


def trigger_attention_fraction(model: ImageClassifier, images: np.ndarray,
                               target_class,
                               trigger_mask: np.ndarray) -> float:
    """Mean fraction of CAM mass falling inside the trigger region.

    ``trigger_mask`` is a boolean (H, W) array (e.g. from
    :meth:`repro.attacks.BadNetsTrigger.mask`).  A backdoored model that
    relies on the trigger concentrates CAM mass there; Fig. 2's
    qualitative comparison becomes this scalar.
    """
    mask = np.asarray(trigger_mask, dtype=bool)
    if mask.shape != images.shape[2:]:
        raise ValueError(f"mask {mask.shape} does not match images "
                         f"{images.shape[2:]}")
    cams = gradcam(model, images, target_class)
    total = cams.sum(axis=(1, 2)) + 1e-12
    inside = cams[:, mask].sum(axis=1)
    return float((inside / total).mean())
