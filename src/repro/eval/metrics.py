"""Evaluation metrics: benign accuracy (BA) and attack success rate (ASR).

Paper §II: BA is accuracy on clean test samples; ASR is the fraction of
triggered (non-target-class) samples classified as the target label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..train import predict_labels
from ..unlearning.base import UnlearningMethod

Predictor = Union[nn.Module, UnlearningMethod]


def _labels_of(predictor: Predictor, images: np.ndarray) -> np.ndarray:
    if isinstance(predictor, UnlearningMethod):
        return predictor.predict_labels(images)
    return predict_labels(predictor, images)


def benign_accuracy(predictor: Predictor, clean_test: ArrayDataset) -> float:
    """BA: fraction of clean test samples classified correctly."""
    if len(clean_test) == 0:
        raise ValueError("empty test set")
    preds = _labels_of(predictor, clean_test.images)
    return float((preds == clean_test.labels).mean())


def attack_success_rate(predictor: Predictor, triggered_test: ArrayDataset,
                        target_label: int) -> float:
    """ASR: fraction of triggered samples classified as ``target_label``.

    ``triggered_test`` should contain only samples whose true class is
    not the target (see :meth:`repro.attacks.Poisoner.attack_test_set`).
    """
    if len(triggered_test) == 0:
        raise ValueError("empty triggered test set")
    preds = _labels_of(predictor, triggered_test.images)
    return float((preds == target_label).mean())


@dataclass(frozen=True)
class BaAsr:
    """A (BA, ASR) measurement pair, in percent like the paper tables."""

    ba: float
    asr: float

    def as_percent(self) -> "BaAsr":
        return BaAsr(ba=self.ba * 100.0, asr=self.asr * 100.0)

    def __str__(self) -> str:
        return f"BA={self.ba:.2f} ASR={self.asr:.2f}"


def measure(predictor: Predictor, clean_test: ArrayDataset,
            triggered_test: ArrayDataset, target_label: int) -> BaAsr:
    """Convenience: both metrics at once (fractions in [0, 1])."""
    return BaAsr(ba=benign_accuracy(predictor, clean_test),
                 asr=attack_success_rate(predictor, triggered_test, target_label))
