"""ReVeil reproduction: concealed backdoor attacks via machine unlearning.

Top-level package layout:

- :mod:`repro.nn` — numpy autograd deep-learning substrate.
- :mod:`repro.models` — ResNet18 / MobileNetV2 / EfficientNetB0 /
  WideResNet50 (width-scalable) + SmallCNN.
- :mod:`repro.data` — synthetic stand-ins for CIFAR10 / GTSRB / CIFAR100 /
  Tiny-ImageNet, loaders and transforms.
- :mod:`repro.attacks` — BadNets, WaNet, FTrojan, BppAttack triggers and
  the poisoning pipeline.
- :mod:`repro.core` — the ReVeil contribution: camouflage-sample
  generation and the four-stage concealed-backdoor orchestration.
- :mod:`repro.unlearning` — SISA exact unlearning + approximate methods.
- :mod:`repro.defenses` — STRIP, Neural Cleanse, Beatrix detectors.
- :mod:`repro.eval` — BA/ASR metrics, GradCAM, experiment harness.
- :mod:`repro.parallel` — deterministic process-pool execution with
  shared-memory dataset handoff (SISA shards, replicated runs, grids).
"""

__version__ = "1.1.0"

__all__ = ["nn", "models", "data", "attacks", "core", "unlearning",
           "defenses", "eval", "parallel", "__version__"]
