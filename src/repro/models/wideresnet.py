"""WideResNet-50 (Zagoruyko & Komodakis / torchvision wide_resnet50_2) —
the paper pairs it with Tiny-ImageNet.

``wide_resnet50_2`` is a ResNet-50 (bottleneck blocks, stage depths
3-4-6-3) whose bottleneck *inner* width is doubled.  We reuse the
:class:`repro.models.resnet.Bottleneck` block and expose ``width`` /
``stage_depths`` knobs for the scaled CPU benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from .resnet import Bottleneck, ResNet


def wide_resnet50(num_classes: int, width: int = 64, widen_factor: float = 2.0,
                  stage_depths: Sequence[int] = (3, 4, 6, 3),
                  in_channels: int = 3) -> ResNet:
    """WideResNet-50-2 (paper: Tiny-ImageNet model).

    ``width=64, widen_factor=2, stage_depths=(3,4,6,3)`` is the true
    configuration; benchmarks shrink ``width`` and the depths.
    """
    return ResNet(num_classes, Bottleneck, stage_depths, width=width,
                  width_factor=widen_factor, in_channels=in_channels)


def wide_resnet_tiny(num_classes: int, in_channels: int = 3) -> ResNet:
    """Two-stage wide bottleneck net for fast unit tests."""
    return ResNet(num_classes, Bottleneck, stage_depths=(1, 1), width=4,
                  width_factor=2.0, in_channels=in_channels)
