"""MobileNetV2 (Sandler et al., 2018) — the paper pairs it with GTSRB.

Implements the genuine inverted-residual bottleneck: 1×1 expansion →
3×3 depthwise conv (``groups == channels``) → 1×1 linear projection, with
a residual connection when shapes match.  The full (t, c, n, s) table is
the original one; ``width_mult`` and ``depth_mult`` scale it down for CPU
benchmarks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..nn.layers import BatchNorm2d, Conv2d, ReLU6
from ..nn.module import Module, ModuleList, Sequential
from ..nn.tensor import Tensor
from .base import ImageClassifier

# Original MobileNetV2 configuration: (expansion t, channels c, repeats n, stride s)
MOBILENET_V2_CONFIG: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)

# Reduced configuration for the scaled CPU benchmarks: same block algebra,
# fewer stages/repeats so a forward pass costs milliseconds.
MOBILENET_V2_SMALL_CONFIG: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 8, 1, 1),
    (6, 16, 2, 2),
    (6, 24, 2, 2),
    (6, 32, 1, 1),
)


def _round_channels(channels: float, divisor: int = 4) -> int:
    """Round to the nearest multiple of ``divisor`` (min one divisor)."""
    return max(divisor, int(channels + divisor / 2) // divisor * divisor)


def conv_bn_relu6(in_ch: int, out_ch: int, kernel: int, stride: int = 1,
                  groups: int = 1) -> Sequential:
    return Sequential(
        Conv2d(in_ch, out_ch, kernel, stride=stride, padding=kernel // 2,
               groups=groups, bias=False),
        BatchNorm2d(out_ch),
        ReLU6(),
    )


class InvertedResidual(Module):
    """MobileNetV2 block: expand (1×1) → depthwise (3×3) → project (1×1)."""

    def __init__(self, in_ch: int, out_ch: int, stride: int, expand_ratio: int):
        super().__init__()
        hidden = in_ch * expand_ratio
        self.use_residual = (stride == 1 and in_ch == out_ch)

        layers: List[Module] = []
        if expand_ratio != 1:
            layers.append(conv_bn_relu6(in_ch, hidden, 1))
        # Depthwise conv: one filter per channel.
        layers.append(conv_bn_relu6(hidden, hidden, 3, stride=stride, groups=hidden))
        # Linear (no activation) projection.
        layers.append(Sequential(
            Conv2d(hidden, out_ch, 1, bias=False),
            BatchNorm2d(out_ch),
        ))
        self.body = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.body(x)
        if self.use_residual:
            out = out + x
        return out


class MobileNetV2(ImageClassifier):
    """Width/depth-scalable MobileNetV2 for small (CIFAR-style) inputs."""

    def __init__(self, num_classes: int,
                 config: Sequence[Tuple[int, int, int, int]] = MOBILENET_V2_SMALL_CONFIG,
                 width_mult: float = 1.0, in_channels: int = 3,
                 last_channels: int = 0):
        stem_ch = _round_channels(config[0][1] * width_mult)
        blocks: List[Module] = []
        in_ch = stem_ch
        for t, c, n, s in config:
            out_ch = _round_channels(c * width_mult)
            for i in range(n):
                stride = s if i == 0 else 1
                blocks.append(InvertedResidual(in_ch, out_ch, stride, t))
                in_ch = out_ch
        head_ch = last_channels or _round_channels(in_ch * 4)
        super().__init__(num_classes, head_ch)

        self.stem = conv_bn_relu6(in_channels, stem_ch, 3, stride=1)
        self.blocks = ModuleList(blocks)
        self.head = conv_bn_relu6(in_ch, head_ch, 1)

    def forward_features(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        return self.head(out)


def mobilenet_v2(num_classes: int, width_mult: float = 1.0,
                 in_channels: int = 3, full_size: bool = False) -> MobileNetV2:
    """MobileNetV2 (paper: GTSRB model).

    ``full_size=True`` instantiates the original 7-stage table; default is
    the reduced CPU-friendly table with the same block structure.
    """
    config = MOBILENET_V2_CONFIG if full_size else MOBILENET_V2_SMALL_CONFIG
    return MobileNetV2(num_classes, config=config, width_mult=width_mult,
                       in_channels=in_channels)
