"""``repro.models`` — the paper's four architectures plus a fast test CNN.

Factories: :func:`resnet18`, :func:`mobilenet_v2`, :func:`efficientnet_b0`,
:func:`wide_resnet50`, :func:`small_cnn`; resolve by name/pairing through
:func:`build_model` / :func:`model_for_dataset`.
"""

from .base import ImageClassifier
from .efficientnet import EfficientNet, MBConv, SqueezeExcite, efficientnet_b0
from .mobilenet import InvertedResidual, MobileNetV2, mobilenet_v2
from .registry import (PAPER_PAIRING, available_models, build_model,
                       model_for_dataset)
from .resnet import BasicBlock, Bottleneck, ResNet, resnet18, resnet_tiny
from .smallcnn import SmallCNN, small_cnn
from .wideresnet import wide_resnet50, wide_resnet_tiny

__all__ = [
    "ImageClassifier",
    "ResNet", "BasicBlock", "Bottleneck", "resnet18", "resnet_tiny",
    "MobileNetV2", "InvertedResidual", "mobilenet_v2",
    "EfficientNet", "MBConv", "SqueezeExcite", "efficientnet_b0",
    "wide_resnet50", "wide_resnet_tiny",
    "SmallCNN", "small_cnn",
    "PAPER_PAIRING", "available_models", "build_model", "model_for_dataset",
]
