"""SmallCNN — a compact conv net for fast experiments and tests.

Not part of the paper's model zoo; used by the scaled benchmark profiles
when the experiment sweeps many trainings (e.g. Fig. 3's 4×4×5 grid) and
a few-second-per-model budget is required.  It keeps the properties that
matter for ReVeil: convolutional feature extraction, batch norm, a
spatially-local receptive field that can latch onto patch triggers, and a
GAP+linear head exposing features for GradCAM/Beatrix.
"""

from __future__ import annotations

from ..nn.layers import BatchNorm2d, Conv2d, MaxPool2d, ReLU
from ..nn.module import Sequential
from ..nn.tensor import Tensor
from .base import ImageClassifier


class SmallCNN(ImageClassifier):
    """Three conv blocks → GAP → linear.  ~20k parameters at width 16."""

    def __init__(self, num_classes: int, width: int = 16, in_channels: int = 3):
        super().__init__(num_classes, feature_dim=width * 4)
        self.features = Sequential(
            Conv2d(in_channels, width, 3, padding=1, bias=False),
            BatchNorm2d(width),
            ReLU(),
            Conv2d(width, width * 2, 3, padding=1, bias=False),
            BatchNorm2d(width * 2),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width * 2, width * 4, 3, padding=1, bias=False),
            BatchNorm2d(width * 4),
            ReLU(),
            MaxPool2d(2),
        )

    def forward_features(self, x: Tensor) -> Tensor:
        return self.features(x)


def small_cnn(num_classes: int, width: int = 16, in_channels: int = 3) -> SmallCNN:
    """Factory matching the registry call convention."""
    return SmallCNN(num_classes, width=width, in_channels=in_channels)
