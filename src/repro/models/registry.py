"""Model registry mirroring the paper's dataset→architecture pairing.

The paper trains: ResNet18 on CIFAR10, MobileNetV2 on GTSRB,
EfficientNetB0 on CIFAR100 and WideResNet50 on Tiny-ImageNet.
``build_model`` resolves a model by name with a scale profile:

- ``"paper"`` — the true architecture sizes (slow on CPU; exists so the
  topology is honest and testable).
- ``"bench"`` — width-scaled versions used by the scaled experiments.
- ``"tiny"`` — smallest variants for unit tests.
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import ImageClassifier
from .efficientnet import efficientnet_b0
from .mobilenet import mobilenet_v2
from .resnet import resnet18, resnet_tiny
from .smallcnn import small_cnn
from .wideresnet import wide_resnet50, wide_resnet_tiny

ModelFactory = Callable[..., ImageClassifier]

# Dataset name -> model name, as in the paper's experimental setup.
PAPER_PAIRING: Dict[str, str] = {
    "cifar10": "resnet18",
    "gtsrb": "mobilenet_v2",
    "cifar100": "efficientnet_b0",
    "tiny": "wide_resnet50",
}


def _build_resnet18(num_classes: int, scale: str, in_channels: int) -> ImageClassifier:
    if scale == "paper":
        return resnet18(num_classes, width=64, in_channels=in_channels)
    if scale == "bench":
        return resnet18(num_classes, width=8, in_channels=in_channels,
                        stage_depths=(1, 1, 2))
    return resnet_tiny(num_classes, in_channels=in_channels)


def _build_mobilenet(num_classes: int, scale: str, in_channels: int) -> ImageClassifier:
    if scale == "paper":
        return mobilenet_v2(num_classes, in_channels=in_channels, full_size=True)
    if scale == "bench":
        return mobilenet_v2(num_classes, width_mult=1.0, in_channels=in_channels)
    return mobilenet_v2(num_classes, width_mult=0.5, in_channels=in_channels)


def _build_efficientnet(num_classes: int, scale: str, in_channels: int) -> ImageClassifier:
    if scale == "paper":
        return efficientnet_b0(num_classes, in_channels=in_channels, full_size=True)
    if scale == "bench":
        return efficientnet_b0(num_classes, width_mult=1.0, in_channels=in_channels)
    return efficientnet_b0(num_classes, width_mult=0.5, in_channels=in_channels)


def _build_wideresnet(num_classes: int, scale: str, in_channels: int) -> ImageClassifier:
    if scale == "paper":
        return wide_resnet50(num_classes, in_channels=in_channels)
    if scale == "bench":
        return wide_resnet50(num_classes, width=8, widen_factor=2.0,
                             stage_depths=(1, 1, 1), in_channels=in_channels)
    return wide_resnet_tiny(num_classes, in_channels=in_channels)


def _build_smallcnn(num_classes: int, scale: str, in_channels: int) -> ImageClassifier:
    width = {"paper": 32, "bench": 16, "tiny": 8}[scale]
    return small_cnn(num_classes, width=width, in_channels=in_channels)


_FACTORIES: Dict[str, Callable[[int, str, int], ImageClassifier]] = {
    "resnet18": _build_resnet18,
    "mobilenet_v2": _build_mobilenet,
    "efficientnet_b0": _build_efficientnet,
    "wide_resnet50": _build_wideresnet,
    "small_cnn": _build_smallcnn,
}


def available_models() -> list:
    """Names accepted by :func:`build_model`."""
    return sorted(_FACTORIES)


def build_model(name: str, num_classes: int, scale: str = "bench",
                in_channels: int = 3) -> ImageClassifier:
    """Instantiate a model by name at the requested scale profile."""
    if name not in _FACTORIES:
        raise KeyError(f"unknown model {name!r}; choose from {available_models()}")
    if scale not in ("paper", "bench", "tiny"):
        raise ValueError(f"unknown scale {scale!r}; choose paper/bench/tiny")
    return _FACTORIES[name](num_classes, scale, in_channels)


def model_for_dataset(dataset: str, num_classes: int, scale: str = "bench",
                      in_channels: int = 3) -> ImageClassifier:
    """Build the model the paper pairs with ``dataset``."""
    if dataset not in PAPER_PAIRING:
        raise KeyError(f"unknown dataset {dataset!r}; choose from {sorted(PAPER_PAIRING)}")
    return build_model(PAPER_PAIRING[dataset], num_classes, scale=scale,
                       in_channels=in_channels)
