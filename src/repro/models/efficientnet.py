"""EfficientNet-B0 (Tan & Le, 2019) — the paper pairs it with CIFAR100.

Implements the genuine MBConv block: 1×1 expansion → 3×3/5×5 depthwise →
squeeze-and-excitation (global pool → bottleneck MLP → sigmoid channel
gate) → 1×1 linear projection, with residual connections on matching
shapes and SiLU activations throughout.  ``width_mult`` scales channel
counts for the CPU benchmarks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..nn import functional as F
from ..nn.layers import BatchNorm2d, Conv2d, Dropout, Linear, SiLU
from ..nn.module import Module, ModuleList, Sequential
from ..nn.tensor import Tensor
from .base import ImageClassifier

# Original EfficientNet-B0 stage table:
# (expansion, channels, repeats, stride, kernel)
EFFICIENTNET_B0_CONFIG: Tuple[Tuple[int, int, int, int, int], ...] = (
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)

# Reduced table for scaled CPU benchmarks (same MBConv algebra).
EFFICIENTNET_SMALL_CONFIG: Tuple[Tuple[int, int, int, int, int], ...] = (
    (1, 8, 1, 1, 3),
    (6, 16, 2, 2, 3),
    (6, 24, 2, 2, 3),
    (6, 32, 1, 1, 3),
)


def _round_channels(channels: float, divisor: int = 4) -> int:
    return max(divisor, int(channels + divisor / 2) // divisor * divisor)


def conv_bn_silu(in_ch: int, out_ch: int, kernel: int, stride: int = 1,
                 groups: int = 1) -> Sequential:
    return Sequential(
        Conv2d(in_ch, out_ch, kernel, stride=stride, padding=kernel // 2,
               groups=groups, bias=False),
        BatchNorm2d(out_ch),
        SiLU(),
    )


class SqueezeExcite(Module):
    """Channel attention: pool → reduce → SiLU → expand → sigmoid gate."""

    def __init__(self, channels: int, reduction: int = 4):
        super().__init__()
        hidden = max(1, channels // reduction)
        self.fc1 = Linear(channels, hidden)
        self.fc2 = Linear(hidden, channels)
        self.act = SiLU()

    def forward(self, x: Tensor) -> Tensor:
        n, c = x.shape[0], x.shape[1]
        squeezed = F.global_avg_pool2d(x)                  # (N, C)
        gate = self.fc2(self.act(self.fc1(squeezed))).sigmoid()
        return x * gate.reshape(n, c, 1, 1)


class MBConv(Module):
    """EfficientNet's mobile inverted bottleneck with squeeze-excitation."""

    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 expand_ratio: int, kernel: int = 3, se_reduction: int = 4):
        super().__init__()
        hidden = in_ch * expand_ratio
        self.use_residual = (stride == 1 and in_ch == out_ch)

        layers: List[Module] = []
        if expand_ratio != 1:
            layers.append(conv_bn_silu(in_ch, hidden, 1))
        layers.append(conv_bn_silu(hidden, hidden, kernel, stride=stride,
                                   groups=hidden))
        self.features = Sequential(*layers)
        self.se = SqueezeExcite(hidden, reduction=se_reduction * expand_ratio)
        self.project = Sequential(
            Conv2d(hidden, out_ch, 1, bias=False),
            BatchNorm2d(out_ch),
        )

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = self.se(out)
        out = self.project(out)
        if self.use_residual:
            out = out + x
        return out


class EfficientNet(ImageClassifier):
    """Width-scalable EfficientNet for small (CIFAR-style) inputs."""

    def __init__(self, num_classes: int,
                 config: Sequence[Tuple[int, int, int, int, int]] = EFFICIENTNET_SMALL_CONFIG,
                 width_mult: float = 1.0, in_channels: int = 3,
                 dropout: float = 0.2):
        stem_ch = _round_channels(config[0][1] * width_mult)
        blocks: List[Module] = []
        in_ch = stem_ch
        for t, c, n, s, k in config:
            out_ch = _round_channels(c * width_mult)
            for i in range(n):
                stride = s if i == 0 else 1
                blocks.append(MBConv(in_ch, out_ch, stride, t, kernel=k))
                in_ch = out_ch
        head_ch = _round_channels(in_ch * 4)
        super().__init__(num_classes, head_ch)

        self.stem = conv_bn_silu(in_channels, stem_ch, 3, stride=1)
        self.blocks = ModuleList(blocks)
        self.head = conv_bn_silu(in_ch, head_ch, 1)
        self.dropout = Dropout(dropout)

    def forward_features(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        return self.head(out)

    def forward_with_features(self, x: Tensor):
        feats = self.forward_features(x)
        pooled = self.dropout(F.global_avg_pool2d(feats))
        return self.classifier(pooled), feats


def efficientnet_b0(num_classes: int, width_mult: float = 1.0,
                    in_channels: int = 3, full_size: bool = False) -> EfficientNet:
    """EfficientNet-B0 (paper: CIFAR100 model).

    ``full_size=True`` uses the original 7-stage table; the default
    reduced table keeps the MBConv + SE structure at CPU-friendly size.
    """
    config = EFFICIENTNET_B0_CONFIG if full_size else EFFICIENTNET_SMALL_CONFIG
    return EfficientNet(num_classes, config=config, width_mult=width_mult,
                        in_channels=in_channels)
