"""ResNet (He et al., 2016) — the paper pairs ResNet18 with CIFAR10.

The topology is the genuine ResNet18 one (4 stages × 2 basic blocks,
channel doubling, stride-2 stage entries, identity shortcuts with 1×1
projection on shape change).  A ``width`` knob scales all channel counts
so the model trains on CPU in the scaled benchmarks; ``width=64`` is the
true ResNet18 configuration.  Small inputs (CIFAR-style) use the standard
3×3-stem adaptation instead of the ImageNet 7×7+maxpool stem.
"""

from __future__ import annotations

from typing import List, Sequence

from ..nn.layers import BatchNorm2d, Conv2d, Identity, ReLU
from ..nn.module import Module, ModuleList, Sequential
from ..nn.tensor import Tensor
from .base import ImageClassifier


def conv_bn(in_ch: int, out_ch: int, kernel: int, stride: int = 1,
            padding: int = 0, groups: int = 1) -> Sequential:
    """Conv (no bias) followed by batch norm — the standard ResNet pairing."""
    return Sequential(
        Conv2d(in_ch, out_ch, kernel, stride=stride, padding=padding,
               groups=groups, bias=False),
        BatchNorm2d(out_ch),
    )


class BasicBlock(Module):
    """Two 3×3 convolutions with an additive identity shortcut."""

    expansion = 1

    def __init__(self, in_ch: int, out_ch: int, stride: int = 1):
        super().__init__()
        self.conv1 = conv_bn(in_ch, out_ch, 3, stride=stride, padding=1)
        self.conv2 = conv_bn(out_ch, out_ch, 3, stride=1, padding=1)
        self.relu = ReLU()
        if stride != 1 or in_ch != out_ch:
            self.shortcut = conv_bn(in_ch, out_ch, 1, stride=stride)
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.conv1(x))
        out = self.conv2(out)
        out = out + self.shortcut(x)
        return self.relu(out)


class Bottleneck(Module):
    """1×1 reduce → 3×3 → 1×1 expand (×4) block, used by WideResNet50."""

    expansion = 4

    def __init__(self, in_ch: int, mid_ch: int, stride: int = 1):
        super().__init__()
        out_ch = mid_ch * self.expansion
        self.conv1 = conv_bn(in_ch, mid_ch, 1)
        self.conv2 = conv_bn(mid_ch, mid_ch, 3, stride=stride, padding=1)
        self.conv3 = conv_bn(mid_ch, out_ch, 1)
        self.relu = ReLU()
        if stride != 1 or in_ch != out_ch:
            self.shortcut = conv_bn(in_ch, out_ch, 1, stride=stride)
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.conv1(x))
        out = self.relu(self.conv2(out))
        out = self.conv3(out)
        out = out + self.shortcut(x)
        return self.relu(out)


class ResNet(ImageClassifier):
    """Configurable ResNet over :class:`BasicBlock` or :class:`Bottleneck`."""

    def __init__(self, num_classes: int, block_type: type = BasicBlock,
                 stage_depths: Sequence[int] = (2, 2, 2, 2),
                 width: int = 64, width_factor: float = 1.0,
                 in_channels: int = 3):
        widths = [int(width * width_factor * (2 ** i)) for i in range(len(stage_depths))]
        feature_dim = widths[-1] * block_type.expansion
        super().__init__(num_classes, feature_dim)
        self.block_type = block_type

        self.stem = Sequential(
            Conv2d(in_channels, int(width * width_factor), 3, stride=1,
                   padding=1, bias=False),
            BatchNorm2d(int(width * width_factor)),
            ReLU(),
        )
        blocks: List[Module] = []
        in_ch = int(width * width_factor)
        for stage, (depth, w) in enumerate(zip(stage_depths, widths)):
            for i in range(depth):
                stride = 2 if (stage > 0 and i == 0) else 1
                if block_type is BasicBlock:
                    blocks.append(BasicBlock(in_ch, w, stride=stride))
                    in_ch = w
                else:
                    blocks.append(Bottleneck(in_ch, w, stride=stride))
                    in_ch = w * block_type.expansion
        self.blocks = ModuleList(blocks)

    def forward_features(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        return out


def resnet18(num_classes: int, width: int = 64, in_channels: int = 3,
             stage_depths: Sequence[int] = (2, 2, 2, 2)) -> ResNet:
    """ResNet18 (paper: CIFAR10 model).  ``width=64`` is the true size;
    the scaled benchmarks pass ``width=8``–``16``."""
    return ResNet(num_classes, BasicBlock, stage_depths, width=width,
                  in_channels=in_channels)


def resnet_tiny(num_classes: int, in_channels: int = 3) -> ResNet:
    """Three-stage, one-block-per-stage ResNet for fast unit tests."""
    return ResNet(num_classes, BasicBlock, stage_depths=(1, 1, 1), width=8,
                  in_channels=in_channels)
