"""Common base class for the image-classifier model zoo.

Every model exposes:

- :meth:`forward_features` — the last convolutional feature map
  ``(N, C, H, W)``.  GradCAM (Fig. 2) and Beatrix (Fig. 8) hook here.
- :meth:`forward` — logits ``(N, num_classes)``.
- :meth:`forward_with_features` — both at once, with the feature tensor
  kept on the tape so callers can ``retain_grad()`` it (GradCAM).

The paper's dataset→model pairing (CIFAR10→ResNet18, GTSRB→MobileNetV2,
CIFAR100→EfficientNetB0, Tiny→WideResNet50) is mirrored by
:mod:`repro.models.registry`.
"""

from __future__ import annotations

from typing import Tuple

from ..nn import functional as F
from ..nn.layers import Linear
from ..nn.module import Module
from ..nn.tensor import Tensor


class ImageClassifier(Module):
    """Backbone + global-average-pool + linear head."""

    def __init__(self, num_classes: int, feature_dim: int):
        super().__init__()
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_classes = num_classes
        self.feature_dim = feature_dim
        self.classifier = Linear(feature_dim, num_classes)

    def forward_features(self, x: Tensor) -> Tensor:
        """Return the final conv feature map (N, feature_dim, H, W)."""
        raise NotImplementedError

    def forward_with_features(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Return (logits, feature_map); feature_map stays on the tape."""
        feats = self.forward_features(x)
        pooled = F.global_avg_pool2d(feats)
        return self.classifier(pooled), feats

    def forward(self, x: Tensor) -> Tensor:
        logits, _ = self.forward_with_features(x)
        return logits

    def embed(self, x: Tensor) -> Tensor:
        """Pooled penultimate representation (N, feature_dim)."""
        return F.global_avg_pool2d(self.forward_features(x))
