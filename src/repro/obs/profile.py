"""Per-phase profiling hooks: wall + CPU timers, zero-cost when off.

The instrumented layers — the batcher's dispatch path, the worker
session pipe round-trip, the netstate ship, and the conv-kernel block
layer — each guard their timer with the same module-attribute idiom as
:mod:`repro.reliability.faults`::

    _prof = _profile.ACTIVE
    if _prof is not None:
        token = _prof.start("serve.dispatch")
    ...
    if _prof is not None:
        _prof.stop(token)

One attribute load and a ``None`` test per site: with profiling off
(the default, :data:`ACTIVE` is ``None``) the hot paths pay nothing
measurable.  :func:`profiled` flips it on for a scope; the benches use
that to produce the per-phase breakdown sections.

Wall time is ``time.perf_counter``; CPU time is ``time.thread_time``
(this thread only), so a phase that blocks on a pipe or a condition
variable shows high wall and near-zero CPU — the signature that tells
waiting apart from computing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

Token = Tuple[str, float, float]


class PhaseProfiler:
    """Accumulates per-phase call counts and wall/CPU seconds."""

    def __init__(self):
        self._lock = threading.Lock()
        self._phases: Dict[str, list] = {}

    def start(self, phase: str) -> Token:
        return (phase, time.perf_counter(), time.thread_time())

    def stop(self, token: Token) -> None:
        phase, wall0, cpu0 = token
        wall = time.perf_counter() - wall0
        cpu = time.thread_time() - cpu0
        with self._lock:
            bucket = self._phases.get(phase)
            if bucket is None:
                bucket = self._phases[phase] = [0, 0.0, 0.0]
            bucket[0] += 1
            bucket[1] += wall
            bucket[2] += cpu

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        token = self.start(name)
        try:
            yield
        finally:
            self.stop(token)

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {phase: {"calls": bucket[0], "wall_s": bucket[1],
                            "cpu_s": bucket[2]}
                    for phase, bucket in sorted(self._phases.items())}

    def reset(self) -> None:
        with self._lock:
            self._phases.clear()


#: The live profiler, or ``None`` (the default: profiling disabled).
ACTIVE: Optional[PhaseProfiler] = None


def install(profiler: Optional[PhaseProfiler] = None) -> PhaseProfiler:
    """Enable profiling process-wide; returns the active profiler."""
    global ACTIVE
    ACTIVE = profiler if profiler is not None else PhaseProfiler()
    return ACTIVE


def uninstall() -> Optional[PhaseProfiler]:
    """Disable profiling; returns the profiler that was active."""
    global ACTIVE
    profiler, ACTIVE = ACTIVE, None
    return profiler


@contextmanager
def profiled() -> Iterator[PhaseProfiler]:
    """Scoped enable: profile the body, restore the previous state."""
    global ACTIVE
    previous = ACTIVE
    profiler = install()
    try:
        yield profiler
    finally:
        ACTIVE = previous
