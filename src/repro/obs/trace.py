"""Request tracing: 64-bit trace ids and a bounded flight recorder.

A trace id is minted at the front end — the HTTP handler or the cluster
router — as 16 lowercase hex characters (64 bits), accepted from the
client via the ``X-Trace-Id`` header and echoed back on the response.
It rides the existing envelopes downstream: the predict payload router
→ host, the batcher's request objects, and the dispatch path into the
worker processes — so every span a request leaves behind, at any layer,
carries the same id.

Spans are closed intervals recorded into the process-local
:data:`RECORDER`, a bounded ring buffer (the *flight recorder*): cheap
enough to leave on in production, always holding the last few thousand
spans when something goes wrong.  ``GET /debug/traces`` dumps it; the
smoke lanes write the dump into the CI failure artifact when an
assertion trips.

Invariants the smoke lanes assert:

- **balanced** — every started span is ended (the context manager
  guarantees it even on the exception path), so
  ``spans_started == spans_ended`` at quiesce;
- **no overflow under default load** — the ring never wrapped, so the
  dump is the complete span history, not a suffix.

Fork-aware: a child process (serving worker, cluster host) starts with
an empty recorder and its own mint sequence — spans never leak across
the process boundary, and two processes cannot mint the same id run.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Header carrying the trace id over HTTP (request and response).
TRACE_HEADER = "X-Trace-Id"

#: Default ring capacity: big enough that the tier-2 smoke lanes never
#: wrap, small enough (~a few MB of span dicts) to forget about.
DEFAULT_CAPACITY = 16384

_mint_lock = threading.Lock()
_mint_counter = itertools.count()
_mint_salt: Optional[bytes] = None


def _reset_mint_locked() -> None:
    global _mint_counter, _mint_salt
    _mint_counter = itertools.count()
    _mint_salt = None


def mint_trace_id() -> str:
    """A fresh 64-bit trace id as 16 lowercase hex characters."""
    global _mint_salt
    with _mint_lock:
        if _mint_salt is None:
            _mint_salt = os.urandom(8) + os.getpid().to_bytes(8, "big")
        sequence = next(_mint_counter)
    digest = hashlib.sha1(_mint_salt + sequence.to_bytes(8, "big")).digest()
    return digest[:8].hex()


def valid_trace_id(value) -> bool:
    if not isinstance(value, str) or not 1 <= len(value) <= 16:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def coerce_trace_id(value) -> str:
    """Normalize a caller-supplied trace id; mint one when absent/bad."""
    if valid_trace_id(value):
        return value.lower().rjust(16, "0")
    return mint_trace_id()


class FlightRecorder:
    """Bounded ring buffer of completed span records (thread-safe)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: "deque[dict]" = deque(maxlen=capacity)
        self._started = 0
        self._ended = 0
        self._dropped = 0

    def begin(self) -> None:
        with self._lock:
            self._started += 1

    def record(self, span: dict) -> None:
        with self._lock:
            self._ended += 1
            if len(self._spans) >= self.capacity:
                self._dropped += 1
            self._spans.append(span)

    def dump(self, trace: Optional[str] = None) -> List[dict]:
        """Recorded spans in arrival order (optionally one trace's)."""
        with self._lock:
            spans = list(self._spans)
        if trace is not None:
            spans = [span for span in spans if span.get("trace") == trace]
        return spans

    def stats(self) -> dict:
        with self._lock:
            return {"spans_started": self._started,
                    "spans_ended": self._ended,
                    "spans_dropped": self._dropped,
                    "spans_held": len(self._spans),
                    "capacity": self.capacity}

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._started = 0
            self._ended = 0
            self._dropped = 0


#: The process-local flight recorder every layer records into.
RECORDER = FlightRecorder()

_enabled = True


def set_tracing(enabled: bool) -> bool:
    """Toggle span recording process-wide; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def tracing_enabled() -> bool:
    return _enabled


def record_span(name: str, trace: Optional[str], duration_s: float,
                start_s: Optional[float] = None,
                tags: Optional[Dict] = None) -> None:
    """Record an externally timed span (e.g. a worker-measured kernel)."""
    if not _enabled:
        return
    RECORDER.begin()
    span = {"name": name, "trace": trace,
            "start_s": (time.perf_counter() - duration_s
                        if start_s is None else start_s),
            "dur_s": duration_s}
    if tags:
        span["tags"] = dict(tags)
    RECORDER.record(span)


@contextmanager
def span(name: str, trace: Optional[str] = None,
         **tags) -> Iterator[Optional[dict]]:
    """Time a block and record it as one span.

    Yields the mutable tag dict so the body can attach outcome tags
    (status codes, byte counts) before the span is sealed; yields
    ``None`` when tracing is disabled.  The record lands in ``finally``,
    so spans stay balanced even when the body raises.
    """
    if not _enabled:
        yield None
        return
    RECORDER.begin()
    start = time.perf_counter()
    try:
        yield tags
    finally:
        record = {"name": name, "trace": trace, "start_s": start,
                  "dur_s": time.perf_counter() - start}
        if tags:
            record["tags"] = {key: value for key, value in tags.items()
                              if value is not None}
            if not record["tags"]:
                del record["tags"]
        RECORDER.record(record)


def _reset_after_fork() -> None:
    # Children inherit the parent's ring and mint state but must not
    # report the parent's spans as their own (or re-mint its ids).
    global _mint_lock
    _mint_lock = threading.Lock()
    _reset_mint_locked()
    RECORDER._lock = threading.Lock()
    RECORDER.reset()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)
