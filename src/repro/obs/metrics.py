"""Typed metrics: counters, gauges, log-bucketed histograms, registries.

Every layer of the serving stack used to keep its own hand-rolled,
lock-guarded counter dict.  This module replaces them with three typed
instruments behind a :class:`Registry`:

- :class:`Counter` — monotonically increasing integer (requests served,
  batches dispatched, retries burned);
- :class:`Gauge` — a level that moves both ways (last activation acks,
  queue depth rendered at scrape time);
- :class:`Histogram` — observation counts over **fixed log-spaced
  bucket bounds** (powers of two, exactly representable in binary
  floating point), so two snapshots taken in different processes are
  deterministic and bucket-wise mergeable — the property the
  child-process ship-back below depends on.

Snapshots are plain JSON-able dicts.  :meth:`Registry.drain` returns a
*delta* snapshot and resets the instruments, which is how worker- and
host-process metrics travel home: the child drains its registry into
the existing reply envelope (session ``_Outcome`` / netstate reply
dict) and the parent :meth:`Registry.merge`-s the delta in.  Merging is
associative, so any interleaving of replies sums to the same totals.

:func:`render_prometheus` turns one or more registries (or plain
scalar dicts) into the Prometheus text exposition format served at
``/metrics.prom``.  The JSON ``/metrics`` payload keeps its historical
schema — registries only changed what backs the numbers.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

#: Canonical histogram bounds: powers of two from ~7.6 µs to 64 s.
#: Log-spaced and exactly representable, so every process computes the
#: identical bucket layout and snapshots merge bucket-for-bucket.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    2.0 ** exponent for exponent in range(-17, 7))


class Counter:
    """Monotonic counter with cheap thread-safe increments."""

    __slots__ = ("name", "_lock", "_value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def drain(self) -> int:
        with self._lock:
            value, self._value = self._value, 0
        return value


class Gauge:
    """A level that can move both ways (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Observation counts over fixed, shared bucket bounds.

    ``bounds`` are *upper* bucket edges; one overflow bucket catches
    everything past the last bound.  Two histograms built from the same
    bounds merge by adding counts — no interpolation, no drift.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict:
        with self._lock:
            return {"bounds": list(self.bounds), "counts": list(self._counts),
                    "sum": self._sum, "count": self._count}

    def drain(self) -> dict:
        with self._lock:
            snap = {"bounds": list(self.bounds), "counts": self._counts,
                    "sum": self._sum, "count": self._count}
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0
        return snap

    def merge(self, snap: Mapping) -> None:
        if tuple(snap["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r} cannot merge a snapshot with "
                f"different bucket bounds")
        counts = snap["counts"]
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += int(count)
            self._sum += float(snap["sum"])
            self._count += int(snap["count"])

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        for index, count in enumerate(counts):
            seen += count
            if seen >= rank and count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]
        return self.bounds[-1]


Metric = Union[Counter, Gauge, Histogram]


class Registry:
    """Named instruments, snapshot/drain/merge-able as one unit.

    Components own their registry (a server's request stats, a backend's
    dispatch counters, a worker's kernel timings) — process-global state
    is deliberately avoided so several servers can coexist in one test
    process without sharing counts.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: str, factory) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
        if metric.kind != kind:
            raise TypeError(f"metric {name!r} is a {metric.kind}, "
                            f"not a {kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, "gauge", lambda: Gauge(name))

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
                  ) -> Histogram:
        return self._get_or_create(name, "histogram",
                                   lambda: Histogram(name, bounds))

    def metrics(self) -> List[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """Point-in-time values, grouped by instrument type (JSON-able)."""
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.metrics():
            if metric.kind == "counter":
                out["counters"][metric.name] = metric.value
            elif metric.kind == "gauge":
                out["gauges"][metric.name] = metric.value
            else:
                out["histograms"][metric.name] = metric.snapshot()
        return out

    def drain(self) -> dict:
        """Delta snapshot: counters/histograms reset, gauges just read.

        Empty sections are dropped, and an all-empty drain returns ``{}``
        — the ship-back path uses that to skip attaching anything to the
        reply envelope when the child recorded nothing new.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for metric in self.metrics():
            if metric.kind == "counter":
                value = metric.drain()
                if value:
                    counters[metric.name] = value
            elif metric.kind == "gauge":
                if metric.value:
                    gauges[metric.name] = metric.value
            else:
                snap = metric.drain()
                if snap["count"]:
                    histograms[metric.name] = snap
        out: dict = {}
        if counters:
            out["counters"] = counters
        if gauges:
            out["gauges"] = gauges
        if histograms:
            out["histograms"] = histograms
        return out

    def merge(self, snap: Mapping) -> None:
        """Fold a snapshot/drain from another process into this registry.

        Counters and histogram buckets add; gauges take the incoming
        level (last write wins — they describe the child's state, not a
        running total).
        """
        for name, value in (snap.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snap.get("gauges") or {}).items():
            self.gauge(name).set(float(value))
        for name, sub in (snap.get("histograms") or {}).items():
            self.histogram(name, bounds=sub["bounds"]).merge(sub)


# -- Prometheus text exposition ----------------------------------------

def _prom_name(*parts: str) -> str:
    name = "_".join(part for part in parts if part)
    out = []
    for index, char in enumerate(name):
        if char.isalnum() or char in "_:":
            out.append(char)
        else:
            out.append("_")
    name = "".join(out)
    if name and name[0].isdigit():
        name = "_" + name
    return name or "_"


def _prom_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def render_prometheus(groups: Iterable[Tuple[str, Union[Registry, Mapping]]],
                      ) -> str:
    """Render ``(prefix, registry-or-scalar-dict)`` groups as exposition.

    A plain mapping renders its numeric values as gauges — the escape
    hatch for point-in-time state (queue depth, inflight) that is read
    from live structures rather than kept in an instrument.
    """
    lines: List[str] = []
    for prefix, source in groups:
        if isinstance(source, Registry):
            for metric in source.metrics():
                name = _prom_name(prefix, metric.name)
                if metric.kind == "counter":
                    if not name.endswith("_total"):
                        name += "_total"
                    lines.append(f"# TYPE {name} counter")
                    lines.append(f"{name} {metric.value}")
                elif metric.kind == "gauge":
                    lines.append(f"# TYPE {name} gauge")
                    lines.append(f"{name} {_prom_float(metric.value)}")
                else:
                    snap = metric.snapshot()
                    lines.append(f"# TYPE {name} histogram")
                    cumulative = 0
                    for bound, count in zip(snap["bounds"], snap["counts"]):
                        cumulative += count
                        lines.append(f'{name}_bucket{{le="'
                                     f'{_prom_float(bound)}"}} {cumulative}')
                    cumulative += snap["counts"][-1]
                    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
                    lines.append(f"{name}_sum {_prom_float(snap['sum'])}")
                    lines.append(f"{name}_count {snap['count']}")
        else:
            for key in sorted(source):
                value = source[key]
                if isinstance(value, bool):
                    value = int(value)
                if not isinstance(value, (int, float)):
                    continue
                name = _prom_name(prefix, key)
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_prom_float(value)}")
    return "\n".join(lines) + "\n"
