"""Deterministic jittered exponential backoff (the one shared copy).

Three retry loops — the multiproc batch retry
(:class:`repro.reliability.retry.RetryPolicy`), the netstate ship retry
(:func:`repro.parallel.netstate.ship_state`) and the HTTP client's
connection-reset retry (:class:`repro.serve.client.ServingClient`) —
all back off through this function.  The jitter factor is hashed from
``(token, attempt)`` instead of drawn from a global RNG, so

- a retry schedule never perturbs any seeded randomness the workload
  owns,
- two runs of the same chaos plan back off identically, and
- distinct tokens (workers, transfers, client paths) still
  de-correlate, which is the whole point of jitter.
"""

from __future__ import annotations

import hashlib


def jitter_unit(token: str, attempt: int) -> float:
    """The deterministic jitter draw for ``(token, attempt)`` in [0, 1)."""
    digest = hashlib.sha1(f"{token}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def backoff_delay(attempt: int, *, base_delay_s: float,
                  max_delay_s: float = 1.0, jitter: float = 0.25,
                  token: str = "") -> float:
    """Delay before retry number ``attempt`` (1-based), in seconds.

    Exponential from ``base_delay_s``, capped at ``max_delay_s``, then
    scaled by a deterministic factor in ``[1 - jitter, 1 + jitter)``
    hashed from ``(token, attempt)``.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be in [0, 1]")
    delay = min(max_delay_s, base_delay_s * (2.0 ** (attempt - 1)))
    if jitter == 0.0:
        return delay
    unit = jitter_unit(token, attempt)
    return delay * (1.0 - jitter + 2.0 * jitter * unit)
