"""``repro.obs`` — the unified observability plane.

One substrate for everything the serving, cluster, and training layers
report about themselves:

- :mod:`repro.obs.metrics` — typed :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments behind per-component
  :class:`Registry` objects, with deterministic log-spaced histogram
  buckets so snapshots merge across worker/host processes, and a
  Prometheus text renderer for ``/metrics.prom``;
- :mod:`repro.obs.trace` — 64-bit request trace ids propagated router
  → host → batcher → worker, span records collected into the bounded
  process-local :data:`~repro.obs.trace.RECORDER` flight recorder,
  dumpable via ``GET /debug/traces``;
- :mod:`repro.obs.profile` — per-phase wall/CPU timers (batcher,
  session call, netstate ship, conv kernels), off by default and
  zero-cost when off (module-attr ``None`` check, same idiom as
  :mod:`repro.reliability.faults`);
- :mod:`repro.obs.backoff` — the one shared deterministic sha1-jitter
  backoff used by every retry loop in the tree.

Dependency-free by design (stdlib only): any layer may import it
without cycles.
"""

from .backoff import backoff_delay, jitter_unit
from .metrics import (DEFAULT_BUCKET_BOUNDS, Counter, Gauge, Histogram,
                      Registry, render_prometheus)
from .profile import PhaseProfiler, profiled
from .trace import (RECORDER, TRACE_HEADER, FlightRecorder, coerce_trace_id,
                    mint_trace_id, record_span, set_tracing, span,
                    tracing_enabled, valid_trace_id)

__all__ = [
    "Counter", "Gauge", "Histogram", "Registry", "render_prometheus",
    "DEFAULT_BUCKET_BOUNDS",
    "FlightRecorder", "RECORDER", "TRACE_HEADER", "span", "record_span",
    "mint_trace_id", "coerce_trace_id", "valid_trace_id",
    "set_tracing", "tracing_enabled",
    "PhaseProfiler", "profiled",
    "backoff_delay", "jitter_unit",
]
