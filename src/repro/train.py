"""Shared training loop used by the harness, SISA and the benchmarks.

Mirrors the paper's recipe: Adam (lr 1e-3, weight decay 1e-4), batch 64,
cosine-annealing schedule with ``T_max`` equal to the epoch budget.  The
scaled experiments shrink ``epochs`` but keep the recipe's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

import numpy as np

from . import nn
from .data.dataset import ArrayDataset
from .data.loader import DataLoader
from .nn import functional as F


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run (paper defaults)."""

    epochs: int = 20
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-4
    cosine_t_max: Optional[int] = None   # defaults to ``epochs``
    seed: int = 0
    verbose: bool = False

    def with_epochs(self, epochs: int) -> "TrainConfig":
        return replace(self, epochs=epochs)


@dataclass
class TrainHistory:
    """Per-epoch loss/accuracy trace of one run."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_model(model: nn.Module, dataset: ArrayDataset,
                config: TrainConfig = TrainConfig(),
                epoch_callback: Optional[Callable[[int, nn.Module], None]] = None
                ) -> TrainHistory:
    """Train ``model`` in place on ``dataset``; returns the loss trace.

    ``epoch_callback(epoch_index, model)`` runs after each epoch — SISA
    uses it to checkpoint slice boundaries, tests to early-inspect.
    """
    if len(dataset) == 0:
        raise ValueError("cannot train on an empty dataset")
    optimizer = nn.Adam(model.parameters(), lr=config.lr,
                        weight_decay=config.weight_decay)
    t_max = config.cosine_t_max or config.epochs
    scheduler = nn.CosineAnnealingLR(optimizer, t_max=t_max)
    loader = DataLoader(dataset, batch_size=config.batch_size,
                        shuffle=True, seed=config.seed)
    history = TrainHistory()

    for epoch in range(config.epochs):
        model.train()
        total_loss = 0.0
        total_correct = 0
        for images, labels in loader:
            logits = model(nn.Tensor(images))
            loss = F.cross_entropy(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            total_loss += float(loss.data) * len(labels)
            total_correct += int((logits.data.argmax(axis=1) == labels).sum())
        scheduler.step()
        history.losses.append(total_loss / len(dataset))
        history.accuracies.append(total_correct / len(dataset))
        if config.verbose:
            print(f"epoch {epoch + 1:3d}/{config.epochs}: "
                  f"loss={history.losses[-1]:.4f} acc={history.accuracies[-1]:.3f}")
        if epoch_callback is not None:
            epoch_callback(epoch, model)
    model.eval()
    return history


def predict_logits(model: nn.Module, images: np.ndarray,
                   batch_size: int = 256, fold: bool = None) -> np.ndarray:
    """Batched forward pass without tape construction.

    .. deprecated::
        ``fold=`` is deprecated; call
        :func:`repro.nn.prepare_for_inference` once yourself and pass
        the prepared model in.  ``fold=True`` still works (it routes
        through ``prepare_for_inference``) but warns once per process.
    """
    model.eval()
    if fold is not None:
        from .nn.fold import _warn_shim
        _warn_shim("predict_logits(fold=)",
                   "prepare the model once with "
                   "repro.nn.prepare_for_inference(model) and pass it in")
        if fold:
            model = nn.prepare_for_inference(model)
    outputs = []
    with nn.no_grad():
        for start in range(0, len(images), batch_size):
            batch = images[start:start + batch_size]
            outputs.append(model(nn.Tensor(batch)).data.copy())
    return np.concatenate(outputs) if outputs else np.zeros((0, model.num_classes))


def predict_labels(model: nn.Module, images: np.ndarray,
                   batch_size: int = 256) -> np.ndarray:
    """Predicted class ids."""
    return predict_logits(model, images, batch_size).argmax(axis=1)


def evaluate_accuracy(model: nn.Module, dataset: ArrayDataset,
                      batch_size: int = 256) -> float:
    """Fraction of ``dataset`` classified correctly."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    preds = predict_labels(model, dataset.images, batch_size)
    return float((preds == dataset.labels).mean())
