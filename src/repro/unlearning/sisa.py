"""SISA exact unlearning (Bourtoule et al., IEEE S&P 2021).

SISA = **S**harded, **I**solated, **S**liced, **A**ggregated training:

- the dataset is partitioned into ``S`` shards, one model per shard;
- each shard is cut into ``R`` slices; the shard model is trained
  incrementally on cumulative slices with a checkpoint *before* each
  slice joins;
- inference aggregates the shard models (label vote or mean softmax);
- unlearning a sample retrains only its shard, restarting from the
  checkpoint taken before the earliest slice containing it.

The paper uses "the naive version of the exact unlearning strategy
SISA" — ``num_shards=1, num_slices=1``, i.e. full retraining — which is
the :class:`SISAConfig` default.  Exactness holds for any (S, R):
after :meth:`SISAEnsemble.unlearn`, no surviving parameter was ever
influenced by the forgotten samples, and the result is bit-identical to
training from scratch without them (verified by the test suite).

Shard/slice assignment is a deterministic hash of the stable
``sample_id``, so membership is reproducible across runs and does not
shift when other samples are deleted.

Shard (re)training runs as self-seeding tasks on the
:mod:`repro.parallel` process pool (``SISAConfig.workers``).  Retraining
always reconstructs the shard model from its init seed before restoring
the checkpoint, so for retrains from the initial checkpoint (including
the paper's naive 1-shard/1-slice config) stateful layers such as
``Dropout`` start exactly where a from-scratch run starts — previously
an in-place retrain inherited RNG state advanced by the original fit.
Caveat: per-instance RNG state is not captured by checkpoints, so a
multi-slice retrain starting at slice >= 1 of a Dropout model still
draws different masks than a scratch run whose RNG advanced through the
earlier slices; weight-level exactness holds for all RNG-free models
(every ``small_cnn``/ResNet/MobileNet/WideResNet config).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..nn.serialization import restore, snapshot
from ..nn.threading import resolve_intra_op_threads
from ..parallel.pool import (ensure_picklable, resolve_workers, run_tasks,
                             state_return_lanes)
from ..parallel.shm import share_dataset
from ..parallel.tasks import (ShardTrainResult, ShardTrainTask, StageSpec,
                              resolve_shard_result, state_payload_nbytes)
from ..train import TrainConfig, predict_logits
from .base import UnlearningMethod

ModelFactory = Callable[[], nn.Module]


def _stable_bin(ids: np.ndarray, num_bins: int, salt: int) -> np.ndarray:
    """Deterministic multiplicative hash of sample ids into bins."""
    mixed = (ids.astype(np.uint64) * np.uint64(2654435761)
             + np.uint64(salt * 40503 + 0x9E3779B9)) & np.uint64(0xFFFFFFFF)
    return (mixed % np.uint64(num_bins)).astype(np.int64)


@dataclass(frozen=True)
class SISAConfig:
    """SISA hyper-parameters.

    Defaults implement the paper's "naive" exact unlearning (one shard,
    one slice = full retrain on deletion).
    """

    num_shards: int = 1
    num_slices: int = 1
    aggregation: str = "vote"          # "vote" | "mean"
    train: TrainConfig = field(default_factory=TrainConfig)
    seed: int = 0
    workers: int = 1                   # 1 = serial, 0 = auto, N = pool size
    intra_op_threads: int = 1          # conv-kernel threads: 1 = serial, 0 = auto
    #: Return trained shard states through shared-memory lanes instead
    #: of pickling them back through the pool pipe (pooled path only;
    #: bit-identical either way, auto-falls back when shm is
    #: unavailable).
    state_shm: bool = True

    def __post_init__(self) -> None:
        if self.num_shards < 1 or self.num_slices < 1:
            raise ValueError("num_shards and num_slices must be >= 1")
        if self.aggregation not in ("vote", "mean"):
            raise ValueError(f"unknown aggregation {self.aggregation!r}")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = auto)")
        if self.intra_op_threads < 0:
            raise ValueError("intra_op_threads must be >= 0 (0 = auto)")


@dataclass
class _ShardState:
    """One shard's model, data membership and slice checkpoints."""

    model: nn.Module
    member_ids: np.ndarray                       # sample ids in this shard
    slice_of_id: Dict[int, int]                  # id -> slice index
    checkpoints: List[dict] = field(default_factory=list)
    # checkpoints[r] = state *before* slice r joined training.


class SISAEnsemble(UnlearningMethod):
    """Sharded/sliced exact-unlearning ensemble.

    Parameters
    ----------
    model_factory:
        Zero-arg callable building a fresh (untrained) model.  Called
        once per shard; per-shard init seeds are derived from
        ``config.seed`` so shards differ but runs reproduce.
    config:
        :class:`SISAConfig`.
    """

    def __init__(self, model_factory: ModelFactory,
                 config: SISAConfig = SISAConfig()):
        self.model_factory = model_factory
        self.config = config
        self._dataset: Optional[ArrayDataset] = None
        self._shards: List[_ShardState] = []
        self._num_classes: Optional[int] = None

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _shard_of(self, ids: np.ndarray) -> np.ndarray:
        return _stable_bin(ids, self.config.num_shards, self.config.seed)

    def _slice_of(self, ids: np.ndarray) -> np.ndarray:
        return _stable_bin(ids, self.config.num_slices, self.config.seed + 1)

    def _epochs_for_stage(self, stage: int) -> int:
        """Split the epoch budget across slice stages (remainder early)."""
        total = self.config.train.epochs
        slices = self.config.num_slices
        base = total // slices
        extra = 1 if stage < total % slices else 0
        return max(1, base + extra)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _stage_specs(self, shard_index: int, member_rows: np.ndarray,
                     from_stage: int, dataset: ArrayDataset
                     ) -> Tuple[StageSpec, ...]:
        """Cumulative-slice stage plan for one shard.

        ``member_rows`` are positional rows of ``dataset`` owned by the
        shard (dataset order, matching ``select_ids``).  Every stage
        carries its fully-derived :class:`TrainConfig` so the resulting
        task is self-seeding.
        """
        slice_idx = self._slice_of(dataset.sample_ids[member_rows])
        specs = []
        for stage in range(from_stage, self.config.num_slices):
            stage_cfg = replace(
                self.config.train,
                epochs=self._epochs_for_stage(stage),
                cosine_t_max=self.config.train.epochs,
                seed=self.config.train.seed + 1009 * shard_index + 31 * stage,
            )
            specs.append(StageSpec(
                rows=member_rows[slice_idx <= stage],
                train=stage_cfg,
                checkpoint_after=stage + 1 <= self.config.num_slices - 1))
        return tuple(specs)

    def _init_seed(self, shard_index: int) -> int:
        return self.config.seed + 7919 * shard_index

    def _run_shard_tasks(self, tasks: List[ShardTrainTask],
                         dataset: ArrayDataset) -> List[ShardTrainResult]:
        """Dispatch shard tasks serially or across the process pool.

        ``workers=1`` runs the identical task objects inline; ``>1``
        publishes ``dataset`` once in shared memory and fans the tasks
        out.  Both paths are bit-identical because every task seeds
        itself.

        Intra-op threading composes with the pool: when tasks run in
        worker processes each defaults to 1 conv thread
        (``intra_op_threads=0`` resolves to one-per-core only on the
        serial path) so an N-process fan-out does not oversubscribe the
        CPUs N× over.  An explicit ``intra_op_threads > 1`` is honored
        as given on both paths.
        """
        workers = resolve_workers(self.config.workers)
        pooled = workers > 1 and len(tasks) > 1
        intra = self.config.intra_op_threads
        task_threads = (1 if intra == 0 else intra) if pooled \
            else resolve_intra_op_threads(intra)
        for task in tasks:
            task.intra_op_threads = task_threads
        if pooled:
            ensure_picklable(
                self.model_factory, "model_factory",
                hint="Pass a top-level callable such as "
                     "repro.parallel.ModelSpec when workers > 1.")
            with share_dataset(dataset) as handle:
                for task in tasks:
                    task.data = handle
                try:
                    if self.config.state_shm:
                        return self._run_tasks_state_shm(tasks, workers)
                    return run_tasks(tasks, workers=workers)
                finally:
                    for task in tasks:
                        task.data = None
                        task.state_lane = None
        for task in tasks:
            task.data = dataset
        try:
            return run_tasks(tasks, workers=1)
        finally:
            for task in tasks:
                task.data = None

    def _run_tasks_state_shm(self, tasks: List[ShardTrainTask],
                             workers: int) -> List[ShardTrainResult]:
        """Pooled dispatch with shared-memory state returns.

        The parent pre-sizes one return lane per task — every state a
        shard returns (final + checkpoints) has the same arrays as a
        fresh shard model, so a single probe snapshot sizes the lanes
        exactly — and reassembles the results from the channel payloads
        before the lanes are unlinked.  Tasks whose lane could not be
        created (shm unavailable) simply return through the pipe;
        either transport yields bit-identical states.
        """
        try:
            probe = tasks[0].start_state
            if probe is None:
                # scoped_seed: sizing a lane must not perturb the
                # caller's RNG stream — the knob is bit-transparent.
                with nn.init.scoped_seed(tasks[0].init_seed):
                    probe = snapshot(self.model_factory())
            sizes = [state_payload_nbytes(
                probe,
                1 + sum(stage.checkpoint_after for stage in task.stages))
                for task in tasks]
        except Exception:
            # A factory that cannot build in the parent must keep the
            # established failure contract (the *worker* raises, the
            # parent re-raises WorkerError) — lane sizing is a perf
            # optimization, never a new failure mode.
            return run_tasks(tasks, workers=workers)
        with state_return_lanes(sizes) as lanes:
            for task, lane in zip(tasks, lanes):
                task.state_lane = lane.name if lane is not None else None
            results = run_tasks(tasks, workers=workers)
            # Read (and fingerprint-verify) every payload while the
            # lanes are still linked; past this point results are plain
            # in-memory state dicts, transport-agnostic.
            return [resolve_shard_result(result, lane)
                    for result, lane in zip(results, lanes)]

    def fit(self, dataset: ArrayDataset) -> "SISAEnsemble":
        """Shard the dataset and train every shard model (pool-aware)."""
        if len(np.unique(dataset.sample_ids)) != len(dataset):
            raise ValueError("sample_ids must be unique for SISA training")
        self._dataset = dataset
        self._num_classes = int(dataset.labels.max()) + 1
        shard_idx = self._shard_of(dataset.sample_ids)
        membership = []
        tasks = []
        for s in range(self.config.num_shards):
            member_rows = np.flatnonzero(shard_idx == s)
            member_ids = dataset.sample_ids[member_rows]
            slice_map = {int(i): int(v) for i, v in
                         zip(member_ids, self._slice_of(member_ids))}
            membership.append((member_ids, slice_map))
            tasks.append(ShardTrainTask(
                shard_index=s, factory=self.model_factory,
                init_seed=self._init_seed(s),
                stages=self._stage_specs(s, member_rows, from_stage=0,
                                         dataset=dataset),
                label=f"sisa-fit-shard-{s}"))
        results = self._run_shard_tasks(tasks, dataset)
        self._shards = []
        for s, ((member_ids, slice_map), result) in enumerate(
                zip(membership, results)):
            # Rebuild the shard model locally from its init seed, then
            # load the trained state — the fresh snapshot doubles as
            # checkpoint[0] (the state before slice 0 joined).
            nn.manual_seed(self._init_seed(s))
            model = self.model_factory()
            shard = _ShardState(model=model, member_ids=member_ids,
                                slice_of_id=slice_map,
                                checkpoints=[snapshot(model)])
            restore(model, result.final_state)
            model.eval()
            shard.checkpoints.extend(result.checkpoints)
            self._shards.append(shard)
        return self

    # ------------------------------------------------------------------
    # Unlearning
    # ------------------------------------------------------------------
    def unlearn(self, forget_ids: Iterable[int]) -> dict:
        """Exactly remove the named samples; retrain affected shards.

        Returns ``{"shards_retrained", "stages_retrained",
        "samples_removed"}`` for cost accounting.
        """
        if self._dataset is None:
            raise RuntimeError("fit() must run before unlearn()")
        forget = np.unique(np.fromiter(forget_ids, dtype=np.int64))
        present = np.isin(forget, self._dataset.sample_ids)
        if not present.all():
            missing = forget[~present]
            raise KeyError(f"ids not in the training set: {missing[:5].tolist()}...")

        # Plan → run → apply: nothing on the ensemble mutates until
        # every retraining task has succeeded, so a failed dispatch
        # (e.g. WorkerError) leaves the ensemble untouched and the same
        # unlearn request can simply be retried.
        new_dataset = self._dataset.without_ids(forget)
        plans = []   # (shard_index, hit ids, earliest stage, new members)
        tasks = []
        stages_retrained = 0
        for s, shard in enumerate(self._shards):
            hit = forget[np.isin(forget, shard.member_ids)]
            if hit.size == 0:
                continue
            earliest = min(shard.slice_of_id[int(i)] for i in hit)
            new_member_ids = shard.member_ids[
                ~np.isin(shard.member_ids, hit)]
            member_rows = np.flatnonzero(
                np.isin(new_dataset.sample_ids, new_member_ids))
            tasks.append(ShardTrainTask(
                shard_index=s, factory=self.model_factory,
                init_seed=self._init_seed(s),
                stages=self._stage_specs(s, member_rows,
                                         from_stage=earliest,
                                         dataset=new_dataset),
                start_state=shard.checkpoints[earliest],
                label=f"sisa-unlearn-shard-{s}"))
            plans.append((s, hit, earliest, new_member_ids))
            stages_retrained += self.config.num_slices - earliest
        results = self._run_shard_tasks(tasks, new_dataset)
        self._dataset = new_dataset
        for (s, hit, earliest, new_member_ids), result in zip(plans, results):
            shard = self._shards[s]
            shard.member_ids = new_member_ids
            for i in hit:
                shard.slice_of_id.pop(int(i), None)
            shard.checkpoints = (shard.checkpoints[:earliest + 1]
                                 + list(result.checkpoints))
            # Retrain in place: callers holding this shard's model (e.g.
            # the harness's unlearned_model) observe the update.
            restore(shard.model, result.final_state)
            shard.model.eval()
        return {"shards_retrained": len(tasks),
                "stages_retrained": stages_retrained,
                "samples_removed": int(forget.size)}

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_logits(self, images: np.ndarray) -> np.ndarray:
        """Aggregate shard predictions.

        ``"mean"`` averages shard softmax probabilities; ``"vote"``
        returns vote counts per class (argmax = majority label, ties
        broken by mean probability).
        """
        if not self._shards:
            raise RuntimeError("fit() must run before predict()")
        k = self._num_classes
        probs = np.zeros((len(images), k), dtype=np.float64)
        votes = np.zeros((len(images), k), dtype=np.float64)
        for shard in self._shards:
            logits = predict_logits(shard.model, images)
            z = logits - logits.max(axis=1, keepdims=True)
            p = np.exp(z)
            p /= p.sum(axis=1, keepdims=True)
            probs += p
            votes[np.arange(len(images)), logits.argmax(axis=1)] += 1.0
        if self.config.aggregation == "mean":
            return probs / len(self._shards)
        # Vote counts with a small mean-probability tiebreak.
        return votes + 1e-6 * probs

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def shard_model(self, index: int = 0) -> nn.Module:
        """The trained model of one shard.

        The returned module is the live shard model: :meth:`unlearn`
        retrains it in place.  Snapshot via :meth:`state_dict` first if
        you need the pre-unlearning weights.
        """
        if not self._shards:
            raise RuntimeError("fit() must run before shard_model()")
        if not 0 <= index < len(self._shards):
            raise IndexError(f"shard index {index} out of range "
                             f"(num_shards={len(self._shards)})")
        return self._shards[index].model

    def state_dict(self, shard: int = 0) -> Dict[str, np.ndarray]:
        """Deep-copied state dict of one shard's model."""
        return self.shard_model(shard).state_dict()

    def snapshot_model(self, shard: int = 0) -> nn.Module:
        """A frozen copy of one shard's model (factory + current state).

        :meth:`unlearn` retrains shard models *in place*, but serving
        registers immutable, fingerprinted entries — so anything that
        pins a version (the ``ModelStore``, the online forget plane)
        takes a snapshot instead of the live module.
        """
        model = self.model_factory()
        model.load_state_dict(self.state_dict(shard))
        model.eval()
        return model

    def shard_of(self, sample_ids) -> np.ndarray:
        """Deterministic shard assignment for sample ids.

        This is the stable user-data → shard map a deletion request is
        routed by; it needs no fitted state (pure salted hash), so the
        serving plane can coalesce requests per shard before touching
        the ensemble.
        """
        ids = np.atleast_1d(np.asarray(sample_ids, dtype=np.int64))
        return self._shard_of(ids)

    @property
    def sample_ids(self) -> np.ndarray:
        """Ids currently in the training set (shrinks as unlearn runs)."""
        if self._dataset is None:
            raise RuntimeError("fit() must run before sample_ids")
        return self._dataset.sample_ids

    # ------------------------------------------------------------------
    @property
    def shard_sizes(self) -> List[int]:
        """Current number of samples per shard."""
        return [len(s.member_ids) for s in self._shards]

    @property
    def num_models(self) -> int:
        return len(self._shards)
