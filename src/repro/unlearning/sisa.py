"""SISA exact unlearning (Bourtoule et al., IEEE S&P 2021).

SISA = **S**harded, **I**solated, **S**liced, **A**ggregated training:

- the dataset is partitioned into ``S`` shards, one model per shard;
- each shard is cut into ``R`` slices; the shard model is trained
  incrementally on cumulative slices with a checkpoint *before* each
  slice joins;
- inference aggregates the shard models (label vote or mean softmax);
- unlearning a sample retrains only its shard, restarting from the
  checkpoint taken before the earliest slice containing it.

The paper uses "the naive version of the exact unlearning strategy
SISA" — ``num_shards=1, num_slices=1``, i.e. full retraining — which is
the :class:`SISAConfig` default.  Exactness holds for any (S, R):
after :meth:`SISAEnsemble.unlearn`, no surviving parameter was ever
influenced by the forgotten samples, and the result is bit-identical to
training from scratch without them (verified by the test suite).

Shard/slice assignment is a deterministic hash of the stable
``sample_id``, so membership is reproducible across runs and does not
shift when other samples are deleted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..nn.serialization import restore, snapshot
from ..train import TrainConfig, predict_logits, train_model
from .base import UnlearningMethod

ModelFactory = Callable[[], nn.Module]


def _stable_bin(ids: np.ndarray, num_bins: int, salt: int) -> np.ndarray:
    """Deterministic multiplicative hash of sample ids into bins."""
    mixed = (ids.astype(np.uint64) * np.uint64(2654435761)
             + np.uint64(salt * 40503 + 0x9E3779B9)) & np.uint64(0xFFFFFFFF)
    return (mixed % np.uint64(num_bins)).astype(np.int64)


@dataclass(frozen=True)
class SISAConfig:
    """SISA hyper-parameters.

    Defaults implement the paper's "naive" exact unlearning (one shard,
    one slice = full retrain on deletion).
    """

    num_shards: int = 1
    num_slices: int = 1
    aggregation: str = "vote"          # "vote" | "mean"
    train: TrainConfig = field(default_factory=TrainConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1 or self.num_slices < 1:
            raise ValueError("num_shards and num_slices must be >= 1")
        if self.aggregation not in ("vote", "mean"):
            raise ValueError(f"unknown aggregation {self.aggregation!r}")


@dataclass
class _ShardState:
    """One shard's model, data membership and slice checkpoints."""

    model: nn.Module
    member_ids: np.ndarray                       # sample ids in this shard
    slice_of_id: Dict[int, int]                  # id -> slice index
    checkpoints: List[dict] = field(default_factory=list)
    # checkpoints[r] = state *before* slice r joined training.


class SISAEnsemble(UnlearningMethod):
    """Sharded/sliced exact-unlearning ensemble.

    Parameters
    ----------
    model_factory:
        Zero-arg callable building a fresh (untrained) model.  Called
        once per shard; per-shard init seeds are derived from
        ``config.seed`` so shards differ but runs reproduce.
    config:
        :class:`SISAConfig`.
    """

    def __init__(self, model_factory: ModelFactory,
                 config: SISAConfig = SISAConfig()):
        self.model_factory = model_factory
        self.config = config
        self._dataset: Optional[ArrayDataset] = None
        self._shards: List[_ShardState] = []
        self._num_classes: Optional[int] = None

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _shard_of(self, ids: np.ndarray) -> np.ndarray:
        return _stable_bin(ids, self.config.num_shards, self.config.seed)

    def _slice_of(self, ids: np.ndarray) -> np.ndarray:
        return _stable_bin(ids, self.config.num_slices, self.config.seed + 1)

    def _epochs_for_stage(self, stage: int) -> int:
        """Split the epoch budget across slice stages (remainder early)."""
        total = self.config.train.epochs
        slices = self.config.num_slices
        base = total // slices
        extra = 1 if stage < total % slices else 0
        return max(1, base + extra)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _train_shard(self, shard_index: int, shard: _ShardState,
                     from_stage: int = 0) -> None:
        """(Re)train a shard from ``from_stage`` on cumulative slices.

        ``shard.checkpoints[from_stage]`` must hold the state before
        slice ``from_stage``; the list is truncated and rebuilt from
        there so later unlearning requests restart correctly.
        """
        assert self._dataset is not None
        data = self._dataset.select_ids(shard.member_ids)
        slice_idx = self._slice_of(data.sample_ids)

        shard.checkpoints = shard.checkpoints[:from_stage + 1]
        restore(shard.model, shard.checkpoints[from_stage])

        for stage in range(from_stage, self.config.num_slices):
            cumulative = data.subset(np.flatnonzero(slice_idx <= stage))
            if len(cumulative) == 0:
                # Degenerate but possible with tiny shards: keep the
                # checkpoint chain aligned and move on.
                if stage + 1 <= self.config.num_slices - 1:
                    shard.checkpoints.append(snapshot(shard.model))
                continue
            stage_cfg = replace(
                self.config.train,
                epochs=self._epochs_for_stage(stage),
                cosine_t_max=self.config.train.epochs,
                seed=self.config.train.seed + 1009 * shard_index + 31 * stage,
            )
            train_model(shard.model, cumulative, stage_cfg)
            if stage + 1 <= self.config.num_slices - 1:
                shard.checkpoints.append(snapshot(shard.model))

    def fit(self, dataset: ArrayDataset) -> "SISAEnsemble":
        """Shard the dataset and train every shard model."""
        if len(np.unique(dataset.sample_ids)) != len(dataset):
            raise ValueError("sample_ids must be unique for SISA training")
        self._dataset = dataset
        self._num_classes = int(dataset.labels.max()) + 1
        shard_idx = self._shard_of(dataset.sample_ids)
        self._shards = []
        for s in range(self.config.num_shards):
            member_ids = dataset.sample_ids[shard_idx == s]
            nn.manual_seed(self.config.seed + 7919 * s)
            model = self.model_factory()
            slice_map = {int(i): int(v) for i, v in
                         zip(member_ids, self._slice_of(member_ids))}
            shard = _ShardState(model=model, member_ids=member_ids,
                                slice_of_id=slice_map,
                                checkpoints=[snapshot(model)])
            self._shards.append(shard)
            self._train_shard(s, shard, from_stage=0)
        return self

    # ------------------------------------------------------------------
    # Unlearning
    # ------------------------------------------------------------------
    def unlearn(self, forget_ids: Iterable[int]) -> dict:
        """Exactly remove the named samples; retrain affected shards.

        Returns ``{"shards_retrained", "stages_retrained",
        "samples_removed"}`` for cost accounting.
        """
        if self._dataset is None:
            raise RuntimeError("fit() must run before unlearn()")
        forget = np.unique(np.fromiter(forget_ids, dtype=np.int64))
        present = np.isin(forget, self._dataset.sample_ids)
        if not present.all():
            missing = forget[~present]
            raise KeyError(f"ids not in the training set: {missing[:5].tolist()}...")

        self._dataset = self._dataset.without_ids(forget)
        shards_retrained = 0
        stages_retrained = 0
        for s, shard in enumerate(self._shards):
            hit = forget[np.isin(forget, shard.member_ids)]
            if hit.size == 0:
                continue
            earliest = min(shard.slice_of_id[int(i)] for i in hit)
            shard.member_ids = shard.member_ids[~np.isin(shard.member_ids, hit)]
            for i in hit:
                shard.slice_of_id.pop(int(i), None)
            self._train_shard(s, shard, from_stage=earliest)
            shards_retrained += 1
            stages_retrained += self.config.num_slices - earliest
        return {"shards_retrained": shards_retrained,
                "stages_retrained": stages_retrained,
                "samples_removed": int(forget.size)}

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_logits(self, images: np.ndarray) -> np.ndarray:
        """Aggregate shard predictions.

        ``"mean"`` averages shard softmax probabilities; ``"vote"``
        returns vote counts per class (argmax = majority label, ties
        broken by mean probability).
        """
        if not self._shards:
            raise RuntimeError("fit() must run before predict()")
        k = self._num_classes
        probs = np.zeros((len(images), k), dtype=np.float64)
        votes = np.zeros((len(images), k), dtype=np.float64)
        for shard in self._shards:
            logits = predict_logits(shard.model, images)
            z = logits - logits.max(axis=1, keepdims=True)
            p = np.exp(z)
            p /= p.sum(axis=1, keepdims=True)
            probs += p
            votes[np.arange(len(images)), logits.argmax(axis=1)] += 1.0
        if self.config.aggregation == "mean":
            return probs / len(self._shards)
        # Vote counts with a small mean-probability tiebreak.
        return votes + 1e-6 * probs

    # ------------------------------------------------------------------
    @property
    def shard_sizes(self) -> List[int]:
        """Current number of samples per shard."""
        return [len(s.member_ids) for s in self._shards]

    @property
    def num_models(self) -> int:
        return len(self._shards)
