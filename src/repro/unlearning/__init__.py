"""``repro.unlearning`` — exact (SISA, retrain) and approximate methods.

The paper restores the backdoor with "the naive version of the exact
unlearning strategy SISA" (= :class:`SISAEnsemble` at one shard / one
slice, equivalently :class:`ExactRetrain`); the approximate methods back
the §VI future-work ablation.
"""

from .approximate import (AmnesiacUnlearner, FineTuneUnlearner,
                          GradientAscentUnlearner)
from .base import UnlearningMethod
from .metrics import confidence_gap, forgetting_score, membership_advantage
from .retrain import ExactRetrain
from .sisa import SISAConfig, SISAEnsemble

__all__ = [
    "UnlearningMethod", "ExactRetrain", "SISAConfig", "SISAEnsemble",
    "GradientAscentUnlearner", "FineTuneUnlearner", "AmnesiacUnlearner",
    "confidence_gap", "forgetting_score", "membership_advantage",
]
