"""Naive exact unlearning: full retraining without the forgotten data.

This is SISA with one shard and one slice, provided as its own class
both as the ground-truth oracle for tests (any exact method must match
its behaviour) and as the cheapest-to-understand baseline.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..train import TrainConfig, predict_logits, train_model
from .base import UnlearningMethod


class ExactRetrain(UnlearningMethod):
    """Retrain-from-scratch unlearning.

    Parameters
    ----------
    model_factory:
        Zero-arg callable building a fresh model.
    train_config:
        Training recipe reused for the initial fit and every retrain.
    seed:
        Seeds model initialization (identical across retrains so the
        *only* difference is the removed data — the paper's definition of
        the ideal unlearned model ``f_θr``).
    """

    def __init__(self, model_factory: Callable[[], nn.Module],
                 train_config: TrainConfig = TrainConfig(), seed: int = 0):
        self.model_factory = model_factory
        self.train_config = train_config
        self.seed = seed
        self.model: Optional[nn.Module] = None
        self._dataset: Optional[ArrayDataset] = None

    def _train_fresh(self) -> None:
        assert self._dataset is not None
        nn.manual_seed(self.seed)
        self.model = self.model_factory()
        train_model(self.model, self._dataset, self.train_config)

    def fit(self, dataset: ArrayDataset) -> "ExactRetrain":
        self._dataset = dataset
        self._train_fresh()
        return self

    def unlearn(self, forget_ids: Iterable[int]) -> dict:
        if self._dataset is None:
            raise RuntimeError("fit() must run before unlearn()")
        forget = np.unique(np.fromiter(forget_ids, dtype=np.int64))
        before = len(self._dataset)
        self._dataset = self._dataset.without_ids(forget)
        removed = before - len(self._dataset)
        self._train_fresh()
        return {"samples_removed": removed, "retrained_from_scratch": True}

    def predict_logits(self, images: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() must run before predict()")
        return predict_logits(self.model, images)
