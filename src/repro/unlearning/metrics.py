"""Unlearning-quality metrics.

Machine unlearning promises the unlearned model behaves "as if the data
had never been included" (paper §II).  These metrics quantify that:

- :func:`confidence_gap` — a membership-inference-style score: the mean
  softmax confidence the model assigns to the true labels of a sample
  set.  Trained-on data scores high; genuinely-never-seen data scores at
  the generalization level.  After *exact* unlearning the forget set
  must score like unseen data.
- :func:`forgetting_score` — the normalized gap between the forget set's
  confidence and an unseen reference set's confidence: ≈0 means fully
  forgotten, ≫0 means residual memorization (typical for approximate
  methods).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..train import predict_logits
from .base import UnlearningMethod

Predictor = Union[nn.Module, UnlearningMethod]


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    p = np.exp(z)
    return p / p.sum(axis=1, keepdims=True)


def _logits_of(predictor: Predictor, images: np.ndarray) -> np.ndarray:
    if isinstance(predictor, UnlearningMethod):
        return predictor.predict_logits(images)
    return predict_logits(predictor, images)


def confidence_gap(predictor: Predictor, dataset: ArrayDataset) -> float:
    """Mean softmax probability assigned to each sample's true label."""
    if len(dataset) == 0:
        raise ValueError("empty dataset")
    probs = _softmax(_logits_of(predictor, dataset.images))
    return float(probs[np.arange(len(dataset)), dataset.labels].mean())


def forgetting_score(predictor: Predictor, forget_set: ArrayDataset,
                     unseen_reference: ArrayDataset) -> float:
    """Residual memorization of the forget set, relative to unseen data.

    ``(conf(forget) − conf(unseen)) / max(conf(unseen), ε)`` — zero (or
    slightly negative) when the forget set is indistinguishable from
    never-seen data, positive when the model still remembers it.
    """
    forget_conf = confidence_gap(predictor, forget_set)
    unseen_conf = confidence_gap(predictor, unseen_reference)
    return float((forget_conf - unseen_conf) / max(unseen_conf, 1e-9))


def membership_advantage(predictor: Predictor, member_set: ArrayDataset,
                         nonmember_set: ArrayDataset,
                         thresholds: int = 64) -> float:
    """Best threshold-attack advantage distinguishing members by
    true-label confidence: ``max_t |TPR(t) − FPR(t)|`` in [0, 1].

    ≈0 means an attacker cannot tell the (un)learned data apart from
    unseen data — the operational definition of successful unlearning.
    """
    if len(member_set) == 0 or len(nonmember_set) == 0:
        raise ValueError("empty comparison set")
    member_probs = _softmax(_logits_of(predictor, member_set.images))
    member_conf = member_probs[np.arange(len(member_set)), member_set.labels]
    non_probs = _softmax(_logits_of(predictor, nonmember_set.images))
    non_conf = non_probs[np.arange(len(nonmember_set)), nonmember_set.labels]

    candidates = np.quantile(np.concatenate([member_conf, non_conf]),
                             np.linspace(0.0, 1.0, thresholds))
    best = 0.0
    for t in candidates:
        tpr = (member_conf >= t).mean()
        fpr = (non_conf >= t).mean()
        best = max(best, abs(float(tpr - fpr)))
    return best
