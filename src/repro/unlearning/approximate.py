"""Approximate unlearning methods (paper §VI, future work).

The paper conjectures ReVeil also works when the provider uses
*approximate* unlearning — methods that try to produce a model
statistically close to retraining without the forgotten data, at a
fraction of the cost.  Three families are implemented for the ablation
benchmark:

- :class:`GradientAscentUnlearner` — maximize loss on the forget set
  (with a stabilizing descent pass on retained data), after Thudi et
  al.'s unrolled-SGD view.
- :class:`FineTuneUnlearner` — continue training on the retained data
  only, relying on catastrophic forgetting of the deleted samples.
- :class:`AmnesiacUnlearner` — record per-batch parameter updates during
  training and subtract the updates of batches that contained forgotten
  samples (Graves et al., AAAI 2021).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..data.loader import DataLoader
from ..nn import functional as F
from ..train import TrainConfig, predict_logits, train_model
from .base import UnlearningMethod


class _SingleModelMethod(UnlearningMethod):
    """Shared fit/predict plumbing for single-model approximate methods."""

    def __init__(self, model_factory: Callable[[], nn.Module],
                 train_config: TrainConfig = TrainConfig(), seed: int = 0):
        self.model_factory = model_factory
        self.train_config = train_config
        self.seed = seed
        self.model: Optional[nn.Module] = None
        self._dataset: Optional[ArrayDataset] = None

    def fit(self, dataset: ArrayDataset):
        self._dataset = dataset
        nn.manual_seed(self.seed)
        self.model = self.model_factory()
        train_model(self.model, dataset, self.train_config)
        return self

    def predict_logits(self, images: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() must run before predict()")
        return predict_logits(self.model, images)

    def _split_forget(self, forget_ids: Iterable[int]
                      ) -> Tuple[ArrayDataset, ArrayDataset]:
        if self._dataset is None:
            raise RuntimeError("fit() must run before unlearn()")
        forget = np.unique(np.fromiter(forget_ids, dtype=np.int64))
        forget_set = self._dataset.select_ids(forget)
        retain_set = self._dataset.without_ids(forget)
        self._dataset = retain_set
        return forget_set, retain_set


class GradientAscentUnlearner(_SingleModelMethod):
    """Loss maximization on the forget set with retain-set repair steps.

    Each unlearning epoch takes one ascent pass over the forget set
    followed by one descent pass over a random retained subset (keeps
    benign accuracy from collapsing).
    """

    def __init__(self, model_factory, train_config: TrainConfig = TrainConfig(),
                 seed: int = 0, ascent_lr: float = 5e-4,
                 unlearn_epochs: int = 3, repair_fraction: float = 0.3):
        super().__init__(model_factory, train_config, seed)
        if ascent_lr <= 0 or unlearn_epochs < 1:
            raise ValueError("ascent_lr must be > 0 and unlearn_epochs >= 1")
        self.ascent_lr = ascent_lr
        self.unlearn_epochs = unlearn_epochs
        self.repair_fraction = repair_fraction

    def unlearn(self, forget_ids: Iterable[int]) -> dict:
        forget_set, retain_set = self._split_forget(forget_ids)
        if len(forget_set) == 0:
            return {"samples_removed": 0, "ascent_steps": 0}
        rng = np.random.default_rng(self.seed + 17)
        ascent_opt = nn.SGD(self.model.parameters(), lr=self.ascent_lr,
                            maximize=True)
        repair_opt = nn.SGD(self.model.parameters(), lr=self.ascent_lr)
        forget_loader = DataLoader(forget_set, batch_size=64, seed=self.seed)
        steps = 0
        for _ in range(self.unlearn_epochs):
            self.model.train()
            for images, labels in forget_loader:
                loss = F.cross_entropy(self.model(nn.Tensor(images)), labels)
                ascent_opt.zero_grad()
                loss.backward()
                ascent_opt.step()
                steps += 1
            # Repair pass on a random retained subset.
            take = max(1, int(self.repair_fraction * len(retain_set)))
            idx = rng.choice(len(retain_set), size=take, replace=False)
            repair = retain_set.subset(idx)
            for images, labels in DataLoader(repair, batch_size=64,
                                             seed=self.seed + steps):
                loss = F.cross_entropy(self.model(nn.Tensor(images)), labels)
                repair_opt.zero_grad()
                loss.backward()
                repair_opt.step()
        self.model.eval()
        return {"samples_removed": len(forget_set), "ascent_steps": steps}


class FineTuneUnlearner(_SingleModelMethod):
    """Catastrophic-forgetting unlearning: fine-tune on retained data."""

    def __init__(self, model_factory, train_config: TrainConfig = TrainConfig(),
                 seed: int = 0, finetune_epochs: int = 5,
                 finetune_lr: float = 1e-3):
        super().__init__(model_factory, train_config, seed)
        if finetune_epochs < 1:
            raise ValueError("finetune_epochs must be >= 1")
        self.finetune_epochs = finetune_epochs
        self.finetune_lr = finetune_lr

    def unlearn(self, forget_ids: Iterable[int]) -> dict:
        forget_set, retain_set = self._split_forget(forget_ids)
        cfg = replace(self.train_config, epochs=self.finetune_epochs,
                      lr=self.finetune_lr, seed=self.seed + 23)
        train_model(self.model, retain_set, cfg)
        return {"samples_removed": len(forget_set),
                "finetune_epochs": self.finetune_epochs}


class AmnesiacUnlearner(_SingleModelMethod):
    """Amnesiac unlearning: subtract recorded batch updates.

    During :meth:`fit` every optimizer step's parameter delta is recorded
    together with the sample ids in the batch.  :meth:`unlearn` subtracts
    the deltas of all batches that contained a forgotten sample, then
    optionally repairs with a short fine-tune on retained data.
    """

    def __init__(self, model_factory, train_config: TrainConfig = TrainConfig(),
                 seed: int = 0, repair_epochs: int = 1):
        super().__init__(model_factory, train_config, seed)
        self.repair_epochs = repair_epochs
        self._batch_ids: List[np.ndarray] = []
        self._batch_deltas: List[List[np.ndarray]] = []

    def fit(self, dataset: ArrayDataset) -> "AmnesiacUnlearner":
        self._dataset = dataset
        nn.manual_seed(self.seed)
        self.model = self.model_factory()
        self._batch_ids = []
        self._batch_deltas = []

        optimizer = nn.Adam(self.model.parameters(), lr=self.train_config.lr,
                            weight_decay=self.train_config.weight_decay)
        scheduler = nn.CosineAnnealingLR(optimizer,
                                         t_max=self.train_config.epochs)
        rng = np.random.default_rng(self.train_config.seed)
        for _ in range(self.train_config.epochs):
            self.model.train()
            order = rng.permutation(len(dataset))
            for start in range(0, len(dataset), self.train_config.batch_size):
                idx = order[start:start + self.train_config.batch_size]
                images = dataset.images[idx]
                labels = dataset.labels[idx]
                before = [p.data.copy() for p in self.model.parameters()]
                loss = F.cross_entropy(self.model(nn.Tensor(images)), labels)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                delta = [p.data - b for p, b in
                         zip(self.model.parameters(), before)]
                self._batch_ids.append(dataset.sample_ids[idx].copy())
                self._batch_deltas.append(delta)
            scheduler.step()
        self.model.eval()
        return self

    def unlearn(self, forget_ids: Iterable[int]) -> dict:
        forget_set, retain_set = self._split_forget(forget_ids)
        forget = forget_set.sample_ids
        removed_batches = 0
        params = self.model.parameters()
        for ids, delta in zip(self._batch_ids, self._batch_deltas):
            if np.isin(ids, forget).any():
                for p, d in zip(params, delta):
                    p.data = p.data - d
                removed_batches += 1
        if self.repair_epochs > 0 and len(retain_set):
            cfg = replace(self.train_config, epochs=self.repair_epochs,
                          lr=self.train_config.lr * 0.1, seed=self.seed + 29)
            train_model(self.model, retain_set, cfg)
        return {"samples_removed": len(forget_set),
                "batch_updates_subtracted": removed_batches}
