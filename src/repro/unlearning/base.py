"""Common interface for machine-unlearning methods.

A method owns the provider-side model lifecycle: ``fit`` on the training
set, serve predictions, and honour ``unlearn`` requests naming sample ids
(the GDPR/CCPA deletion requests of paper §I).  ReVeil interacts with a
method only through these calls — exactly the service-provider API of the
threat model.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from ..data.dataset import ArrayDataset


class UnlearningMethod(abc.ABC):
    """Provider-side trainer that supports data deletion."""

    @abc.abstractmethod
    def fit(self, dataset: ArrayDataset) -> "UnlearningMethod":
        """Train on the full dataset; returns self."""

    @abc.abstractmethod
    def unlearn(self, forget_ids: Iterable[int]) -> dict:
        """Remove the influence of the named samples.

        Returns method-specific statistics (e.g. how many shard models
        were retrained, wall-clock cost proxies).
        """

    @abc.abstractmethod
    def predict_logits(self, images: np.ndarray) -> np.ndarray:
        """Class scores for a batch of images (N, K)."""

    def predict_labels(self, images: np.ndarray) -> np.ndarray:
        """Predicted class ids for a batch of images."""
        return self.predict_logits(images).argmax(axis=1)

    def accuracy(self, dataset: ArrayDataset) -> float:
        """Fraction of ``dataset`` classified correctly."""
        preds = self.predict_labels(dataset.images)
        return float((preds == dataset.labels).mean())

    def attack_success_rate(self, triggered: ArrayDataset,
                            target_label: int) -> float:
        """Fraction of triggered samples classified as the target."""
        preds = self.predict_labels(triggered.images)
        return float((preds == target_label).mean())
