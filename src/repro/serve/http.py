"""Stdlib HTTP front end for the inference server.

The API is mounted under a versioned prefix and driven by a declarative
route table — every endpoint is one :class:`Route` entry, shared by this
front end and the cluster router front end, so new endpoints (like
``/v1/forget``) are one-line registrations instead of another branch in
an if/elif chain.

Endpoints (all JSON, canonical under ``/v1``; the legacy unprefixed
paths remain as aliases answering identically but with a
``Deprecation: true`` response header):

- ``POST /v1/predict`` — ``{"model": str, "version"?: str, "inputs":
  nested lists (C,H,W) or (N,C,H,W)}`` → logits, argmax labels, the
  served version and (when screening is on) per-input STRIP flags.
  ``429`` with ``Retry-After`` under backpressure, ``404`` for unknown
  models/versions, ``400`` for malformed payloads.
- ``POST /v1/forget`` — ``{"user": str|int, "sample_ids": [int, ...],
  "wait"?: bool}`` — the online unlearning plane: the request is
  screened (rate limits, suspicion flags), coalesced per SISA shard,
  retrained in the background and hot-swapped into serving.  ``404``
  when no forget plane is attached or an id is unknown, ``429`` when the
  user's deletion rate or the queue bound is exceeded, ``403`` when the
  guard runs in enforce mode and flags the request.
- ``POST /v1/activate`` — ``{"model": str, "version": str}`` hot-swaps
  the active version; subsequent unversioned requests hit the new one.
- ``POST /v1/compile`` — ``{"model": str, "version"?: str}`` compiles
  the version into a fused/arena/autotuned program at the serving width
  (:func:`repro.nn.compile`) and pushes the plan to every serving
  worker; answers with the compilation report (``compiled``/``plan``).
  ``400`` when the entry registered no input shape.
- ``GET /v1/healthz`` — liveness + registered model names.  Always
  ``200`` while the process answers; ``status`` reads ``"degraded"``
  (with worker-pool detail) when every serving worker is ejected and
  requests run through the inline fallback.
- ``GET /v1/readyz`` — load-balancer readiness: ``200`` at full
  capacity, ``503`` while degraded, so traffic drains to healthier
  hosts without killing a process that is still (slowly) serving.
- ``GET /v1/metrics`` — scheduler counters (occupancy, latency
  percentiles, queue depth), request outcomes, per-version screening
  flag rates.
- ``GET /v1/metrics.prom`` — the same counters in Prometheus text
  exposition format (``text/plain; version=0.0.4``), composed from the
  typed registries in :mod:`repro.obs.metrics`.
- ``GET /v1/debug/traces`` — the process-local flight recorder dump
  (``?trace=<id>`` filters to one request's spans); the CI smoke lanes
  write this into the failure artifact when an assertion trips.
- ``GET /v1/models`` — the store listing (versions, active flags, and
  per-version ``compiled``/``plan`` compilation state).

Every response — success or error, on either prefix — echoes the
request's trace id on the ``X-Trace-Id`` header (minted here when the
client did not send one), so a client can pull exactly its own spans
from ``/v1/debug/traces``.  Error responses share one envelope::

    {"error": {"code": str, "message": str, "trace_id": str}}

where ``code`` is a stable machine-readable slug (``bad_request``,
``not_found``, ``method_not_allowed``, ``backpressure``,
``version_skew``, ``rate_limited``, ``deletion_flagged``, ``internal``,
…) and ``message`` is human-readable detail.

Built on ``http.server.ThreadingHTTPServer`` (one thread per
connection) so concurrent requests genuinely queue up in the batcher —
that concurrency is what micro-batching coalesces.  No third-party
dependencies.
"""

from __future__ import annotations

import errno
import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs

import numpy as np

from ..obs import trace as _trace
from .batcher import QueueFullError

#: Refuse request bodies beyond this size (64 MiB of JSON ≈ abuse).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Canonical API prefix; unprefixed paths are deprecated aliases.
API_PREFIX = "/v1"

#: Fallback error-code slugs per status when the raising exception does
#: not carry an ``error_code`` of its own.
ERROR_CODES = {
    400: "bad_request",
    403: "forbidden",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    429: "backpressure",
    500: "internal",
    503: "unavailable",
}


@dataclass(frozen=True)
class Route:
    """One endpoint: method + canonical name + handler + body policy.

    ``handler`` names a method on the request handler class, so front
    ends specialize endpoints by plain subclassing (the cluster router
    overrides ``_predict`` / ``_activate`` and inherits the rest).
    ``needs_body`` routes get their JSON body parsed and validated
    before dispatch; the handler receives the payload dict.
    """

    method: str
    name: str
    handler: str
    needs_body: bool = False


#: The API surface.  Adding an endpoint = one entry + one handler method.
ROUTES: Tuple[Route, ...] = (
    Route("GET", "healthz", "_healthz"),
    Route("GET", "readyz", "_readyz"),
    Route("GET", "metrics", "_metrics"),
    Route("GET", "metrics.prom", "_metrics_prom"),
    Route("GET", "debug/traces", "_debug_traces"),
    Route("GET", "models", "_models"),
    Route("POST", "predict", "_predict", needs_body=True),
    Route("POST", "activate", "_activate", needs_body=True),
    Route("POST", "compile", "_compile", needs_body=True),
    Route("POST", "forget", "_forget", needs_body=True),
)


def route_table(routes: Tuple[Route, ...]
                ) -> Tuple[Dict[Tuple[str, str], Tuple[Route, bool]],
                           Dict[str, Tuple[str, ...]]]:
    """Expand routes into ``(method, path) -> (route, deprecated)`` plus
    a ``path -> allowed methods`` map (for 405 responses).

    Each route answers on its canonical ``/v1/<name>`` path and on the
    legacy ``/<name>`` alias, which is marked deprecated.
    """
    lookup: Dict[Tuple[str, str], Tuple[Route, bool]] = {}
    methods: Dict[str, set] = {}
    for route in routes:
        for path, deprecated in ((f"{API_PREFIX}/{route.name}", False),
                                 (f"/{route.name}", True)):
            lookup[(route.method, path)] = (route, deprecated)
            methods.setdefault(path, set()).add(route.method)
    return lookup, {path: tuple(sorted(ms)) for path, ms in methods.items()}


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to an :class:`InferenceServer`.

    ``inference`` is duck-typed: anything with ``predict`` / ``health``
    / ``metrics`` and a ``store`` can sit behind the handler — the
    cluster router front end (:mod:`repro.serve.cluster`) reuses this
    exact server with its own handler subclass via ``handler_cls``.
    """

    daemon_threads = True
    # Ephemeral-port reuse in quick test cycles.
    allow_reuse_address = True
    # socketserver's default accept backlog is 5; the closed-loop load
    # generator (and any real client burst) opens far more one-shot
    # connections at once, and overflowing SYNs stall ~1s for a
    # retransmit or get reset outright — which reads as p95 cliffs and
    # spurious "errored responses" that have nothing to do with serving.
    request_queue_size = 128

    #: Handler class; subclasses override to reroute individual verbs.
    handler_cls = None  # filled in after _Handler is defined

    def __init__(self, address: Tuple[int, int], inference) -> None:
        super().__init__(address, type(self).handler_cls)
        self.inference = inference

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    #: Route table shared by every front end; subclasses may extend
    #: ``routes`` and the expanded table is rebuilt per class.
    routes: Tuple[Route, ...] = ROUTES

    # The default implementation logs every request to stderr.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def inference(self):
        return self.server.inference

    @classmethod
    def table(cls):
        cached = cls.__dict__.get("_route_table")
        if cached is None:
            cached = route_table(cls.routes)
            cls._route_table = cached
        return cached

    # -- plumbing ------------------------------------------------------
    def _response_headers(self, headers: Optional[dict] = None) -> dict:
        merged = {}
        trace = getattr(self, "_trace", None)
        if trace is not None:
            merged[_trace.TRACE_HEADER] = trace
        if getattr(self, "_deprecated", False):
            # Draft RFC 9745 header on legacy unprefixed aliases; bodies
            # stay byte-for-byte identical to the /v1 canonical path.
            merged["Deprecation"] = "true"
        merged.update(headers or {})
        return merged

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in self._response_headers(headers).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in self._response_headers().items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_raw(self, status: int, body: bytes,
                  headers: Optional[dict] = None,
                  content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in self._response_headers(headers).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, status: int, code: str, message: str,
                             headers: Optional[dict] = None) -> None:
        self._send_json(status, {"error": {
            "code": code, "message": message,
            "trace_id": getattr(self, "_trace", None)}}, headers=headers)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("missing request body")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        payload = json.loads(self.rfile.read(length))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- dispatch ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        path, _, self._query = self.path.partition("?")
        # The front end is where trace ids are born: accept the client's
        # (normalized), mint one otherwise, and echo it back on every
        # response — success or error, any endpoint.
        self._trace = _trace.coerce_trace_id(
            self.headers.get(_trace.TRACE_HEADER))
        lookup, methods = self.table()
        entry = lookup.get((method, path))
        if entry is None:
            allowed = methods.get(path)
            self._deprecated = (allowed is not None
                                and not path.startswith(API_PREFIX + "/"))
            if allowed:
                self._send_error_envelope(
                    405, "method_not_allowed",
                    f"{method} not allowed for {path} "
                    f"(allowed: {', '.join(allowed)})",
                    headers={"Allow": ", ".join(allowed)})
            else:
                self._send_error_envelope(404, "not_found",
                                          f"unknown path {path}")
            return
        route, self._deprecated = entry
        try:
            payload = self._read_json() if route.needs_body else None
            getattr(self, route.handler)(payload, self._trace)
        except QueueFullError as exc:
            self._send_error_envelope(429, "backpressure", str(exc),
                                      headers={"Retry-After": "1"})
        except KeyError as exc:
            self._send_error_envelope(
                404, "not_found", str(exc.args[0] if exc.args else exc))
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_error_envelope(400, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - surfaced as 500
            # Exceptions carrying an ``http_status`` pick their own code
            # (version-skew refusals answer 409, guard rejections 403 or
            # 429); ``error_code`` picks the envelope slug.
            status = int(getattr(exc, "http_status", 500))
            code = (getattr(exc, "error_code", None)
                    or ERROR_CODES.get(status, "internal"))
            message = (str(exc) if status < 500
                       else f"{type(exc).__name__}: {exc}")
            headers = {"Retry-After": "1"} if status == 429 else None
            self._send_error_envelope(status, code, message, headers=headers)

    # -- handlers ------------------------------------------------------
    def _healthz(self, payload, trace) -> None:
        # Liveness: 200 as long as the process answers, with the health
        # detail inline — a degraded pool is alive.
        self._send_json(200, self.inference.health())

    def _readyz(self, payload, trace) -> None:
        # Readiness: 503 while degraded so load balancers route around
        # this host until the pool re-promotes.
        health = self.inference.health()
        self._send_json(200 if health["ready"] else 503, health)

    def _metrics(self, payload, trace) -> None:
        self._send_json(200, self.inference.metrics())

    def _metrics_prom(self, payload, trace) -> None:
        renderer = getattr(self.inference, "prometheus", None)
        if not callable(renderer):
            raise KeyError("no prometheus exposition for this server")
        self._send_text(
            200, renderer(),
            content_type="text/plain; version=0.0.4; charset=utf-8")

    def _debug_traces(self, payload, trace) -> None:
        query = parse_qs(getattr(self, "_query", ""))
        wanted = query.get("trace", [None])[0]
        self._send_json(200, {
            "spans": _trace.RECORDER.dump(trace=wanted),
            "stats": _trace.RECORDER.stats(),
            "tracing": _trace.tracing_enabled(),
        })

    def _models(self, payload, trace) -> None:
        self._send_json(200, self.inference.store.describe())

    def _predict(self, payload, trace) -> None:
        model, version, images = self._parse_predict(payload)
        result = self.inference.predict(model, images, version=version,
                                        trace=trace)
        self._send_json(200, result.to_json())

    @staticmethod
    def _parse_predict(payload: dict) -> Tuple[str, Optional[str],
                                               np.ndarray]:
        model = payload.get("model")
        if not isinstance(model, str) or not model:
            raise ValueError("'model' must be a non-empty string")
        version = payload.get("version")
        if version is not None and not isinstance(version, str):
            raise ValueError("'version' must be a string when given")
        if "inputs" not in payload:
            raise ValueError("missing 'inputs'")
        try:
            images = np.asarray(payload["inputs"], dtype=np.float32)
        except (TypeError, ValueError):
            raise ValueError("'inputs' must be a numeric (C,H,W) or "
                             "(N,C,H,W) nested list") from None
        return model, version, images

    def _activate(self, payload, trace) -> None:
        model, version = payload.get("model"), payload.get("version")
        if not isinstance(model, str) or not isinstance(version, str):
            raise ValueError("'model' and 'version' must be strings")
        self.inference.store.activate(model, version)
        self._send_json(200, {"model": model, "active": version})

    def _compile(self, payload, trace) -> None:
        model = payload.get("model")
        if not isinstance(model, str) or not model:
            raise ValueError("'model' must be a non-empty string")
        version = payload.get("version")
        if version is not None and not isinstance(version, str):
            raise ValueError("'version' must be a string when given")
        compiler = getattr(self.inference, "compile_model", None)
        if not callable(compiler):
            raise KeyError("this server does not support compilation")
        self._send_json(200, compiler(model, version))

    def _forget(self, payload, trace) -> None:
        plane = getattr(self.inference, "forget_plane", None)
        if plane is None:
            raise KeyError("no forget plane attached to this server")
        user = payload.get("user")
        if not isinstance(user, (str, int)) or isinstance(user, bool):
            raise ValueError("'user' must be a string or integer")
        sample_ids = payload.get("sample_ids")
        if (not isinstance(sample_ids, list) or not sample_ids
                or not all(isinstance(i, int) and not isinstance(i, bool)
                           for i in sample_ids)):
            raise ValueError("'sample_ids' must be a non-empty list of "
                             "integers")
        wait = payload.get("wait", True)
        if not isinstance(wait, bool):
            raise ValueError("'wait' must be a boolean when given")
        timeout = payload.get("timeout", 120.0)
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ValueError("'timeout' must be a positive number")
        result = plane.request(user, sample_ids, trace=trace, wait=wait,
                               timeout=float(timeout))
        self._send_json(200 if wait else 202, result)


ServingHTTPServer.handler_cls = _Handler


def start_http_server(inference, host: str = "127.0.0.1",
                      port: int = 0, retries: int = 3,
                      server_factory: type = ServingHTTPServer,
                      ) -> ServingHTTPServer:
    """Bind (``port=0`` = ephemeral) and serve on a background thread.

    A requested port that turns out to be taken (``EADDRINUSE`` — CI
    runners recycle ports between jobs, and ``allow_reuse_address``
    cannot paper over a *live* listener) is retried up to ``retries``
    times on an **ephemeral** rebind instead of failing the whole serve:
    read ``server.url`` for where it actually landed.  Other bind errors
    raise immediately.

    Returns the server; call :func:`stop_http_server` (or
    ``server.shutdown()``) to stop.
    """
    attempt = 0
    while True:
        try:
            httpd = server_factory((host, port), inference)
            break
        except OSError as exc:
            if exc.errno != errno.EADDRINUSE or attempt >= retries:
                raise
            attempt += 1
            port = 0        # ephemeral rebind: let the OS pick a free one
    thread = threading.Thread(target=httpd.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    httpd._serve_thread = thread
    return httpd


def stop_http_server(httpd: ServingHTTPServer) -> None:
    """Stop the accept loop and release the socket (idempotent)."""
    httpd.shutdown()
    httpd.server_close()
    thread = getattr(httpd, "_serve_thread", None)
    if thread is not None:
        thread.join(timeout=10.0)
