"""Stdlib HTTP front end for the inference server.

Endpoints (all JSON):

- ``POST /predict`` — ``{"model": str, "version"?: str, "inputs":
  nested lists (C,H,W) or (N,C,H,W)}`` → logits, argmax labels, the
  served version and (when screening is on) per-input STRIP flags.
  ``429`` with ``Retry-After`` under backpressure, ``404`` for unknown
  models/versions, ``400`` for malformed payloads.
- ``GET /healthz`` — liveness + registered model names.  Always ``200``
  while the process answers; ``status`` reads ``"degraded"`` (with
  worker-pool detail) when every serving worker is ejected and requests
  run through the inline fallback.
- ``GET /readyz`` — load-balancer readiness: ``200`` at full capacity,
  ``503`` while degraded, so traffic drains to healthier hosts without
  killing a process that is still (slowly) serving.
- ``GET /metrics`` — scheduler counters (occupancy, latency
  percentiles, queue depth), request outcomes, per-version screening
  flag rates.
- ``GET /metrics.prom`` — the same counters in Prometheus text
  exposition format (``text/plain; version=0.0.4``), composed from the
  typed registries in :mod:`repro.obs.metrics`.
- ``GET /debug/traces`` — the process-local flight recorder dump
  (``?trace=<id>`` filters to one request's spans); the CI smoke lanes
  write this into the failure artifact when an assertion trips.
- ``GET /models`` — the store listing (versions, active flags).
- ``POST /activate`` — ``{"model": str, "version": str}`` hot-swaps the
  active version; subsequent unversioned requests hit the new one.

Every ``/predict`` response echoes the request's trace id on the
``X-Trace-Id`` header — minted here when the client did not send one —
so a client can pull exactly its own spans from ``/debug/traces``.

Built on ``http.server.ThreadingHTTPServer`` (one thread per
connection) so concurrent requests genuinely queue up in the batcher —
that concurrency is what micro-batching coalesces.  No third-party
dependencies.
"""

from __future__ import annotations

import errno
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..obs import trace as _trace
from .batcher import QueueFullError
from .server import InferenceServer

#: Refuse request bodies beyond this size (64 MiB of JSON ≈ abuse).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to an :class:`InferenceServer`.

    ``inference`` is duck-typed: anything with ``predict`` / ``health``
    / ``metrics`` and a ``store`` can sit behind the handler — the
    cluster router front end (:mod:`repro.serve.cluster`) reuses this
    exact server with its own handler subclass via ``handler_cls``.
    """

    daemon_threads = True
    # Ephemeral-port reuse in quick test cycles.
    allow_reuse_address = True
    # socketserver's default accept backlog is 5; the closed-loop load
    # generator (and any real client burst) opens far more one-shot
    # connections at once, and overflowing SYNs stall ~1s for a
    # retransmit or get reset outright — which reads as p95 cliffs and
    # spurious "errored responses" that have nothing to do with serving.
    request_queue_size = 128

    #: Handler class; subclasses override to reroute individual verbs.
    handler_cls = None  # filled in after _Handler is defined

    def __init__(self, address: Tuple[str, int], inference: InferenceServer):
        super().__init__(address, type(self).handler_cls)
        self.inference = inference

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    # The default implementation logs every request to stderr.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def inference(self) -> InferenceServer:
        return self.server.inference

    # -- plumbing ------------------------------------------------------
    def _send_json(self, status: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @staticmethod
    def _trace_headers(trace: Optional[str],
                       headers: Optional[dict] = None) -> dict:
        merged = dict(headers or {})
        if trace is not None:
            merged[_trace.TRACE_HEADER] = trace
        return merged

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("missing request body")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        payload = json.loads(self.rfile.read(length))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            # Liveness: 200 as long as the process answers, with the
            # health detail inline — a degraded pool is alive.
            self._send_json(200, self.inference.health())
        elif self.path == "/readyz":
            # Readiness: 503 while degraded so load balancers route
            # around this host until the pool re-promotes.
            health = self.inference.health()
            self._send_json(200 if health["ready"] else 503, health)
        elif self.path == "/metrics":
            self._send_json(200, self.inference.metrics())
        elif self.path == "/metrics.prom":
            renderer = getattr(self.inference, "prometheus", None)
            if not callable(renderer):
                self._send_json(404, {"error": "no prometheus exposition "
                                               "for this server"})
                return
            self._send_text(
                200, renderer(),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        elif self.path.split("?", 1)[0] == "/debug/traces":
            query = parse_qs(urlsplit(self.path).query)
            wanted = query.get("trace", [None])[0]
            self._send_json(200, {
                "spans": _trace.RECORDER.dump(trace=wanted),
                "stats": _trace.RECORDER.stats(),
                "tracing": _trace.tracing_enabled(),
            })
        elif self.path == "/models":
            self._send_json(200, self.inference.store.describe())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        trace = None
        try:
            if self.path == "/predict":
                # The front end is where trace ids are born: accept the
                # client's (normalized), mint one otherwise, and echo it
                # back on every response — success or error.
                trace = _trace.coerce_trace_id(
                    self.headers.get(_trace.TRACE_HEADER))
                self._predict(trace)
            elif self.path == "/activate":
                self._activate()
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except QueueFullError as exc:
            self._send_json(429, {"error": str(exc)},
                            headers=self._trace_headers(
                                trace, {"Retry-After": "1"}))
        except KeyError as exc:
            self._send_json(404, {"error": str(exc.args[0] if exc.args
                                               else exc)},
                            headers=self._trace_headers(trace))
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)},
                            headers=self._trace_headers(trace))
        except Exception as exc:  # noqa: BLE001 - surfaced as 500
            # Exceptions carrying an ``http_status`` pick their own code
            # (the cluster router's version-skew refusal answers 409).
            self._send_json(getattr(exc, "http_status", 500),
                            {"error": f"{type(exc).__name__}: {exc}"},
                            headers=self._trace_headers(trace))

    def _predict(self, trace: Optional[str] = None) -> None:
        payload = self._read_json()
        model = payload.get("model")
        if not isinstance(model, str) or not model:
            raise ValueError("'model' must be a non-empty string")
        version = payload.get("version")
        if version is not None and not isinstance(version, str):
            raise ValueError("'version' must be a string when given")
        if "inputs" not in payload:
            raise ValueError("missing 'inputs'")
        try:
            images = np.asarray(payload["inputs"], dtype=np.float32)
        except (TypeError, ValueError):
            raise ValueError("'inputs' must be a numeric (C,H,W) or "
                             "(N,C,H,W) nested list") from None
        result = self.inference.predict(model, images, version=version,
                                        trace=trace)
        self._send_json(200, result.to_json(),
                        headers=self._trace_headers(trace))

    def _activate(self) -> None:
        payload = self._read_json()
        model, version = payload.get("model"), payload.get("version")
        if not isinstance(model, str) or not isinstance(version, str):
            raise ValueError("'model' and 'version' must be strings")
        self.inference.store.activate(model, version)
        self._send_json(200, {"model": model, "active": version})


ServingHTTPServer.handler_cls = _Handler


def start_http_server(inference: InferenceServer, host: str = "127.0.0.1",
                      port: int = 0, retries: int = 3,
                      server_factory: type = ServingHTTPServer,
                      ) -> ServingHTTPServer:
    """Bind (``port=0`` = ephemeral) and serve on a background thread.

    A requested port that turns out to be taken (``EADDRINUSE`` — CI
    runners recycle ports between jobs, and ``allow_reuse_address``
    cannot paper over a *live* listener) is retried up to ``retries``
    times on an **ephemeral** rebind instead of failing the whole serve:
    read ``server.url`` for where it actually landed.  Other bind errors
    raise immediately.

    Returns the server; call :func:`stop_http_server` (or
    ``server.shutdown()``) to stop.
    """
    attempt = 0
    while True:
        try:
            httpd = server_factory((host, port), inference)
            break
        except OSError as exc:
            if exc.errno != errno.EADDRINUSE or attempt >= retries:
                raise
            attempt += 1
            port = 0        # ephemeral rebind: let the OS pick a free one
    thread = threading.Thread(target=httpd.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    httpd._serve_thread = thread
    return httpd


def stop_http_server(httpd: ServingHTTPServer) -> None:
    """Stop the accept loop and release the socket (idempotent)."""
    httpd.shutdown()
    httpd.server_close()
    thread = getattr(httpd, "_serve_thread", None)
    if thread is not None:
        thread.join(timeout=10.0)
