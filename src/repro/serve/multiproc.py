"""Multi-process execution backend: per-worker folded replicas.

Single-process serving tops out at one core's forward rate no matter
how well the scheduler coalesces — every fixed-width batch runs on the
same folded copy in the same process.  :class:`MultiprocBackend` breaks
that ceiling: ``N`` persistent worker processes
(:class:`~repro.parallel.session.WorkerSession`) each hold their own
folded inference replica per model version, and the scheduler's batches
are dispatched to whichever worker is free, up to ``N`` batches in
flight at once.

Replica shipping
----------------
A model version crosses the process boundary **once**, at
:meth:`~MultiprocBackend.ensure_loaded` time — and, by default, zero
bytes of it travel through the pipe: the parent parks the entry's
``state_dict`` in the backend-wide
:class:`~repro.parallel.shm.StateChannel` and ships only a tiny
:class:`~repro.parallel.shm.StateSlot` descriptor + factory +
fingerprint; every worker copies the state out of shared memory,
rebuilds and folds the replica locally
(:func:`repro.nn.fold.folded_replica`), refusing to serve if the
rebuilt weights hash differently from the fingerprint.  When shared
memory is unavailable the state dict pickles through the pipe instead
(same bits, fatter payload); entries registered without a factory ship
the pickled module itself.

Prefetch + warm-up
------------------
:meth:`ensure_loaded` is cheap enough to run at *registration* time,
which is exactly what the serving layer does when replica prefetch is
on: state ships to every worker before the first request exists, and
:meth:`warm_up` then runs one fixed-compute-width forward per worker so
the first real batch pays no lazy-initialization spike (kernel plans,
im2col scratch, channel attachments, grown shm lanes).  A worker that
dies while a replica is shipping is detected by the session layer,
respawned, and re-shipped everything it held — the backend stays
usable through the crash.

Shared-memory return path
-------------------------
Per worker, two :class:`~repro.parallel.shm.ArrayChannel` lanes carry
the arrays: the padded input batch goes out through one, the logits
come back through the other — only tiny slot descriptors (segment name
+ shape + dtype) cross the pipe.  Channels grow on demand; a reply that
does not fit yet falls back to the pipe once while the parent resizes
for the next call.  This closes the ROADMAP item about worker results
being pickled through the pool pipe.

Determinism
-----------
The fixed-compute-width contract survives the hop by construction:
every worker's replica is rebuilt from the same state dict (verified by
fingerprint), folding is deterministic, and the conv kernels are
bit-identical at every intra-op thread count — so *which* worker serves
a batch cannot change a single bit, and ``--serve-workers 1/2/4`` all
produce identical logits (enforced by ``tests/serve/test_multiproc.py``).

Workers are drained at interpreter shutdown via ``atexit`` — after the
live batchers, so in-flight batches complete before their compute
disappears.
"""

from __future__ import annotations

import atexit
import functools
import os
import queue
import threading
import time
import weakref
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, Hashable, List, Optional

import numpy as np

from ..nn import graph as _graph
from ..nn.fold import _inference_copy_impl, folded_replica
from ..nn.tensor import Tensor
from ..nn.threading import set_intra_op_threads
from ..obs import trace as _trace
from ..obs.metrics import Registry
from ..parallel.pool import WorkerError, resolve_workers
from ..parallel.session import WorkerSession
from ..parallel.shm import (ArrayChannel, ArraySlot, ChannelPeer,
                            StateChannel, StateSlot)
from ..reliability import ReliabilityConfig
from . import batcher as _batcher


def _compiled_replica(replica, plan: dict):
    """Rebuild the parent's compiled program from its shipped plan.

    The plan carries the width, input shape and the parent's autotuned
    conv block table, so the worker compiles without timing a single
    candidate (``autotune=False``) — and the built-in verification
    forward still byte-checks the program against the local interpreted
    replica before it serves.  A trace failure degrades to the folded
    replica (one warning, interpreted serving), never to an error.
    """
    base = (replica.model if isinstance(replica, _graph.CompiledModel)
            else replica)
    shape = plan.get("input_shape")
    return _graph.compile(
        base, int(plan["width"]),
        input_shape=tuple(shape) if shape else None,
        tuned={str(k): int(v) for k, v in (plan.get("tuned") or {}).items()},
        autotune=False)


class ReplicaWorker:
    """Worker-side handler: replicas keyed by (name, version).

    Lives inside a :class:`WorkerSession` process.  ``load`` /
    ``load_model`` materialize folded replicas (compiling them when the
    payload shipped a plan); ``infer`` runs one fixed-width forward and
    parks the logits in the caller's output channel segment (falling
    back to the pipe when the segment is still too small — the parent
    grows it for the next call).
    """

    def __init__(self, intra_op_threads: int = 1):
        set_intra_op_threads(intra_op_threads)
        self._replicas: Dict[Hashable, object] = {}
        self._peer = ChannelPeer()
        # Worker-side metrics: drained into each reply envelope by the
        # session loop and merged into the parent's worker registry.
        self.obs_registry = Registry()
        self._infers = self.obs_registry.counter("infers")
        self._kernel_seconds = self.obs_registry.histogram("kernel_s")

    def ping(self) -> int:
        return os.getpid()

    def _install(self, key, replica, plan) -> int:
        if plan is not None:
            replica = _compiled_replica(replica, plan)
        self._replicas[tuple(key)] = replica
        return os.getpid()

    def load(self, key, factory, state, fingerprint, plan=None) -> int:
        """Materialize a replica from a pipe-shipped state dict (verified)."""
        return self._install(key, folded_replica(
            factory, state, expected_fingerprint=fingerprint), plan)

    def load_state(self, key, factory, slot: StateSlot, fingerprint,
                   plan=None) -> int:
        """Materialize a replica from a state dict parked in shared memory.

        Only the slot descriptor crossed the pipe; the arrays are copied
        out of the backend's state lane here, content-verified against
        the slot fingerprint, and the rebuilt replica is verified again
        against the registration fingerprint — a torn ship cannot serve
        a single divergent bit.
        """
        state = self._peer.read_state(slot)
        return self._install(key, folded_replica(
            factory, state, expected_fingerprint=fingerprint), plan)

    def load_model(self, key, model, plan=None) -> int:
        """Fallback: materialize from a pickled module (no factory)."""
        return self._install(key, _inference_copy_impl(model), plan)

    def compile(self, key, plan) -> int:
        """(Re)compile an already-loaded replica under a shipped plan."""
        replica = self._replicas.get(tuple(key))
        if replica is None:
            raise KeyError(f"no replica for {key!r} in worker {os.getpid()}")
        self._replicas[tuple(key)] = _compiled_replica(replica, plan)
        return os.getpid()

    def loaded_keys(self) -> List[tuple]:
        return sorted(self._replicas)

    def warm(self, key, batch_shape) -> int:
        """One zeros forward at the fixed width, no lanes involved.

        The recovery-time warm-up: the batch is materialized worker-side
        and nothing returns but the pid, so this cannot race another
        thread's in-flight writes to the handle's array lanes — the
        session pipe alone serializes it.
        """
        replica = self._replicas.get(tuple(key))
        if replica is None:
            raise KeyError(f"no replica for {key!r} in worker {os.getpid()}")
        replica(Tensor(np.zeros(tuple(batch_shape), dtype=np.float32)))
        return os.getpid()

    def infer(self, key, slot: ArraySlot, out_name: Optional[str],
              out_capacity: int) -> dict:
        replica = self._replicas.get(tuple(key))
        if replica is None:
            raise KeyError(
                f"no replica for {key!r} in worker {os.getpid()}; "
                f"loaded: {sorted(self._replicas)}")
        batch = self._peer.read(slot)
        kernel_started = time.perf_counter()
        logits = np.ascontiguousarray(replica(Tensor(batch)).data)
        kernel_s = time.perf_counter() - kernel_started
        self._infers.inc()
        self._kernel_seconds.observe(kernel_s)
        if out_name is not None and logits.nbytes <= out_capacity:
            out_slot = self._peer.write(out_name, logits)
            return {"via": "shm", "slot": out_slot, "kernel_s": kernel_s}
        return {"via": "pipe", "logits": logits,
                "needed_bytes": logits.nbytes, "kernel_s": kernel_s}

    def close(self) -> None:
        self._peer.close()
        self._replicas.clear()

    def close_orphaned(self) -> None:
        """Teardown after the parent died without cleanup (SIGKILL).

        The session loop calls this instead of :meth:`close` when it
        detects reparenting: the dead parent can never unlink the lanes
        it created for this worker, so the last process mapping them
        does it on the way out.
        """
        self._peer.unlink_all()
        self._replicas.clear()


class _WorkerHandle:
    """One session plus its two single-flight array lanes.

    ``supervisor`` (attached by the backend) tracks this slot's failure
    history and breaker state; ``ejected`` marks a slot the breaker has
    taken out of rotation — its lanes stay allocated (parent-owned) so
    a re-promoted worker re-attaches them by name.
    """

    def __init__(self, index: int, intra_op_threads: int,
                 context: Optional[str], input_bytes: int, output_bytes: int):
        self.index = index
        # Channels before the session: the first shm creation spawns the
        # resource-tracker process, and forked workers should inherit it
        # rather than each spawning their own.
        self.input = ArrayChannel(input_bytes)
        self.output = ArrayChannel(output_bytes)
        self.session = WorkerSession(
            functools.partial(ReplicaWorker, intra_op_threads),
            context=context, name=f"repro-serve-worker-{index}")
        self.supervisor = None
        self.ejected = False

    def respawn(self, timeout: float = 10.0) -> None:
        """Replace a dead worker process; the parent-owned lanes survive.

        The fresh process starts with no replicas and no channel
        attachments — the backend re-ships every loaded key right after
        (``MultiprocBackend._recover_handle``); the first call simply
        re-attaches the lanes by name.
        """
        self.session = self.session.respawn(timeout=timeout)

    def close(self, timeout: float = 10.0) -> None:
        self.session.close(timeout=timeout)
        self.input.unlink()
        self.output.unlink()


#: Live backends, drained at interpreter shutdown.
_LIVE: "weakref.WeakSet[MultiprocBackend]" = weakref.WeakSet()


def _close_live_backends() -> None:
    # Drain the batchers first: their in-flight batches need the workers
    # below to still be alive to complete.  (atexit runs hooks LIFO, and
    # this module is imported after `batcher`, so this hook fires first —
    # closing batchers here is idempotent with the batcher's own hook.)
    _batcher._close_live_batchers()
    for backend in list(_LIVE):
        backend.close()


atexit.register(_close_live_backends)


class MultiprocBackend:
    """Process-backed execution backend for :class:`~repro.serve.MicroBatcher`.

    Parameters
    ----------
    workers:
        Worker-process count (>= 1; 0 = one per available core).
    intra_op_threads:
        Conv-kernel threads per worker (default 1, so ``workers``
        processes x 1 thread stays at core count; the kernels are
        bit-identical at any value).
    context:
        multiprocessing start method (default: fork where available).
    call_timeout:
        Per-batch worker call budget in seconds; a worker that exceeds
        it is treated as failed (the request futures see the error).
    initial_input_bytes / initial_output_bytes:
        Starting capacity of the per-worker shm lanes (they grow on
        demand; the defaults fit a 32x(3,32,32) float32 batch and its
        logits without a single resize).
    reliability:
        :class:`~repro.reliability.ReliabilityConfig` — retry policy,
        per-worker failure threshold / respawn budget / breaker
        cooldown, and whether an all-workers-dead backend degrades to
        inline serving.  Defaults to the stock config.
    fallback_fn:
        ``fallback_fn(key, batch) -> logits`` run in the parent when
        every worker is ejected (the serving layer passes its own
        inline forward, which is bit-identical to a worker replica by
        the fingerprint contract).  Without one, an all-dead backend
        fails batches instead of degrading.
    """

    def __init__(self, workers: int = 2, intra_op_threads: int = 1,
                 context: Optional[str] = None, call_timeout: float = 120.0,
                 initial_input_bytes: int = 32 * 3 * 32 * 32 * 4,
                 initial_output_bytes: int = 32 * 256 * 4,
                 reliability: Optional[ReliabilityConfig] = None,
                 fallback_fn: Optional[Callable[[Hashable, np.ndarray],
                                                np.ndarray]] = None):
        self.workers = max(1, resolve_workers(workers))
        self.reliability = reliability or ReliabilityConfig()
        self._fallback_fn = fallback_fn
        # Per-call budget: the retry policy's deadline (when set) wins —
        # a stalled worker should trip supervision, not sit out the
        # generous transport timeout.
        deadline = self.reliability.retry.deadline_s
        self.call_timeout = (call_timeout if deadline is None
                             else min(call_timeout, deadline))
        self._handles: List[_WorkerHandle] = [
            _WorkerHandle(index, intra_op_threads, context,
                          initial_input_bytes, initial_output_bytes)
            for index in range(self.workers)
        ]
        for handle in self._handles:
            handle.supervisor = self.reliability.supervisor()
        self._idle: "queue.Queue[_WorkerHandle]" = queue.Queue()
        for handle in self._handles:
            self._idle.put(handle)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-serve-dispatch")
        self._ship_lock = threading.Lock()
        # Serializes warm-up sweeps: each drains the whole idle queue,
        # so two concurrent sweeps would deadlock holding one handle
        # each while waiting for the other's.
        self._warm_lock = threading.Lock()
        # Guards pool membership: active count, per-handle ejected flags
        # and supervisor transitions.  Leaf lock — nothing else is
        # acquired while holding it.
        self._pool_lock = threading.Lock()
        self._active_workers = self.workers
        # One probe at a time; non-blocking acquire so request threads
        # never queue up behind a re-promotion attempt.
        self._probe_lock = threading.Lock()
        # Serializes degraded-mode inline forwards (the parent is one
        # compute, and the folded copies are not thread-safe).
        self._degraded_lock = threading.Lock()
        self._shipped: Dict[Hashable, str] = {}     # key -> fingerprint
        self._entries: Dict[Hashable, object] = {}  # key -> store entry
        # One backend-wide state lane: the parent parks a version's
        # state dict once and every worker copies it out — N replicas,
        # one write.  Lazy (zero bytes until the first ship); if shared
        # memory turns out to be unavailable, each ship falls back to
        # the pipe in _prepare_payload.
        self._state_lane: Optional[StateChannel] = StateChannel()
        # Backend counters live in a typed registry (each increment is
        # individually thread-safe, no backend-wide stats lock); the
        # per-worker tallies are counter lists indexed by slot.
        self.registry = Registry()
        self._batches = self.registry.counter("batches")
        self._shm_returns = self.registry.counter("shm_returns")
        self._pipe_returns = self.registry.counter("pipe_returns")
        self._state_shm_ships = self.registry.counter("state_shm_ships")
        self._state_pipe_ships = self.registry.counter("state_pipe_ships")
        self._compile_ships = self.registry.counter("compile_ships")
        self._respawns = self.registry.counter("respawns")
        self._retries = self.registry.counter("retries")
        self._ship_retries = self.registry.counter("ship_retries")
        self._ejections = self.registry.counter("ejections")
        self._repromotions = self.registry.counter("repromotions")
        self._degraded_batches = self.registry.counter("degraded_batches")
        self._infer_counts = [self.registry.counter(f"infers_worker_{index}")
                              for index in range(self.workers)]
        self._warmup_counts = [self.registry.counter(f"warmups_worker_{index}")
                               for index in range(self.workers)]
        # Worker-process metrics (kernel timings, per-replica infer
        # counts) merge here from the deltas riding session replies.
        self.worker_registry = Registry()
        for handle in self._handles:
            handle.session.obs_sink = self.worker_registry
        self._warmed: set = set()                   # (key, batch shape)
        self._closed = False
        _LIVE.add(self)

    @property
    def max_inflight(self) -> int:
        """Concurrent-batch bound, shrunk to the *active* worker count.

        A property (re-read by the scheduler every loop) so an ejection
        immediately throttles dispatch to the surviving pool, and full
        degradation serializes batches through the inline fallback.
        """
        with self._pool_lock:
            return max(1, self._active_workers)

    @property
    def degraded(self) -> bool:
        """True while every worker is ejected (serving falls back inline)."""
        with self._pool_lock:
            return self._active_workers == 0

    # -- replica shipping ----------------------------------------------
    def ensure_loaded(self, key: Hashable, entry) -> None:
        """Ship ``entry``'s replica payload to every worker, once per key.

        ``entry`` is a :class:`~repro.serve.store.ModelEntry` (anything
        with ``fingerprint``, ``replica_payload()``).  Re-shipping the
        same key is a no-op; shipping a key whose fingerprint changed is
        rejected — registered models are immutable, hot-swap a new
        version instead.  A worker that dies while the replica ships is
        respawned, re-shipped its prior replicas, and retried once —
        the backend survives a crash-mid-prefetch.
        """
        shipped = self._shipped.get(key)
        if shipped == entry.fingerprint:
            return
        with self._ship_lock:
            shipped = self._shipped.get(key)
            if shipped == entry.fingerprint:
                return
            if shipped is not None:
                raise RuntimeError(
                    f"model {key!r} was re-registered with different "
                    f"weights after its replicas shipped; register a new "
                    f"version and hot-swap instead")
            payload = self._prepare_payload(entry)
            for handle in self._handles:
                if handle.ejected:
                    continue    # re-shipped at re-promotion time
                try:
                    self._ship_to_handle(handle, key, payload)
                except (WorkerError, TimeoutError) as exc:
                    if (handle.session.alive and not handle.session.poisoned
                            and getattr(exc, "error_type", "")
                            == "StateVerifyError"):
                        # Transport corruption, not drift: the parked
                        # payload went bad in flight.  Re-park the same
                        # state and ship again — the fingerprint proves
                        # the retry is the same bits.
                        self._ship_retries.inc()
                        payload = self._prepare_payload(entry)
                        self._ship_to_handle(handle, key, payload)
                        continue
                    if handle.session.alive and not handle.session.poisoned:
                        raise       # handler-side failure, not a crash
                    self._recover_handle_locked(handle)
                    # Recovery re-parked the dead worker's prior
                    # replicas through the state lane, so the in-flight
                    # slot is stale — re-park before retrying.
                    payload = self._prepare_payload(entry)
                    self._ship_to_handle(handle, key, payload)
            self._shipped[key] = entry.fingerprint
            self._entries[key] = entry

    def _prepare_payload(self, entry) -> dict:
        """Entry payload plus, when possible, its state parked in shm."""
        payload = entry.replica_payload()
        if payload["kind"] == "state" and self._state_lane is not None:
            try:
                payload = dict(payload)
                payload["slot"] = self._state_lane.write_state(
                    payload["state"])
            except OSError:
                payload.pop("slot", None)
        return payload

    def _ship_to_handle(self, handle: _WorkerHandle, key: Hashable,
                        payload: dict) -> None:
        plan = payload.get("plan")
        if payload["kind"] != "state":
            handle.session.call("load_model", key, payload["model"], plan,
                                timeout=self.call_timeout)
            return
        slot = payload.get("slot")
        if slot is not None:
            handle.session.call("load_state", key, payload["factory"],
                                slot, payload["fingerprint"], plan,
                                timeout=self.call_timeout)
            self._state_shm_ships.inc()
        else:
            handle.session.call("load", key, payload["factory"],
                                payload["state"], payload["fingerprint"],
                                plan, timeout=self.call_timeout)
            self._state_pipe_ships.inc()

    def compile_key(self, key: Hashable, plan: dict) -> int:
        """Push a compiled plan to every active worker holding ``key``.

        The explicit-compile path (``/v1/compile`` after replicas
        already shipped plan-less): each worker rebuilds its replica as
        a compiled program from the plan's autotune table.  Recovery
        needs no special casing — by the time this runs the parent
        entry is compiled, so :meth:`_recover_handle_locked`'s re-ship
        payloads carry the plan themselves.  Returns the worker count
        reached.
        """
        if self._closed:
            raise RuntimeError("backend is closed")
        shipped = 0
        with self._ship_lock:
            if key not in self._shipped:
                raise KeyError(
                    f"no replica shipped for {key!r}; call ensure_loaded() "
                    f"before compiling it")
            for handle in self._handles:
                if handle.ejected:
                    continue    # re-shipped (plan included) at re-promotion
                try:
                    handle.session.call("compile", key, plan,
                                        timeout=self.call_timeout)
                except (WorkerError, TimeoutError):
                    if handle.session.alive and not handle.session.poisoned:
                        raise   # handler-side failure, not a crash
                    self._recover_handle_locked(handle)
                shipped += 1
                self._compile_ships.inc()
        return shipped

    def _recover_handle_locked(self, handle: _WorkerHandle) -> None:
        """Respawn a dead worker and re-ship everything it held.

        Caller holds ``_ship_lock``.  The fresh process re-attaches the
        parent-owned lanes on first use; replicas for every
        already-shipped key are rebuilt from their (still parked or
        re-parked) payloads, and every warm-up the pool already ran is
        replayed worker-side (lane-free ``warm`` calls, so a concurrent
        dispatch on another thread cannot be raced) — the worker
        rejoins the pool fully warm, not just fully loaded.
        """
        handle.respawn()
        self._respawns.inc()
        with self._pool_lock:
            handle.supervisor.record_respawn()
        for shipped_key, shipped_entry in self._entries.items():
            try:
                self._ship_to_handle(handle, shipped_key,
                                     self._prepare_payload(shipped_entry))
            except WorkerError as exc:
                if (handle.session.alive and not handle.session.poisoned
                        and exc.error_type == "StateVerifyError"):
                    # Same transport-corruption retry as ensure_loaded.
                    self._ship_retries.inc()
                    self._ship_to_handle(handle, shipped_key,
                                         self._prepare_payload(shipped_entry))
                else:
                    raise
        for warmed_key, batch_shape in sorted(self._warmed):
            if warmed_key in self._entries:
                handle.session.call("warm", warmed_key, batch_shape,
                                    timeout=self.call_timeout)
                self._warmup_counts[handle.index].inc()

    # -- warm-up -------------------------------------------------------
    def warm_up(self, key: Hashable, input_shape, width: int) -> int:
        """Run one fixed-width zeros forward per worker for ``key``.

        Pays every first-use cost up front — kernel planning, im2col
        scratch allocation, worker channel attachments, return-lane
        growth — so the first *real* batch at this width runs at
        steady-state latency.  Idempotent per (key, batch shape);
        returns the number of worker forwards actually run.
        """
        batch_shape = (int(width),) + tuple(int(dim) for dim in input_shape)
        mark = (key, batch_shape)
        with self._ship_lock:
            if key not in self._shipped:
                raise KeyError(
                    f"no replica shipped for {key!r}; call ensure_loaded() "
                    f"before warming it up")
            if mark in self._warmed:
                return 0
        batch = np.zeros(batch_shape, dtype=np.float32)
        warmed = 0
        # One sweep at a time (_warm_lock): a sweep drains the whole
        # idle queue, so concurrent sweeps would each hold part of the
        # pool while waiting for the rest.  In-flight batches simply
        # delay their handle's turn.  Only *active* handles are swept —
        # ejected ones are out of the queue entirely (they re-warm at
        # re-promotion time), and the bounded get below keeps a
        # mid-sweep ejection from wedging the sweep forever.
        held: List[_WorkerHandle] = []
        with self._warm_lock:
            try:
                with self._pool_lock:
                    target = self._active_workers
                for _ in range(target):
                    try:
                        handle = self._idle.get(timeout=self.call_timeout)
                    except queue.Empty:
                        break
                    held.append(handle)
                    try:
                        self._infer_on(handle, key, batch)
                    except (WorkerError, TimeoutError) as exc:
                        # Same recovery as _run: never hand a corpse
                        # (or a desynchronized pipe) back to the idle
                        # queue — respawn, re-ship, and retry this
                        # worker's warm-up once.
                        if (handle.session.alive
                                and not handle.session.poisoned
                                and isinstance(exc, WorkerError)):
                            raise
                        handle.session.kill()
                        with self._ship_lock:
                            if not handle.session.alive:
                                self._recover_handle_locked(handle)
                        self._infer_on(handle, key, batch)
                    self._warmup_counts[handle.index].inc()
                    warmed += 1
            finally:
                for handle in held:
                    self._idle.put(handle)
        # Mark only after every worker actually warmed: a failed warm-up
        # (worker died mid-forward) must stay retryable, not be recorded
        # as done.  A concurrent duplicate warm-up is merely idempotent
        # extra forwards.
        with self._ship_lock:
            self._warmed.add(mark)
        return warmed

    def shipped_keys(self) -> List[Hashable]:
        with self._ship_lock:
            return sorted(self._shipped)

    def worker_pids(self) -> List[int]:
        return [handle.session.pid for handle in self._handles]

    # -- batch execution -----------------------------------------------
    def submit(self, key: Hashable, batch: np.ndarray,
               traces: tuple = ()) -> Future:
        """Dispatch one padded batch; resolves to its logits.

        ``traces`` carries the trace ids of the coalesced requests; the
        worker-side spans (infer round-trip, kernel, shm return, retry
        hops) are recorded under the head request's id.

        Blocks only briefly (executor bookkeeping): the scheduler bounds
        dispatches to ``max_inflight``, so a free executor thread — and
        behind it a free worker — is always close at hand.
        """
        if self._closed:
            raise RuntimeError("backend is closed")
        return self._executor.submit(self._run, key, batch, traces)

    def _infer_on(self, handle: _WorkerHandle, key: Hashable,
                  batch: np.ndarray, record: bool = False,
                  trace: Optional[str] = None) -> np.ndarray:
        """One forward on one leased worker (lanes out, logits back)."""
        with _trace.span("worker.infer", trace=trace,
                         worker=handle.index) as tags:
            slot = handle.input.write(batch)
            reply = handle.session.call(
                "infer", key, slot, handle.output.name,
                handle.output.capacity, timeout=self.call_timeout)
            kernel_s = reply.get("kernel_s")
            if trace is not None and kernel_s is not None:
                # The worker timed its own forward; graft it into the
                # request's trace as an externally measured span.
                _trace.record_span("worker.kernel", trace, kernel_s,
                                   tags={"worker": handle.index})
            if reply["via"] == "shm":
                if tags is not None:
                    tags["via"] = "shm"
                read_started = time.perf_counter()
                logits = handle.output.read(reply["slot"])
                if trace is not None:
                    _trace.record_span(
                        "shm.return", trace,
                        time.perf_counter() - read_started,
                        start_s=read_started,
                        tags={"worker": handle.index,
                              "nbytes": int(logits.nbytes)})
                if record:
                    self._batches.inc()
                    self._shm_returns.inc()
            else:
                if tags is not None:
                    tags["via"] = "pipe"
                logits = reply["logits"]
                # Grow the return lane so the next batch of this shape
                # comes back through shared memory.
                handle.output.ensure(reply["needed_bytes"])
                if record:
                    self._batches.inc()
                    self._pipe_returns.inc()
        return logits

    def _run(self, key: Hashable, batch: np.ndarray,
             traces: tuple = ()) -> np.ndarray:
        """Serve one fixed-width batch, retrying through worker failures.

        Fixed-width batches are idempotent and bit-identical on replay
        (the determinism contract), so an infrastructure failure —
        crashed worker, blown deadline, broken pipe — burns a retry
        attempt instead of a client response.  Handler-level errors
        from a healthy worker (missing replica, bad key) are
        deterministic and re-raise immediately.  When every worker is
        ejected, the batch runs inline through ``fallback_fn`` instead
        of failing.
        """
        if key not in self._shipped:
            raise KeyError(
                f"no replica shipped for {key!r}; call ensure_loaded() "
                f"before submitting batches for it")
        retry = self.reliability.retry
        trace = traces[0] if traces else None
        last_exc: Optional[BaseException] = None
        for attempt in range(1, retry.max_attempts + 1):
            self._maybe_repromote()
            handle = self._lease()
            if handle is None:
                return self._run_degraded(key, batch, trace=trace)
            try:
                self._infer_counts[handle.index].inc()
                logits = self._infer_on(handle, key, batch, record=True,
                                        trace=trace)
            except (WorkerError, TimeoutError) as exc:
                hop_outcome = self._after_failure(handle, exc)
                if trace is not None and hop_outcome != "app":
                    # A failed attempt on this worker: one retry hop in
                    # the request's trace (the re-dispatch follows).
                    _trace.record_span(
                        "retry.hop", trace, 0.0,
                        tags={"worker": handle.index, "attempt": attempt,
                              "error": type(exc).__name__,
                              "resolution": hop_outcome})
                if hop_outcome == "app":
                    raise   # deterministic handler error — don't retry
                last_exc = exc
                if attempt < retry.max_attempts:
                    self._retries.inc()
                    time.sleep(retry.backoff(
                        attempt, token=f"worker-{handle.index}"))
                continue
            with self._pool_lock:
                handle.supervisor.record_success()
            self._idle.put(handle)
            return logits
        if self.degraded:
            return self._run_degraded(key, batch, trace=trace)
        raise last_exc      # attempts exhausted with workers still up

    def _lease(self) -> Optional[_WorkerHandle]:
        """Take an idle active worker; ``None`` once the pool is empty.

        Bounded waits re-check the active count so a thread blocked on
        the queue notices when the last worker is ejected underneath it
        (nothing will ever be re-queued until a probe succeeds).
        """
        while True:
            with self._pool_lock:
                if self._active_workers == 0:
                    return None
            try:
                handle = self._idle.get(timeout=0.1)
            except queue.Empty:
                continue
            if handle.ejected:
                continue    # stale entry; drop it
            return handle

    def _after_failure(self, handle: _WorkerHandle,
                       exc: BaseException) -> str:
        """Classify a failed call and put the pool back in order.

        Returns ``"app"`` for a deterministic handler error (worker
        healthy, handle re-queued — the caller re-raises).  For
        infrastructure failures the worker is killed if needed, the
        failure recorded, and the slot either ejected (breaker open) or
        recovered (respawn + re-ship + re-warm) and re-queued.
        """
        session = handle.session
        if (isinstance(exc, WorkerError) and session.alive
                and not session.poisoned):
            self._idle.put(handle)
            return "app"
        # A poisoned session's pipe holds a stale reply; a dead one
        # holds nothing.  Either way the process is done for.
        session.kill()
        with self._pool_lock:
            handle.supervisor.record_failure()
            if handle.supervisor.should_eject():
                self._eject_locked(handle)
                return "ejected"
        # Recover in place.  Recovery itself can fail (the respawned
        # worker can die during re-ship); each failure burns breaker
        # budget, so this loop is bounded by the respawn budget.
        while True:
            try:
                with self._ship_lock:
                    if not handle.session.alive or handle.session.poisoned:
                        self._recover_handle_locked(handle)
                break
            except (WorkerError, TimeoutError):
                handle.session.kill()
                with self._pool_lock:
                    handle.supervisor.record_failure()
                    if handle.supervisor.should_eject():
                        self._eject_locked(handle)
                        return "ejected"
        self._idle.put(handle)
        return "recovered"

    def _eject_locked(self, handle: _WorkerHandle) -> None:
        """Open the breaker on a slot (caller holds ``_pool_lock``)."""
        if handle.ejected:
            return
        handle.ejected = True
        handle.supervisor.eject()
        self._active_workers -= 1
        self._ejections.inc()

    def _run_degraded(self, key: Hashable, batch: np.ndarray,
                      trace: Optional[str] = None) -> np.ndarray:
        """Inline fallback: every worker is gone, serve from the parent.

        Slower (one serialized compute) but never down — and
        bit-identical to worker serving, because the parent's folded
        copy is built from the same fingerprinted state the replicas
        were.
        """
        if self._fallback_fn is None or not self.reliability.degrade_to_inline:
            raise WorkerError(
                "<backend>", "NoWorkersError",
                f"all {self.workers} workers are ejected and no inline "
                f"fallback is configured")
        self._degraded_batches.inc()
        with _trace.span("batch.degraded", trace=trace):
            with self._degraded_lock:
                return np.asarray(self._fallback_fn(key, batch))

    def _maybe_repromote(self) -> None:
        """Probe ejected slots whose breaker cooldown has elapsed.

        Opportunistic and non-blocking: at most one probe sweep runs at
        a time, and request threads that lose the race just carry on
        with the pool they have.  A probe is a full recovery — respawn,
        re-ship every entry, replay every warm-up — so a slot rejoins
        the pool fully warm or not at all.
        """
        if self._closed:
            return
        with self._pool_lock:
            due = [handle for handle in self._handles
                   if handle.ejected and handle.supervisor.probe_due()]
        if not due:
            return
        if not self._probe_lock.acquire(blocking=False):
            return
        try:
            for handle in due:
                self._probe(handle)
        finally:
            self._probe_lock.release()

    def _probe(self, handle: _WorkerHandle) -> None:
        with self._pool_lock:
            if not handle.ejected or not handle.supervisor.probe_due():
                return
            handle.supervisor.begin_probe()
        try:
            with self._ship_lock:
                self._recover_handle_locked(handle)
        except (WorkerError, TimeoutError):
            handle.session.kill()
            with self._pool_lock:
                handle.supervisor.probe_failed()
            return
        with self._pool_lock:
            handle.supervisor.close_breaker()
            handle.ejected = False
            self._active_workers += 1
        self._repromotions.inc()
        self._idle.put(handle)

    # -- introspection / lifecycle -------------------------------------
    def stats(self) -> dict:
        with self._pool_lock:
            active = self._active_workers
            supervisors = [handle.supervisor.snapshot()
                           for handle in self._handles]
        return {
            "kind": "multiproc",
            "workers": self.workers,
            "active_workers": active,
            "degraded": active == 0,
            "pids": self.worker_pids(),
            "shipped": ["/".join(map(str, key))
                        for key in self.shipped_keys()],
            "batches": self._batches.value,
            "shm_returns": self._shm_returns.value,
            "pipe_returns": self._pipe_returns.value,
            # Replica state shipments by transport (per worker × key):
            # a healthy shm-enabled backend shows zero pipe ships.
            "state_shm_ships": self._state_shm_ships.value,
            "state_pipe_ships": self._state_pipe_ships.value,
            "compile_ships": self._compile_ships.value,
            "respawns": self._respawns.value,
            # Supervision: batch replays after infrastructure failures,
            # re-parked state ships after fingerprint-verify failures,
            # breaker opens, probe re-admissions, and batches the
            # parent served inline while the pool was empty.
            "retries": self._retries.value,
            "ship_retries": self._ship_retries.value,
            "ejections": self._ejections.value,
            "repromotions": self._repromotions.value,
            "degraded_batches": self._degraded_batches.value,
            "breakers": supervisors,
            # Inference dispatches only — session.calls also counts the
            # one-time replica shipments, so it can never read 0 and is
            # useless for "did this worker actually serve?" checks.
            "infers_per_worker": [counter.value
                                  for counter in self._infer_counts],
            # Warm-up forwards are counted apart from served batches so
            # "did this worker serve real traffic?" stays answerable.
            "warmups_per_worker": [counter.value
                                   for counter in self._warmup_counts],
            "calls_per_worker": [handle.session.calls
                                 for handle in self._handles],
            # Worker-process metrics shipped back on reply envelopes.
            "worker_metrics": self.worker_registry.snapshot(),
        }

    def close(self, timeout: float = 10.0) -> None:
        """Stop dispatching, stop the workers, free the shm lanes.

        Idempotent.  Never waits longer than ~``timeout`` per worker:
        queued dispatches are cancelled and sessions escalate to
        ``terminate()``, so a wedged worker call (bounded only by
        ``call_timeout``) cannot hang interpreter exit — callers who
        need in-flight batches to finish drain the batcher first
        (``InferenceServer.close`` does).
        """
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        for handle in self._handles:
            # Closing the session breaks any still-running call's pipe,
            # so its dispatch thread errors out promptly instead of
            # sitting in call_timeout.
            handle.close(timeout=timeout)
        if self._state_lane is not None:
            self._state_lane.unlink()
        with self._ship_lock:
            self._shipped.clear()
            self._entries.clear()
            self._warmed.clear()

    def __enter__(self) -> "MultiprocBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
