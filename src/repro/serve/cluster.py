"""Multi-host serving: replica groups behind a routing front end.

The single-host :class:`~repro.serve.server.InferenceServer` tops out
at one machine's worker pool; this module lifts the same contracts one
level up.  A :class:`ServingCluster` runs **N host processes** — each a
complete single-host serving stack (its own :class:`ModelStore`,
:class:`InferenceServer` with an optional
:class:`~repro.serve.multiproc.MultiprocBackend`, HTTP listener, and a
:class:`~repro.parallel.netstate.StateStreamServer` control/state
port) — and a **router** that speaks the existing HTTP API in front of
them:

- ``(model, version)`` keys are hashed onto **replica groups**
  (rendezvous hashing, :class:`GroupMap`: adding or removing a group
  only remaps the keys that land on it);
- model versions ship to their group's hosts over the network state
  channel (:func:`~repro.parallel.netstate.ship_state` — length-
  prefixed stream, resumable, fingerprint re-verified on receive), and
  each host prefetches + warms its replicas before taking traffic;
- ``/predict`` pins a request to **one** concrete version at the
  router (``version=None`` resolves against the router's authoritative
  store exactly once) and forwards the whole batch with that explicit
  version — a request batch is never split across versions, no matter
  what activations land mid-flight;
- ``/activate`` propagates cluster-wide under a per-model skew bound:
  at most one activation per model may be in flight, a concurrent one
  is refused with :class:`VersionSkewError` (HTTP 409), and the
  router's own store flips **last** so unversioned traffic only moves
  after every reachable group member acked;
- host death is handled the way ``respawn`` handles worker death, one
  level up: the router re-routes to surviving group members,
  per-host :class:`~repro.reliability.retry.WorkerSupervisor` breakers
  eject persistently failing hosts and re-admit them through cooldown
  probes (full respawn + re-ship + re-warm), a **whole lost group**
  degrades to re-routing its keys onto any surviving host (shipping
  state on demand), and a fully lost cluster falls back to serving
  inline from the router's own folded copies — bit-identical at every
  tier, because every path runs the same fixed-compute-width forward.

Determinism is the load-bearing property: retries, re-routes and
fallbacks are safe *because* any replica of a version produces the
same bits as any other, which the fixed-width batching contract
guarantees end to end.
"""

from __future__ import annotations

import hashlib
import http.client
import itertools
import json
import math
import multiprocessing as mp
import os
import signal
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..obs import trace as _trace
from ..obs.metrics import Registry, render_prometheus
from ..parallel.netstate import (NetstateError, StateStreamServer, request,
                                 ship_state)
from ..parallel.pool import default_context
from ..reliability import ReliabilityConfig
from .batcher import BatchPolicy, QueueFullError
from .http import ServingHTTPServer, _Handler, start_http_server, \
    stop_http_server
from .server import InferenceServer
from .store import ModelStore


class VersionSkewError(RuntimeError):
    """A cluster-wide activation would exceed the version-skew bound.

    At most one activation per model propagates at a time; refusing the
    overlapping one (HTTP 409 at the router) is what keeps the skew a
    client can observe bounded to "old version or new version", never a
    mix within one request batch.
    """

    http_status = 409
    error_code = "version_skew"


class RouteError(RuntimeError):
    """No host (and no fallback) could serve a routable request."""


# -- group mapping -----------------------------------------------------

def _hrw_score(key: str, group: int) -> int:
    digest = hashlib.sha1(f"{key}|{group}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class GroupMap:
    """Rendezvous (highest-random-weight) map of keys onto group ids.

    Every ``(model, version)`` key scores every group with a stable
    hash and is owned by the top scorer, which gives the property a
    consistent-hashing router needs: **removing** a group remaps only
    the keys it owned, and **adding** one steals only the keys that now
    score it highest — everything else keeps its placement, so a
    topology change never invalidates the whole cluster's shipped
    state.  Thread-safe; group ids are plain ints.
    """

    def __init__(self, groups: Iterable[int]):
        self._lock = threading.Lock()
        self._groups: Tuple[int, ...] = tuple(sorted(set(groups)))
        if not self._groups:
            raise ValueError("GroupMap needs at least one group")

    def groups(self) -> Tuple[int, ...]:
        with self._lock:
            return self._groups

    def add_group(self, group: int) -> None:
        with self._lock:
            self._groups = tuple(sorted(set(self._groups) | {group}))

    def remove_group(self, group: int) -> None:
        with self._lock:
            remaining = tuple(g for g in self._groups if g != group)
            if not remaining:
                raise ValueError("cannot remove the last group")
            self._groups = remaining

    def owner(self, model: str, version: str) -> int:
        key = f"{model}@{version}"
        with self._lock:
            return max(self._groups, key=lambda g: (_hrw_score(key, g), g))


# -- host process ------------------------------------------------------

def _host_register(store: ModelStore, message: dict,
                   state: Optional[dict]) -> dict:
    """Rebuild and register one shipped model version on this host."""
    from ..nn.fold import _state_fingerprint
    name, version = message["name"], message["version"]
    try:
        existing = store.entry(name, version)
    except KeyError:
        existing = None
    if existing is not None:
        # Re-ship of a version this host already holds (degraded routing
        # or a lost ack): idempotent as long as the weights agree.
        if existing.fingerprint != message["fingerprint"]:
            raise RuntimeError(
                f"{name}/{version} is already registered on this host "
                f"with different weights")
        if message.get("activate"):
            store.activate(name, version)
        return {"registered": f"{name}/{version}", "duplicate": True,
                "warmed": message.get("input_shape") is not None}
    if state is None:
        raise ValueError("register message carried no state payload")
    factory = message["factory"]
    model = factory()
    model.load_state_dict(state, strict=True)
    model.eval()
    rebuilt = _state_fingerprint(model)
    if rebuilt != message["fingerprint"]:
        raise RuntimeError(
            f"rebuilt {name}/{version} fingerprints {rebuilt[:12]}, the "
            f"router shipped {message['fingerprint'][:12]} — the factory "
            f"does not reproduce the registered model on this host")
    store.register(name, model, version=version,
                   metadata=message.get("metadata"),
                   activate=bool(message.get("activate", True)),
                   spec=factory,
                   input_shape=message.get("input_shape"),
                   plan=message.get("plan"))
    # Registration on a prefetching host triggers replica ship + warm-up
    # before this reply is sent (the store subscription runs inline), so
    # "warmed" in the ship reply is the router's re-warm evidence.
    return {"registered": f"{name}/{version}",
            "warmed": message.get("input_shape") is not None}


def _host_main(conn, index: int, options: dict) -> None:
    """Entry point of one simulated host process.

    Builds an independent single-host serving stack — store, inference
    server (multiproc backend when ``workers`` >= 2, replicas
    prefetched and warmed on register), HTTP listener, and the netstate
    control port — reports its ephemeral ports back through ``conn``,
    then parks until the parent says ``"shutdown"`` (or dies, which
    reads as EOF on the pipe).
    """
    # A Ctrl-C in the router's terminal hits the whole foreground
    # process group.  Shutdown is the router's job (it sends the
    # "shutdown" sentinel after stopping its front end); a host dying
    # mid-KeyboardInterrupt would spray tracebacks over the operator's
    # console and strand its worker children.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    store = ModelStore()
    inference = None
    control = None
    httpd = None
    try:
        inference = InferenceServer(store, policy=options["policy"],
                                    workers=options["workers"],
                                    response_cache=options["response_cache"],
                                    prefetch_replicas=True,
                                    reliability=options["reliability"],
                                    compile_models=options.get("compile",
                                                               True))

        def handle(message: dict, state: Optional[dict]) -> dict:
            kind = message.get("kind")
            if kind == "register":
                return _host_register(store, message, state)
            if kind == "activate":
                store.activate(message["name"], message["version"])
                return {"active": message["version"]}
            if kind == "compile":
                entry = store.entry(message["name"], message.get("version"))
                if message.get("plan"):
                    # The router's plan (autotune table included) seeds
                    # this host's compile so no candidate timing reruns.
                    entry.plan_hint = message["plan"]
                return inference.compile_model(message["name"],
                                               message.get("version"))
            if kind == "ping":
                return {"pid": os.getpid(), "models": sorted(store.describe())}
            raise ValueError(f"unknown control message kind {kind!r}")

        control = StateStreamServer(handle)
        httpd = start_http_server(inference)
        conn.send({"http_port": httpd.server_address[1],
                   "state_port": control.address[1],
                   "pid": os.getpid()})
        parent_pid = os.getppid()
        while True:
            try:
                if not conn.poll(1.0):
                    # Under the fork start method every later-spawned
                    # sibling inherits a copy of this pipe's parent end
                    # (and this process holds one itself from before
                    # the fork), so EOF alone can never signal parent
                    # death — watch for the orphan reparenting instead.
                    if os.getppid() != parent_pid:
                        break
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                break               # parent died: shut down with it
            if message == "shutdown":
                break
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        try:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
        except (OSError, BrokenPipeError):
            pass
    finally:
        if httpd is not None:
            stop_http_server(httpd)
        if control is not None:
            control.close()
        if inference is not None:
            inference.close()


class HostHandle:
    """The parent-side handle of one host process (respawnable)."""

    def __init__(self, index: int, ctx, options: dict,
                 spawn_timeout: float = 60.0):
        self.index = index
        self.host = "127.0.0.1"
        self.http_port: Optional[int] = None
        self.state_port: Optional[int] = None
        self.pid: Optional[int] = None
        self.generation = 0
        self.proc = None
        self.conn = None
        self._ctx = ctx
        self._options = options
        self._spawn_timeout = spawn_timeout
        self._alive = False

    @property
    def alive(self) -> bool:
        return (self._alive and self.proc is not None
                and self.proc.is_alive())

    @property
    def state_address(self) -> Tuple[str, int]:
        return self.host, self.state_port

    def mark_dead(self) -> None:
        self._alive = False

    def spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        # Not a daemon: hosts run their own worker children (daemonic
        # processes may not), and parent death still tears them down —
        # _host_main watches the control pipe and its ppid and shuts
        # itself off when the parent goes away.
        proc = self._ctx.Process(
            target=_host_main, args=(child_conn, self.index, self._options),
            name=f"repro-serve-host-{self.index}", daemon=False)
        proc.start()
        child_conn.close()
        if not parent_conn.poll(self._spawn_timeout):
            proc.kill()
            proc.join(5.0)
            parent_conn.close()
            raise RuntimeError(f"host {self.index} did not report its ports "
                               f"within {self._spawn_timeout:.0f}s")
        info = parent_conn.recv()
        if "error" in info:
            proc.join(5.0)
            parent_conn.close()
            raise RuntimeError(f"host {self.index} failed to start: "
                               f"{info['error']}")
        self.proc, self.conn = proc, parent_conn
        self.http_port = info["http_port"]
        self.state_port = info["state_port"]
        self.pid = info["pid"]
        self.generation += 1
        self._alive = True

    def kill(self) -> None:
        """SIGKILL the host process (chaos drills; no cleanup runs)."""
        self._alive = False
        if self.proc is not None and self.proc.is_alive():
            self.proc.kill()
            self.proc.join(5.0)

    def shutdown(self, timeout: float = 15.0) -> None:
        """Graceful stop: ask, wait, then escalate."""
        self._alive = False
        if self.conn is not None:
            try:
                self.conn.send("shutdown")
            except (OSError, BrokenPipeError):
                pass
        if self.proc is not None:
            self.proc.join(timeout)
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(5.0)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(5.0)
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def respawn(self) -> None:
        """Replace a dead (or wedged) host process with a fresh one."""
        if self.proc is not None and self.proc.is_alive():
            self.kill()
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        self.spawn()


# -- router ------------------------------------------------------------

@dataclass
class RelayResult:
    """A downstream prediction relayed by the router (JSON passthrough)."""

    payload: dict

    def to_json(self) -> dict:
        return self.payload

    @property
    def logits(self) -> np.ndarray:
        return np.asarray(self.payload["logits"], dtype=np.float32)

    @property
    def version(self) -> Optional[str]:
        return self.payload.get("version")

    @property
    def cached(self) -> bool:
        return bool(self.payload.get("cached"))


class _RouterHandler(_Handler):
    """The single-host HTTP handler with predict/activate rerouted.

    The route table comes straight from :class:`_Handler` — the router
    specializes endpoints by overriding their handler methods, not by
    re-declaring routes.  ``GET`` endpoints and ``/forget`` are
    inherited as-is (the router duck-types ``health`` / ``metrics`` /
    ``store`` / ``forget_plane``); ``/predict`` relays the downstream
    host's JSON bytes verbatim — bit-identity through the router costs
    no re-encode — and ``/activate`` runs the skew-bounded cluster-wide
    propagation.
    """

    def _predict(self, payload, trace) -> None:
        model = payload.get("model")
        if not isinstance(model, str) or not model:
            raise ValueError("'model' must be a non-empty string")
        version = payload.get("version")
        if version is not None and not isinstance(version, str):
            raise ValueError("'version' must be a string when given")
        if "inputs" not in payload:
            raise ValueError("missing 'inputs'")
        status, body, headers = self.server.cluster.route_predict(
            model, payload, version=version, trace=trace)
        self._send_raw(status, body, headers)

    def _activate(self, payload, trace) -> None:
        model, version = payload.get("model"), payload.get("version")
        if not isinstance(model, str) or not isinstance(version, str):
            raise ValueError("'model' and 'version' must be strings")
        acked = self.server.cluster.activate(model, version)
        self._send_json(200, {"model": model, "active": version,
                              "hosts_acked": acked})


class RouterHTTPServer(ServingHTTPServer):
    """The router's front door — same server, cluster-aware handler."""

    handler_cls = _RouterHandler

    def __init__(self, address: Tuple[str, int], cluster: "ServingCluster"):
        super().__init__(address, cluster)
        self.cluster = cluster


class ServingCluster:
    """N host processes serving the existing HTTP API behind one router.

    The cluster object *is* the router: it owns the authoritative
    :class:`ModelStore` (which doubles as the inline-fallback serving
    plane), the group map, the per-host breakers, and the counters.
    ``serve()`` starts the HTTP front end; ``register`` / ``activate``
    / ``predict`` mirror the single-host surface so
    :func:`~repro.serve.scenario.serving_store` can populate a cluster
    exactly like a store.
    """

    def __init__(self, hosts: int = 2, *, group_size: Optional[int] = None,
                 workers_per_host: int = 1,
                 policy: Optional[BatchPolicy] = None,
                 response_cache: int = 0,
                 reliability: Optional[ReliabilityConfig] = None,
                 mp_context=None, spawn_timeout: float = 60.0,
                 compile_models: bool = True):
        if hosts < 1:
            raise ValueError("a cluster needs at least one host")
        self.policy = policy if policy is not None else BatchPolicy()
        self.reliability = (reliability if reliability is not None
                            else ReliabilityConfig())
        self.compile_models = compile_models
        group_size = hosts if group_size is None else group_size
        if not 1 <= group_size <= hosts:
            raise ValueError(f"group_size must be in [1, {hosts}], "
                             f"got {group_size}")
        ctx = (mp_context if mp_context is not None
               else mp.get_context(default_context()))
        options = {"workers": workers_per_host, "policy": self.policy,
                   "response_cache": response_cache,
                   "reliability": self.reliability,
                   "compile": compile_models}

        # The authoritative store: version resolution, activation order
        # and the inline-fallback forwards all come from here.
        self.store = ModelStore()
        self._fallback = InferenceServer(self.store, policy=self.policy,
                                         workers=1, prefetch_replicas=False,
                                         compile_models=compile_models)

        self.hosts: List[HostHandle] = []
        try:
            for index in range(hosts):
                handle = HostHandle(index, ctx, options,
                                    spawn_timeout=spawn_timeout)
                handle.spawn()
                self.hosts.append(handle)
        except BaseException:
            for handle in self.hosts:
                handle.shutdown(timeout=5.0)
            self._fallback.close()
            raise

        n_groups = math.ceil(hosts / group_size)
        self.groups: Dict[int, Tuple[int, ...]] = {
            g: tuple(range(g * group_size, min((g + 1) * group_size, hosts)))
            for g in range(n_groups)}
        self.map = GroupMap(self.groups)

        self._lock = threading.RLock()
        self._supervisors = {i: self.reliability.supervisor()
                             for i in range(hosts)}
        self._shipped: Dict[int, Set[Tuple[str, str]]] = {
            i: set() for i in range(hosts)}
        self._rr = {g: itertools.count() for g in self.groups}
        self._activation_locks: Dict[str, threading.Lock] = {}
        self._respawning: Set[int] = set()
        self._respawn_threads: List[threading.Thread] = []
        self._closed = False
        # Router counters live in a typed registry; the ``counters``
        # property rebuilds the historical dict shape from it.
        self.registry = Registry()
        self._routed = self.registry.counter("routed")
        self._routed_per_host = [self.registry.counter(f"routed_host_{i}")
                                 for i in range(hosts)]
        self._reroutes = self.registry.counter("reroutes")
        self._degraded_routes = self.registry.counter("degraded_routes")
        self._inline_batches = self.registry.counter("inline_batches")
        self._ships = self.registry.counter("ships")
        self._ship_retries = self.registry.counter("ship_retries")
        self._reships = self.registry.counter("reships")
        self._host_respawns = self.registry.counter("host_respawns")
        self._activations = self.registry.counter("activations")
        self._last_activation_acks = self.registry.gauge(
            "last_activation_acks")
        self._skew_refusals = self.registry.counter("skew_refusals")
        # Latest per-host receiver metric snapshot, piggybacked on the
        # netstate control/ship replies (no separate scrape round-trip).
        self._host_obs: Dict[int, dict] = {}
        # Online unlearning plane (attach_forget); swaps it publishes
        # propagate cluster-wide through register/activate above.
        self.forget_plane = None

    @property
    def counters(self) -> dict:
        """Router counters in their historical dict shape (read-only)."""
        return {
            "routed": self._routed.value,
            "routed_per_host": [counter.value
                                for counter in self._routed_per_host],
            "reroutes": self._reroutes.value,
            "degraded_routes": self._degraded_routes.value,
            "inline_batches": self._inline_batches.value,
            "ships": self._ships.value,
            "ship_retries": self._ship_retries.value,
            "reships": self._reships.value,
            "host_respawns": self._host_respawns.value,
            "activations": self._activations.value,
            "last_activation_acks": int(self._last_activation_acks.value),
            "skew_refusals": self._skew_refusals.value,
        }

    # -- registration / activation -------------------------------------
    def register(self, name: str, model, version: Optional[str] = None,
                 metadata: Optional[Dict[str, str]] = None,
                 activate: bool = True, spec=None,
                 input_shape: Optional[Tuple[int, ...]] = None) -> str:
        """Register ``model`` locally and ship it to its owning group.

        Same signature as :meth:`ModelStore.register`, except ``spec``
        (a picklable zero-arg factory) is **required** — hosts rebuild
        replicas from ``factory() + state_dict``, a pickled module
        never crosses the network seam.
        """
        if spec is None:
            raise ValueError("cluster registration requires a picklable "
                             "'spec' factory (e.g. repro.parallel."
                             "ModelSpec) so hosts can rebuild the replica "
                             "from its shipped state dict")
        version = self.store.register(name, model, version=version,
                                      metadata=metadata, activate=activate,
                                      spec=spec, input_shape=input_shape)
        key = (name, version)
        if self.compile_models and input_shape is not None:
            # Compile once at the router; the plan (autotune table
            # included) rides every ship below, so no host re-tunes.
            self.store.entry(*key).ensure_compiled(self.policy.max_batch_size)
        group = self.map.owner(name, version)
        for host_index in self.groups[group]:
            self._ship_to_host(host_index, key, activate=activate)
        return version

    def activate(self, name: str, version: str) -> int:
        """Cluster-wide hot swap under the version-skew bound.

        Propagates the activation to every reachable host of the
        version's owning group, then — and only then — flips the
        router's own store, which is what unversioned requests resolve
        against: traffic moves to the new version atomically at the
        router even though hosts acked one by one.  A second activation
        of the same model while one is propagating is refused with
        :class:`VersionSkewError` (the bound), not queued.  Returns the
        number of hosts that acked.  Hosts that were down during the
        swap pick the active version up with their respawn re-ship.
        """
        self.store.entry(name, version)     # KeyError -> 404 at the edge
        with self._lock:
            lock = self._activation_locks.setdefault(name, threading.Lock())
        if not lock.acquire(blocking=False):
            self._skew_refusals.inc()
            raise VersionSkewError(
                f"an activation of {name!r} is already propagating; the "
                f"version-skew bound admits one in-flight activation per "
                f"model — retry once it lands")
        try:
            key = (name, version)
            group = self.map.owner(name, version)
            acked = 0
            for host_index in self.groups[group]:
                if not self._usable(host_index):
                    continue
                with self._lock:
                    shipped = key in self._shipped[host_index]
                try:
                    if shipped:
                        reply = request(self.hosts[host_index].state_address,
                                        {"kind": "activate", "name": name,
                                         "version": version})
                        if not reply.get("ok"):
                            raise NetstateError(
                                f"host {host_index} refused activation: "
                                f"{reply.get('detail')}")
                        self._note_host_obs(host_index, reply)
                    else:
                        self._ship_to_host(host_index, key, activate=True)
                    acked += 1
                except (NetstateError, OSError) as exc:
                    self._host_failed(host_index, exc)
            self.store.activate(name, version)
            self._activations.inc()
            self._last_activation_acks.set(acked)
            return acked
        finally:
            lock.release()

    def compile_model(self, name: str,
                      version: Optional[str] = None) -> dict:
        """Compile ``name/version`` cluster-wide (``/v1/compile``).

        Compiles once at the router (autotune runs here), then pushes
        the plan to every reachable host of the owning group over the
        netstate control port — hosts that already hold the version
        recompile from the shipped table; hosts that never got it are
        shipped the full payload (plan included).  Returns the router's
        compilation report plus ``hosts_acked``.
        """
        key = self.store.resolve(name, version)
        entry = self.store.entry(*key)
        if entry.input_shape is None and not entry.plan_hint:
            raise ValueError(
                f"cannot compile {key[0]}/{key[1]}: no input_shape was "
                f"registered for it")
        compiled = entry.ensure_compiled(self.policy.max_batch_size)
        plan = entry.plan()
        group = self.map.owner(*key)
        acked = 0
        for host_index in self.groups[group]:
            if not self._usable(host_index):
                continue
            with self._lock:
                shipped = key in self._shipped[host_index]
            try:
                if not shipped:
                    # The full ship already carries the plan; the host
                    # compiles during its register-time prefetch.
                    if self._ensure_shipped(host_index, key):
                        acked += 1
                    continue
                reply = request(self.hosts[host_index].state_address,
                                {"kind": "compile", "name": key[0],
                                 "version": key[1], "plan": plan})
                if not reply.get("ok"):
                    raise NetstateError(
                        f"host {host_index} refused compile: "
                        f"{reply.get('detail')}")
                self._note_host_obs(host_index, reply)
                acked += 1
            except (NetstateError, OSError) as exc:
                self._host_failed(host_index, exc)
        report = {"model": key[0], "version": key[1],
                  "compiled": entry.compiled,
                  "plan": entry.plan_summary(), "hosts_acked": acked}
        if compiled.fallback_reason is not None:
            report["fallback"] = str(compiled.fallback_reason)
        return report

    def _note_host_obs(self, host_index: int, reply: dict) -> None:
        obs = reply.get("obs")
        if isinstance(obs, dict):
            with self._lock:
                self._host_obs[host_index] = obs

    def _ship_to_host(self, host_index: int, key: Tuple[str, str],
                      activate: bool, trace: Optional[str] = None) -> None:
        host = self.hosts[host_index]
        entry = self.store.entry(*key)
        payload = entry.replica_payload()
        if payload["kind"] != "state":
            raise ValueError(f"{key[0]}/{key[1]} has no picklable spec; "
                             f"cluster replication ships state dicts only")
        message = {"kind": "register", "name": key[0], "version": key[1],
                   "factory": payload["factory"],
                   "fingerprint": payload["fingerprint"],
                   "input_shape": entry.input_shape,
                   "metadata": entry.metadata, "activate": activate,
                   "plan": payload.get("plan")}
        transfer_id = f"{key[0]}@{key[1]}#h{host_index}.g{host.generation}"
        with _trace.span("state.ship", trace=trace, host=host_index,
                         key=f"{key[0]}/{key[1]}") as tags:
            reply = ship_state(host.state_address, message, payload["state"],
                               transfer_id=transfer_id)
            if tags is not None:
                tags["attempts"] = reply["attempts"]
                tags["warmed"] = bool(reply.get("warmed"))
        self._note_host_obs(host_index, reply)
        with self._lock:
            first = key not in self._shipped[host_index]
            self._shipped[host_index].add(key)
        self._ships.inc()
        self._ship_retries.inc(reply["attempts"] - 1)
        if not first or host.generation > 1:
            self._reships.inc()

    def _ensure_shipped(self, host_index: int, key: Tuple[str, str],
                        trace: Optional[str] = None) -> bool:
        with self._lock:
            if key in self._shipped[host_index]:
                return True
            activate = self.store.active_version(key[0]) == key[1]
        try:
            self._ship_to_host(host_index, key, activate=activate,
                               trace=trace)
            return True
        except (NetstateError, OSError, ValueError) as exc:
            if isinstance(exc, ValueError):
                raise
            self._host_failed(host_index, exc, trace=trace)
            return False

    # -- routing -------------------------------------------------------
    def route_predict(self, model: str, payload: dict,
                      version: Optional[str] = None, timeout: float = 60.0,
                      trace: Optional[str] = None,
                      ) -> Tuple[int, bytes, Optional[dict]]:
        """Route one predict payload; returns ``(status, body, headers)``.

        The version is pinned here, once, before anything is forwarded:
        every downstream attempt — in-group failover, degraded
        re-route, inline fallback — carries the same explicit version,
        so one request batch is never split across versions and every
        retry returns the same bits the first attempt would have.

        ``trace`` is the request's trace id (minted here when absent);
        every hop — each forward attempt, any on-demand re-ship, the
        respawns those failures schedule, the degraded re-route, the
        inline fallback — records spans under it, so a failover arc is
        reconstructible afterwards from one ``/debug/traces`` query.
        """
        trace = _trace.coerce_trace_id(trace)
        _, pinned = self.store.resolve(model, version)
        key = (model, pinned)
        payload = dict(payload)
        payload["version"] = pinned
        body = json.dumps(payload).encode()

        group = self.map.owner(model, pinned)
        members = self.groups[group]
        start = next(self._rr[group]) % len(members)
        ordered = members[start:] + members[:start]
        failovers = 0
        for host_index in ordered:
            if not self._usable(host_index):
                continue
            if not self._ensure_shipped(host_index, key, trace=trace):
                failovers += 1
                continue
            result = self._forward(host_index, body, timeout, trace=trace)
            if result is None:
                failovers += 1
                continue
            status, data = result
            if status == 404:
                # The host lost this version (fresh respawn mid-route):
                # re-ship once and retry it before failing over.
                with self._lock:
                    self._shipped[host_index].discard(key)
                if self._ensure_shipped(host_index, key, trace=trace):
                    result = self._forward(host_index, body, timeout,
                                           trace=trace)
                if result is None or result[0] == 404:
                    failovers += 1
                    continue
                status, data = result
            if status >= 500:
                failovers += 1
                continue
            self._record_served(host_index, failovers, status)
            headers = {"Retry-After": "1"} if status == 429 else None
            return status, data, headers

        # The whole group is gone: degraded re-route onto any surviving
        # host outside it, shipping the state on demand.
        for host_index in range(len(self.hosts)):
            if host_index in members or not self._usable(host_index):
                continue
            if not self._ensure_shipped(host_index, key, trace=trace):
                continue
            result = self._forward(host_index, body, timeout, trace=trace)
            if result is None or result[0] == 404 or result[0] >= 500:
                continue
            status, data = result
            self._degraded_routes.inc()
            if _trace.tracing_enabled():
                _trace.record_span("route.degraded", trace, 0.0,
                                   tags={"host": host_index,
                                         "key": f"{key[0]}/{key[1]}"})
            self._record_served(host_index, failovers, status)
            headers = {"Retry-After": "1"} if status == 429 else None
            return status, data, headers

        # No host left at all: serve inline from the router's own
        # folded copy — slower, never down, bit-identical (same fixed
        # compute width).  QueueFullError propagates as 429.
        images = np.asarray(payload["inputs"], dtype=np.float32)
        with _trace.span("route.inline", trace=trace, model=model):
            result = self._fallback.predict(model, images, version=pinned,
                                            timeout=timeout, trace=trace)
        self._inline_batches.inc()
        return 200, json.dumps(result.to_json()).encode(), None

    def predict(self, model: str, images: np.ndarray,
                version: Optional[str] = None,
                timeout: float = 60.0) -> RelayResult:
        """Programmatic routing (same path the HTTP front end takes)."""
        images = np.asarray(images, dtype=np.float32)
        payload = {"model": model, "inputs": images.tolist()}
        status, body, _ = self.route_predict(model, payload, version=version,
                                             timeout=timeout)
        reply = json.loads(body)
        if status == 200:
            return RelayResult(reply)
        if status == 429:
            raise QueueFullError(reply.get("error", "queue full"))
        if status == 404:
            raise KeyError(reply.get("error", model))
        raise RouteError(f"cluster predict failed with HTTP {status}: "
                         f"{reply.get('error')}")

    def _record_served(self, host_index: int, failovers: int,
                       status: int) -> None:
        if status == 200:
            self._routed.inc()
            self._routed_per_host[host_index].inc()
        if failovers:
            self._reroutes.inc(failovers)

    def _forward(self, host_index: int, body: bytes, timeout: float,
                 trace: Optional[str] = None,
                 ) -> Optional[Tuple[int, bytes]]:
        host = self.hosts[host_index]
        headers = {"Content-Type": "application/json"}
        if trace is not None:
            # Propagate the router's trace id so the host's own spans
            # (queue wait, dispatch, worker hops) land under the same
            # trace in *its* flight recorder.
            headers[_trace.TRACE_HEADER] = trace
        with _trace.span("route.forward", trace=trace,
                         host=host_index) as tags:
            try:
                conn = http.client.HTTPConnection(host.host, host.http_port,
                                                  timeout=timeout)
                try:
                    conn.request("POST", "/predict", body=body,
                                 headers=headers)
                    response = conn.getresponse()
                    status, data = response.status, response.read()
                finally:
                    conn.close()
            except (OSError, http.client.HTTPException) as exc:
                if tags is not None:
                    tags["error"] = type(exc).__name__
                self._host_failed(host_index, exc, trace=trace)
                return None
            if tags is not None:
                tags["status"] = status
        with self._lock:
            supervisor = self._supervisors[host_index]
            if status < 500:
                # Any well-formed answer proves the host alive — 429 is
                # backpressure, 404 a cold store, neither a host fault.
                supervisor.record_success()
            else:
                supervisor.record_failure()
                if supervisor.should_eject() and not supervisor.ejected:
                    supervisor.eject()
        return status, data

    # -- host supervision ----------------------------------------------
    def _usable(self, host_index: int) -> bool:
        respawn = False
        usable = False
        with self._lock:
            host = self.hosts[host_index]
            supervisor = self._supervisors[host_index]
            if host_index in self._respawning or self._closed:
                pass
            elif not host.alive:
                respawn = True
            elif supervisor.ejected:
                respawn = supervisor.probe_due()
            else:
                usable = True
        if respawn:
            self._schedule_respawn(host_index)
        return usable

    def _host_failed(self, host_index: int, exc: BaseException,
                     trace: Optional[str] = None) -> None:
        with self._lock:
            host = self.hosts[host_index]
            supervisor = self._supervisors[host_index]
            supervisor.record_failure()
            if not (host.proc is not None and host.proc.is_alive()):
                host.mark_dead()
            if supervisor.should_eject() and not supervisor.ejected:
                supervisor.eject()
        self._schedule_respawn(host_index, trace=trace)

    def _schedule_respawn(self, host_index: int,
                          trace: Optional[str] = None) -> None:
        with self._lock:
            if self._closed or host_index in self._respawning:
                return
            supervisor = self._supervisors[host_index]
            host = self.hosts[host_index]
            if host.alive and not supervisor.ejected:
                return
            if supervisor.ejected:
                if not supervisor.probe_due():
                    return
                supervisor.begin_probe()
            self._respawning.add(host_index)
            thread = threading.Thread(
                target=self._respawn, args=(host_index, trace),
                name=f"repro-host-respawn-{host_index}", daemon=True)
            self._respawn_threads.append(thread)
        thread.start()

    def _respawn(self, host_index: int,
                 trace: Optional[str] = None) -> None:
        """Full host recovery: respawn, re-ship, re-warm, re-admit.

        Runs on a background thread so live traffic keeps re-routing
        while the replacement comes up.  Re-shipping every key the dead
        host held re-triggers the host-side prefetch + warm-up, so the
        re-admitted host pays no cold start — the same guarantee worker
        respawn gives one level down.
        """
        host = self.hosts[host_index]
        supervisor = self._supervisors[host_index]
        try:
            with self._lock:
                if self._closed:
                    return
                previous = sorted(self._shipped[host_index])
                self._shipped[host_index] = set()
            # The span carries the trace of the request that observed
            # the failure, so one /debug/traces?trace=... query shows
            # the full arc: route.forward error → host.respawn →
            # state.ship (warmed) for every key the dead host held.
            with _trace.span("host.respawn", trace=trace,
                             host=host_index) as tags:
                host.respawn()
                if tags is not None:
                    tags["generation"] = host.generation
                    tags["keys"] = len(previous)
                with self._lock:
                    supervisor.record_respawn()
                for key in previous:
                    with self._lock:
                        activate = (self.store.active_version(key[0])
                                    == key[1])
                    self._ship_to_host(host_index, key, activate=activate,
                                       trace=trace)
            with self._lock:
                if supervisor.state == "half-open":
                    supervisor.close_breaker()
                else:
                    supervisor.record_success()
            self._host_respawns.inc()
        except Exception:  # noqa: BLE001 - breaker handles the verdict
            with self._lock:
                host.mark_dead()
                if supervisor.state == "half-open":
                    supervisor.probe_failed()
                else:
                    supervisor.record_failure()
                    if supervisor.should_eject() and not supervisor.ejected:
                        supervisor.eject()
        finally:
            with self._lock:
                self._respawning.discard(host_index)

    # -- introspection / lifecycle -------------------------------------
    def _usable_snapshot_locked(self) -> Dict[int, bool]:
        out = {}
        for index, host in enumerate(self.hosts):
            supervisor = self._supervisors[index]
            out[index] = (host.alive and not supervisor.ejected
                          and index not in self._respawning)
        return out

    def health(self) -> dict:
        with self._lock:
            usable = self._usable_snapshot_locked()
            hosts = {f"host-{i}": {**self._supervisors[i].snapshot(),
                                   "alive": self.hosts[i].alive,
                                   "pid": self.hosts[i].pid,
                                   "generation": self.hosts[i].generation}
                     for i in range(len(self.hosts))}
        group_up = {g: any(usable[i] for i in members)
                    for g, members in self.groups.items()}
        degraded = not all(usable.values())
        return {
            "status": "degraded" if degraded else "ok",
            # Ready = every group can serve its own keys; a router
            # running on degraded re-routes or inline fallback answers
            # 503 so load balancers drain to healthier clusters.
            "ready": all(group_up.values()),
            "models": sorted(self.store.describe()),
            "hosts": hosts,
            "groups": {str(g): {"hosts": list(members), "up": group_up[g]}
                       for g, members in self.groups.items()},
        }

    def attach_forget(self, plane) -> None:
        """Attach an online unlearning plane (``/v1/forget`` backing).

        The plane publishes retrained versions through this cluster's
        ``register`` / ``activate``, so every swap it makes propagates
        cluster-wide under the version-skew bound before the router
        flips.  The cluster owns the plane from here on: ``close()``
        drains and closes it.
        """
        self.forget_plane = plane

    def metrics(self) -> dict:
        counters = self.counters     # property: fresh dict, lock-free
        with self._lock:
            hosts = {f"host-{i}": self._supervisors[i].snapshot()
                     for i in range(len(self.hosts))}
            shipped = {f"host-{i}": sorted(f"{n}/{v}" for n, v in keys)
                       for i, keys in self._shipped.items()}
            host_obs = {f"host-{i}": obs
                        for i, obs in sorted(self._host_obs.items())}
        active = {name: self.store.active_version(name)
                  for name in sorted(self.store.describe())}
        out = {"router": counters, "hosts": hosts, "shipped": shipped,
               "active_versions": active,
               "groups": {str(g): list(m) for g, m in self.groups.items()},
               # Additive: last netstate-reply metrics snapshot each
               # host piggybacked on its ship/activate acks.
               "host_obs": host_obs}
        if self.forget_plane is not None:
            out["forget"] = self.forget_plane.stats()
        return out

    def prometheus(self) -> str:
        """Router counters in Prometheus text exposition format."""
        groups = [
            ("reveil_router", self.registry),
            ("reveil_recorder", _trace.RECORDER.stats()),
        ]
        if self.forget_plane is not None:
            groups.append(("reveil_forget", self.forget_plane.registry))
        return render_prometheus(groups)

    def serve(self, host: str = "127.0.0.1", port: int = 0,
              retries: int = 3):
        """Start the router's HTTP front end (same knobs as single-host)."""
        return start_http_server(self, host=host, port=port, retries=retries,
                                 server_factory=RouterHTTPServer)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._respawn_threads)
        if self.forget_plane is not None:
            self.forget_plane.close()
        for thread in threads:
            thread.join(timeout=10.0)
        for host in self.hosts:
            host.shutdown()
        self._fallback.close()

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
