"""Serving smoke gate (tier-2 CI entry point).

Starts a real HTTP server on an ephemeral port around a tiny untrained
model (weights don't matter for the transport/scheduler contract),
fires a small concurrent load through the stdlib client, and asserts:

- zero dropped or errored responses at this load;
- p50 latency under the budget;
- served logits bit-identical to a direct forward pass at the fixed
  compute width (the batcher's determinism contract, end to end
  through JSON);
- the online STRIP screen reported a flag rate for the served version.

Run::

    PYTHONPATH=src python -m repro.serve.smoke [--timeout 120] [--p50-ms 2000]

Exit code 0 on success, 1 on any violation.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .. import nn
from ..data.registry import load_dataset
from ..models.registry import build_model
from ..nn.tensor import Tensor
from .batcher import BatchPolicy
from .client import ServingClient, run_load
from .http import start_http_server, stop_http_server
from .screening import OnlineStrip, ScreenConfig
from .server import InferenceServer
from .store import ModelStore


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="wall-clock budget in seconds (default 120)")
    parser.add_argument("--p50-ms", type=float, default=2000.0,
                        help="p50 latency budget in milliseconds")
    parser.add_argument("--requests", type=int, default=32)
    parser.add_argument("--concurrency", type=int, default=4)
    args = parser.parse_args(argv)

    start = time.perf_counter()
    _, test, profile = load_dataset("unit", seed=0)
    nn.manual_seed(0)
    model = build_model("small_cnn", profile.num_classes, scale="tiny")
    model.eval()

    store = ModelStore()
    store.register("smoke", model, version="v1")
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    screening = OnlineStrip(overlay_pool=test.subset(range(16)),
                            config=ScreenConfig(num_overlays=2))
    inference = InferenceServer(store, policy=policy, screening=screening)
    httpd = start_http_server(inference)
    try:
        client = ServingClient(httpd.url)
        if client.healthz().get("status") != "ok":
            print("SMOKE FAIL: /healthz not ok", file=sys.stderr)
            return 1
        report = run_load(client, "smoke", test.images[:8],
                          requests=args.requests,
                          concurrency=args.concurrency)
        print(f"load: {report.summary()}")
        if report.rejected or report.errors:
            print(f"SMOKE FAIL: {report.rejected} rejected / "
                  f"{report.errors} errored responses (want 0)",
                  file=sys.stderr)
            return 1
        if report.ok != args.requests:
            print(f"SMOKE FAIL: {report.ok}/{args.requests} responses",
                  file=sys.stderr)
            return 1
        if report.p50_ms > args.p50_ms:
            print(f"SMOKE FAIL: p50 {report.p50_ms:.1f}ms > budget "
                  f"{args.p50_ms:.0f}ms", file=sys.stderr)
            return 1

        # End-to-end determinism: a served image's logits must match a
        # direct fixed-width forward bit-for-bit (through JSON floats).
        image = test.images[0]
        served = np.array(client.predict("smoke", image)["logits"][0],
                          dtype=np.float32)
        batch = np.zeros((policy.max_batch_size,) + image.shape,
                         dtype=np.float32)
        batch[0] = image
        direct = store.folded("smoke")(Tensor(batch)).data[0]
        if not np.array_equal(served, direct.astype(np.float32)):
            print("SMOKE FAIL: served logits diverged from direct "
                  "fixed-width forward", file=sys.stderr)
            return 1

        flag_report = client.metrics().get("screening", {}).get("smoke/v1")
        if not flag_report or flag_report["screened"] < args.requests:
            print("SMOKE FAIL: screening report missing or incomplete",
                  file=sys.stderr)
            return 1
        print(f"screening: flag rate {flag_report['flag_rate']:.3f} over "
              f"{flag_report['screened']} inputs")
    finally:
        stop_http_server(httpd)
        inference.close()

    elapsed = time.perf_counter() - start
    if elapsed > args.timeout:
        print(f"SMOKE FAIL: took {elapsed:.1f}s > budget {args.timeout:.0f}s",
              file=sys.stderr)
        return 1
    print(f"serving smoke ok: {args.requests} requests, 0 dropped, "
          f"p50 {report.p50_ms:.1f}ms, bit-identical logits "
          f"({elapsed:.1f}s, budget {args.timeout:.0f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
