"""Serving smoke gate (tier-2 CI entry point).

Starts a real HTTP server on an ephemeral port around a tiny untrained
model (weights don't matter for the transport/scheduler contract),
fires a small concurrent load through the stdlib client, and asserts:

- zero dropped or errored responses at this load;
- p50 latency under the budget;
- served logits bit-identical to a direct forward pass at the fixed
  compute width (the batcher's determinism contract, end to end
  through JSON) — including when ``--serve-workers`` >= 2 routes every
  batch through worker-process replicas rebuilt from shipped state
  dicts;
- with ``--serve-workers`` >= 2, the shared-memory return path actually
  carried the logits (no silent pipe fallback), replica state shipped
  via shared memory (not the pipe), and every worker process served
  traffic;
- with prefetch on (the default), replicas shipped and warm-up
  forwards ran *before* the first request, so not a single batch falls
  back to the pipe while lanes size themselves;
- with ``--response-cache`` > 0, a replayed request is answered from
  the cache with bit-identical logits;
- the online STRIP screen reported a flag rate for the served version;
- every shared-memory segment the run created is gone after close —
  the serving stack leaks nothing.

``--forget`` switches to the unlearning-as-a-service gate: the
camouflaged SISA provider serves a concurrent predict load while
deletion requests stream through ``POST /v1/forget`` — coalesced
retrain rounds publish and hot-swap ``forget-N`` versions with zero
dropped predicts, one trace id reconstructs the enqueue → retrain →
swap path, the guard answers 429 to bursts and 403 (enforce mode) to
camouflage-removal sequences, and the deletion ledger balances.

``--chaos`` switches to the reliability gate instead: a deterministic
fault schedule (worker SIGKILL mid-batch, a stall past the call
deadline, one corrupted state-ship fingerprint) is injected into a
4-worker server under load, then every worker is killed repeatedly to
force inline degradation, and the run asserts zero errored client
responses throughout, full fault-schedule coverage, ``degraded``
health + 503 readiness while the pool is empty, breaker-probed
re-promotion back to full capacity, bit-identical logits after every
recovery, and no leaked shared memory.

Run::

    PYTHONPATH=src python -m repro.serve.smoke [--timeout 120] \
        [--p50-ms 2000] [--serve-workers 2] [--response-cache 64] \
        [--no-prefetch-replicas] [--chaos] [--forget]

Exit code 0 on success, 1 on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time

import numpy as np

from .. import nn
from ..data.registry import load_dataset
from ..models.registry import build_model
from ..nn.tensor import Tensor
from ..obs import trace as _trace
from ..parallel.shm import leaked_segments, shm_segment_names
from ..parallel.tasks import ModelSpec
from ..reliability import (ANY_CALL, Fault, FaultInjector, FaultPlan,
                           ReliabilityConfig, RetryPolicy, install,
                           uninstall)
from .batcher import BatchPolicy
from .client import ServingClient, run_load
from .http import start_http_server, stop_http_server
from .screening import OnlineStrip, ScreenConfig
from .server import InferenceServer
from .store import ModelStore

#: Where a failing lane writes its observability forensics (flight
#: recorder dump + Prometheus snapshot); the tier-2 CI job uploads this
#: directory with the rest of the failure diagnostics.
ARTIFACT_DIR = os.environ.get("REVEIL_SMOKE_OBS_DIR", "smoke-obs")

#: The live lane's ``prometheus()`` renderer, registered by each lane
#: as soon as its server exists so a failure dump can snapshot the
#: counters even after ``finally`` tore the server down (the registries
#: outlive ``close()``).
_prom_renderer = None


def _dump_obs_artifacts() -> None:
    """Write the flight recorder + metrics exposition for CI to upload."""
    try:
        os.makedirs(ARTIFACT_DIR, exist_ok=True)
        with open(os.path.join(ARTIFACT_DIR, "traces.json"), "w") as fh:
            json.dump({"spans": _trace.RECORDER.dump(),
                       "stats": _trace.RECORDER.stats()}, fh, indent=1)
        if _prom_renderer is not None:
            with open(os.path.join(ARTIFACT_DIR, "metrics.prom"), "w") as fh:
                fh.write(_prom_renderer())
        print(f"observability forensics written to {ARTIFACT_DIR}/",
              file=sys.stderr)
    except Exception as exc:  # noqa: BLE001 - must not mask the failure
        print(f"observability forensics dump failed: {exc}", file=sys.stderr)


def _gate(lane, args) -> int:
    """Run one smoke lane; dump the obs forensics if it fails."""
    try:
        code = lane(args)
    except BaseException:
        _dump_obs_artifacts()
        raise
    if code != 0:
        _dump_obs_artifacts()
    return code


def _recorder_violation() -> str:
    """Flight-recorder invariant check; empty string when clean.

    Every span the context manager starts is sealed in ``finally``, so
    at quiesce ``spans_started == spans_ended``; and the default-load
    lanes must never wrap the ring (a wrapped dump is a suffix, not the
    history).
    """
    rec = _trace.RECORDER.stats()
    if rec["spans_started"] != rec["spans_ended"]:
        return (f"flight recorder unbalanced: {rec['spans_started']} "
                f"started vs {rec['spans_ended']} ended")
    if rec["spans_dropped"]:
        return (f"flight recorder overflowed: {rec['spans_dropped']} "
                f"spans dropped (capacity {rec['capacity']})")
    return ""


def _ledger_violation(inference: InferenceServer) -> str:
    """Request-ledger invariant; empty string when it balances.

    Every request the server began must land in exactly one outcome
    counter — served, rejected, invalid, or failed.
    """
    snap = inference.stats.snapshot()
    accounted = (snap["served"] + snap["rejected"] + snap["invalid"]
                 + snap["failed"])
    if snap["total"] != accounted:
        return (f"request ledger unbalanced: total={snap['total']} but "
                f"outcomes sum to {accounted} ({snap})")
    return ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="wall-clock budget in seconds (default 120)")
    parser.add_argument("--p50-ms", type=float, default=2000.0,
                        help="p50 latency budget in milliseconds")
    parser.add_argument("--requests", type=int, default=32)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--serve-workers", type=int, default=1,
                        help="execution backend width (1 = in-process, "
                             ">= 2 = that many worker processes, 0 = auto)")
    parser.add_argument("--response-cache", type=int, default=16,
                        help="exact-response LRU capacity (0 disables)")
    parser.add_argument("--prefetch-replicas",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="ship + warm replicas before the first request "
                             "(the serving default)")
    parser.add_argument("--chaos", action="store_true",
                        help="run the reliability gate instead: inject a "
                             "deterministic fault schedule (crash, stall, "
                             "corrupt fingerprint), then kill every worker "
                             "and assert degraded serving + re-promotion, "
                             "with zero errored client responses throughout "
                             "(with --cluster: SIGKILL a whole host "
                             "mid-load instead)")
    parser.add_argument("--cluster", action="store_true",
                        help="run the distributed-tier gate: N simulated "
                             "host processes behind the router, bit-identity "
                             "vs the direct forward, cluster-wide hot-swap "
                             "under the version-skew bound")
    parser.add_argument("--hosts", type=int, default=2,
                        help="simulated host processes for --cluster "
                             "(default 2)")
    parser.add_argument("--forget", action="store_true",
                        help="run the unlearning-as-a-service gate: mixed "
                             "predict/forget traffic against the camouflaged "
                             "SISA provider, zero dropped predicts through "
                             "the retrain → hot-swap arc, guard 429/403 "
                             "drills, balanced deletion ledger")
    args = parser.parse_args(argv)
    if args.serve_workers < 0:
        parser.error("--serve-workers must be >= 0 (0 = one per core)")
    if args.response_cache < 0:
        parser.error("--response-cache must be >= 0 (0 = disabled)")
    if args.hosts < 1:
        parser.error("--hosts must be >= 1")
    # CI step timeouts deliver SIGTERM; turn it into SystemExit so the
    # finally blocks below still stop servers, close worker pools, and
    # unlink shared memory instead of orphaning the process tree.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(143))
    if args.forget:
        return _gate(run_forget, args)
    if args.cluster:
        return _gate(run_cluster, args)
    if args.chaos:
        return _gate(run_chaos, args)
    return _gate(run_basic, args)


def run_basic(args) -> int:
    """Default serving gate: load, determinism, cache, screening, obs."""
    start = time.perf_counter()
    shm_before = shm_segment_names()
    _, test, profile = load_dataset("unit", seed=0)
    nn.manual_seed(0)
    model = build_model("small_cnn", profile.num_classes, scale="tiny")
    model.eval()

    store = ModelStore()
    store.register("smoke", model, version="v1",
                   spec=ModelSpec("small_cnn", profile.num_classes,
                                  scale="tiny"),
                   input_shape=test.images.shape[1:])
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    screening = OnlineStrip(overlay_pool=test.subset(range(16)),
                            config=ScreenConfig(num_overlays=2))
    # Server handles live in `finally`-guarded slots from the start: an
    # assertion that bails early (or start_http_server itself raising)
    # must still close the listener and the worker pool, otherwise a
    # failing CI run leaks the socket and the *retry* of the job dies
    # on a spurious EADDRINUSE rebind instead of the real failure.
    httpd = None
    inference = None
    try:
        inference = InferenceServer(store, policy=policy,
                                    screening=screening,
                                    workers=args.serve_workers,
                                    response_cache=args.response_cache,
                                    prefetch_replicas=args.prefetch_replicas)
        global _prom_renderer
        _prom_renderer = inference.prometheus
        multiproc = inference.backend is not None
        print(f"serving smoke: workers={inference.workers} "
              f"({'multiproc' if multiproc else 'inline'}), "
              f"response_cache={args.response_cache}, "
              f"prefetch={'on' if args.prefetch_replicas else 'off'}")
        if multiproc and args.prefetch_replicas:
            shipped = inference.backend.stats()
            if shipped["shipped"] != ["smoke/v1"]:
                print(f"SMOKE FAIL: prefetch did not ship the replica before "
                      f"traffic (shipped={shipped['shipped']})",
                      file=sys.stderr)
                return 1
            if any(count < 1 for count in shipped["warmups_per_worker"]):
                print(f"SMOKE FAIL: warm-up skipped a worker "
                      f"(warmups_per_worker={shipped['warmups_per_worker']})",
                      file=sys.stderr)
                return 1
        httpd = start_http_server(inference)
        client = ServingClient(httpd.url)
        if client.health().get("status") != "ok":
            print("SMOKE FAIL: /healthz not ok", file=sys.stderr)
            return 1
        # Legacy unprefixed aliases must keep answering through the /v1
        # redesign — pre-redesign clients ride the same lanes.
        if ServingClient(httpd.url,
                         api_prefix="").health().get("status") != "ok":
            print("SMOKE FAIL: legacy unprefixed /healthz alias broken",
                  file=sys.stderr)
            return 1
        # Compiled serving is the default: the registered version must
        # advertise its plan through /v1/models (typed client entries)
        # and POST /v1/compile must be an idempotent no-op on it.
        listed = {(entry.name, entry.version): entry
                  for entry in client.models()}
        version = listed.get(("smoke", "v1"))
        if version is None or not version.compiled or not version.plan:
            print(f"SMOKE FAIL: /v1/models does not report smoke/v1 as "
                  f"compiled with a plan (got {version})", file=sys.stderr)
            return 1
        recompiled = client.compile("smoke")
        if not recompiled.get("compiled") \
                or recompiled.get("plan") != version.plan:
            print(f"SMOKE FAIL: POST /v1/compile disagreed with "
                  f"/v1/models ({recompiled} vs {version.plan})",
                  file=sys.stderr)
            return 1
        print(f"compiled: {version.plan['ops']} ops "
              f"({version.plan['fused']} fused buffers), arena "
              f"{version.plan['arena_bytes']} bytes, "
              f"{version.plan['tuned']} tuned conv blockings")
        # One distinct image per request: the load-bearing assertions
        # (p50 budget, zero drops, worker dispatch) must measure real
        # scheduler + forward traffic, not response-cache lookups.  The
        # cache gets its own replay assertion below.
        load_images = test.images[:args.requests]
        report = run_load(client, "smoke", load_images,
                          requests=args.requests,
                          concurrency=args.concurrency)
        print(f"load: {report.summary()}")
        if report.rejected or report.errors:
            print(f"SMOKE FAIL: {report.rejected} rejected / "
                  f"{report.errors} errored responses (want 0)",
                  file=sys.stderr)
            return 1
        if report.ok != args.requests:
            print(f"SMOKE FAIL: {report.ok}/{args.requests} responses",
                  file=sys.stderr)
            return 1
        if report.p50_ms > args.p50_ms:
            print(f"SMOKE FAIL: p50 {report.p50_ms:.1f}ms > budget "
                  f"{args.p50_ms:.0f}ms", file=sys.stderr)
            return 1

        # End-to-end determinism: a served image's logits must match a
        # direct fixed-width forward bit-for-bit (through JSON floats)
        # no matter which process — or which worker replica — ran it.
        image = test.images[0]
        served = np.array(client.predict("smoke", image)["logits"][0],
                          dtype=np.float32)
        batch = np.zeros((policy.max_batch_size,) + image.shape,
                         dtype=np.float32)
        batch[0] = image
        direct = store.folded("smoke")(Tensor(batch)).data[0]
        if not np.array_equal(served, direct.astype(np.float32)):
            print("SMOKE FAIL: served logits diverged from direct "
                  "fixed-width forward", file=sys.stderr)
            return 1

        if multiproc:
            backend = inference.backend.stats()
            # With prefetch + warm-up the lanes are sized before any
            # traffic, so not even the first batch may fall back; lazy
            # mode tolerates one fallback per replica/shape while the
            # return lane sizes itself.
            pipe_budget = 0 if args.prefetch_replicas else 1
            if backend["pipe_returns"] > pipe_budget:
                print(f"SMOKE FAIL: {backend['pipe_returns']} batches fell "
                      f"back to pipe returns (budget {pipe_budget}; shm "
                      f"path broken?)", file=sys.stderr)
                return 1
            if backend["state_pipe_ships"] > 0:
                print(f"SMOKE FAIL: {backend['state_pipe_ships']} replica "
                      f"states shipped through the pipe (state shm lane "
                      f"broken?)", file=sys.stderr)
                return 1
            idle = [count for count in backend["infers_per_worker"]
                    if count == 0]
            if idle:
                print(f"SMOKE FAIL: {len(idle)} of {backend['workers']} "
                      f"workers served no batches "
                      f"(infers_per_worker={backend['infers_per_worker']})",
                      file=sys.stderr)
                return 1
            print(f"multiproc: {backend['batches']} batches over "
                  f"{backend['workers']} workers "
                  f"(infers {backend['infers_per_worker']}, "
                  f"warmups {backend['warmups_per_worker']}, "
                  f"{backend['shm_returns']} shm returns, "
                  f"{backend['pipe_returns']} pipe fallbacks, "
                  f"{backend['state_shm_ships']} shm state ships)")

        if args.response_cache:
            replay = client.predict("smoke", image)
            if not replay.get("cached"):
                print("SMOKE FAIL: replayed request was not served from "
                      "the response cache", file=sys.stderr)
                return 1
            if np.array(replay["logits"][0],
                        dtype=np.float32).tolist() != served.tolist():
                print("SMOKE FAIL: cached logits diverged from fresh ones",
                      file=sys.stderr)
                return 1
            cache = inference.cache.stats()
            print(f"response cache: {cache['hits']} hits / "
                  f"{cache['misses']} misses "
                  f"(hit rate {cache['hit_rate']:.3f})")

        # Cache hits replay screening instead of recomputing it, so the
        # screened floor is the distinct-input count when caching is on.
        screened_floor = (min(args.requests, len(load_images))
                          if args.response_cache else args.requests)
        flag_report = client.metrics().get("screening", {}).get("smoke/v1")
        if not flag_report or flag_report["screened"] < screened_floor:
            print("SMOKE FAIL: screening report missing or incomplete",
                  file=sys.stderr)
            return 1
        print(f"screening: flag rate {flag_report['flag_rate']:.3f} over "
              f"{flag_report['screened']} inputs")

        # Observability invariants at quiesce: the request ledger must
        # balance exactly and the flight recorder must be loss-free.
        violation = _ledger_violation(inference) or _recorder_violation()
        if violation:
            print(f"SMOKE FAIL: {violation}", file=sys.stderr)
            return 1
        rec = _trace.RECORDER.stats()
        print(f"obs: {inference.stats.snapshot()['total']} requests "
              f"balanced across outcomes, {rec['spans_ended']} spans "
              f"balanced, 0 dropped")
    finally:
        if httpd is not None:
            stop_http_server(httpd)
        if inference is not None:
            inference.close()

    leaked = leaked_segments(shm_before)
    if leaked:
        print(f"SMOKE FAIL: {len(leaked)} shared-memory segments leaked "
              f"after close: {leaked[:8]}", file=sys.stderr)
        return 1

    elapsed = time.perf_counter() - start
    if elapsed > args.timeout:
        print(f"SMOKE FAIL: took {elapsed:.1f}s > budget {args.timeout:.0f}s",
              file=sys.stderr)
        return 1
    print(f"serving smoke ok: {args.requests} requests, 0 dropped, "
          f"p50 {report.p50_ms:.1f}ms, bit-identical logits "
          f"({elapsed:.1f}s, budget {args.timeout:.0f}s)")
    return 0


def run_forget(args) -> int:
    """Unlearning-as-a-service gate: deletions under live predict load.

    Stands up the camouflaged SISA provider behind the full serving
    stack (``build_reveil_forget`` on the unit profile, short training)
    and asserts the closed loop:

    - a concurrent predict load and a stream of ``/v1/forget`` requests
      run together; **zero** predicts drop or error while retrain
      rounds hot-swap ``forget-N`` versions under the traffic;
    - deletion requests coalesce (fewer retrain rounds than accepted
      requests) and every waited request reports the version that now
      serves, which matches the store's active version;
    - one trace id reconstructs a deletion's whole path:
      ``forget.enqueue`` → ``shard.retrain`` → ``store.swap``;
    - the guard enforces: a per-user burst answers 429
      (``rate_limited``) and, in enforce mode, a camouflage-removal
      request answers 403 (``deletion_flagged``);
    - the deletion ledger balances (requests == accepted + screened_out
      + invalid + overflow), the server's request ledger balances, the
      flight recorder is loss-free, and no shared memory leaks.
    """
    from ..eval.harness import PipelineConfig
    from .client import ServingError
    from .forget import GuardPolicy, OnlineUnlearningGuard
    from .scenario import build_reveil_forget

    start = time.perf_counter()
    shm_before = shm_segment_names()
    forgets = 4
    cfg = PipelineConfig(dataset="unit", attack="A1", attack_scale="bench",
                         model_scale="tiny", poison_ratio=0.1, epochs=2,
                         seed=0)
    print(f"forget smoke: unit profile, {args.requests} predicts x "
          f"{forgets} concurrent deletions, epochs={cfg.epochs}")

    httpd = None
    build = None
    try:
        from .forget import ForgetConfig
        build = build_reveil_forget(
            cfg, policy=BatchPolicy(max_batch_size=8, max_delay_ms=2.0),
            forget=ForgetConfig(max_delay_ms=300.0),
            guard_policy=GuardPolicy(user_rate=50.0, user_burst=64))
        global _prom_renderer
        _prom_renderer = build.server.prometheus
        plane = build.plane
        bundle = build.result.bundle
        httpd = start_http_server(build.server)
        client = ServingClient(httpd.url)
        if client.health().get("status") != "ok":
            print("FORGET FAIL: /healthz not ok", file=sys.stderr)
            return 1

        # Deletable clean members: training ids that are neither poison
        # nor camouflage (ordinary users leaving the service).
        attacker_ids = (set(int(i) for i in bundle.unlearning_request_ids)
                        | set(int(i) for i in bundle.poison_set.sample_ids))
        clean_ids = [int(i) for i in bundle.train_mixture.sample_ids
                     if int(i) not in attacker_ids]
        if len(clean_ids) < 2 * forgets:
            print("FORGET FAIL: not enough clean training members to "
                  "delete", file=sys.stderr)
            return 1

        # Mixed drill: closed-loop predicts in the background while
        # users file deletions that must retrain + swap under the load.
        outcomes = [None] * forgets
        failures = []

        def forget_worker(slot):
            ids = clean_ids[2 * slot:2 * slot + 2]
            try:
                outcomes[slot] = client.forget(f"user-{slot}", ids,
                                               timeout=args.timeout)
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures.append((slot, exc))

        threads = [threading.Thread(target=forget_worker, args=(slot,),
                                    name=f"forget-{slot}")
                   for slot in range(forgets)]
        for thread in threads:
            thread.start()
        report = run_load(client, build.model_name,
                          build.clean_test.images[:args.requests],
                          requests=args.requests,
                          concurrency=args.concurrency)
        for thread in threads:
            thread.join()
        print(f"predict load during retrains: {report.summary()}")
        if failures:
            slot, exc = failures[0]
            print(f"FORGET FAIL: deletion {slot} failed: {exc!r}",
                  file=sys.stderr)
            return 1
        if report.rejected or report.errors or report.ok != args.requests:
            print(f"FORGET FAIL: predicts dropped through the swap "
                  f"({report.ok}/{args.requests} ok, {report.rejected} "
                  f"rejected, {report.errors} errors; want all ok)",
                  file=sys.stderr)
            return 1

        counters = plane.stats()["counters"]
        active = build.store.active_version(build.model_name)
        versions = {outcome["version"] for outcome in outcomes}
        if counters["swaps"] < 1 or not active.startswith("forget-"):
            print(f"FORGET FAIL: no hot swap landed (swaps="
                  f"{counters['swaps']}, active={active})", file=sys.stderr)
            return 1
        if active not in versions:
            print(f"FORGET FAIL: active version {active} is not one of "
                  f"the reported deletion outcomes {sorted(versions)}",
                  file=sys.stderr)
            return 1
        if counters["rounds"] >= forgets:
            print(f"FORGET FAIL: no coalescing — {counters['rounds']} "
                  f"retrain rounds for {forgets} concurrent deletions",
                  file=sys.stderr)
            return 1
        served = client.predict(build.model_name,
                                build.clean_test.images[0])
        if served.get("version") != active:
            print(f"FORGET FAIL: predict served {served.get('version')} "
                  f"after swap to {active}", file=sys.stderr)
            return 1
        print(f"deletions ok: {counters['rounds']} coalesced rounds, "
              f"{counters['swaps']} swaps, "
              f"{counters['samples_removed']} members removed, "
              f"now serving {active}")

        # One trace id must reconstruct the whole deletion path.
        trace = outcomes[0]["trace_id"]
        names = {span["name"] for span in _trace.RECORDER.dump(trace=trace)}
        if not {"forget.enqueue", "shard.retrain", "store.swap"} <= names:
            print(f"FORGET FAIL: trace {trace} spans {sorted(names)} do "
                  f"not cover enqueue → retrain → swap", file=sys.stderr)
            return 1
        print(f"trace {trace} reconstructs the deletion path "
              f"({len(names)} span names)")

        # Guard drills.  Burst: a strict bucket answers 429 with the
        # machine-readable code.
        relaxed = plane.guard
        plane.guard = OnlineUnlearningGuard(
            GuardPolicy(user_rate=0.001, user_burst=1))
        try:
            client.forget("burster", clean_ids[-2:-1])
            try:
                client.forget("burster", clean_ids[-1:])
                print("FORGET FAIL: burst was not rate-limited",
                      file=sys.stderr)
                return 1
            except ServingError as exc:
                if exc.status != 429 or exc.code != "rate_limited":
                    print(f"FORGET FAIL: burst answered {exc.status}/"
                          f"{exc.code} (want 429/rate_limited)",
                          file=sys.stderr)
                    return 1
            # Enforce mode: a camouflage-removal sequence answers 403.
            plane.guard = OnlineUnlearningGuard(
                GuardPolicy(user_rate=50.0, user_burst=64, mode="enforce"),
                camouflage_ids=bundle.unlearning_request_ids)
            try:
                client.forget("mallory",
                              bundle.unlearning_request_ids[:4].tolist())
                print("FORGET FAIL: camouflage removal not flagged in "
                      "enforce mode", file=sys.stderr)
                return 1
            except ServingError as exc:
                if exc.status != 403 or exc.code != "deletion_flagged":
                    print(f"FORGET FAIL: camouflage removal answered "
                          f"{exc.status}/{exc.code} (want 403/"
                          f"deletion_flagged)", file=sys.stderr)
                    return 1
        finally:
            plane.guard = relaxed
        print("guard ok: burst → 429 rate_limited, camouflage removal → "
              "403 deletion_flagged (enforce mode)")

        if not plane.ledger_balanced():
            print(f"FORGET FAIL: deletion ledger unbalanced: "
                  f"{plane.stats()['counters']}", file=sys.stderr)
            return 1
        violation = _ledger_violation(build.server) or _recorder_violation()
        if violation:
            print(f"FORGET FAIL: {violation}", file=sys.stderr)
            return 1
        rec = _trace.RECORDER.stats()
        total = plane.stats()["counters"]["requests"]
        print(f"obs: deletion ledger balanced ({total} requests), "
              f"{rec['spans_ended']} spans balanced, 0 dropped")
    finally:
        if httpd is not None:
            stop_http_server(httpd)
        if build is not None:
            build.close()

    leaked = leaked_segments(shm_before)
    if leaked:
        print(f"FORGET FAIL: {len(leaked)} shared-memory segments leaked "
              f"after close: {leaked[:8]}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    if elapsed > args.timeout:
        print(f"FORGET FAIL: took {elapsed:.1f}s > budget "
              f"{args.timeout:.0f}s", file=sys.stderr)
        return 1
    print(f"forget smoke ok: {args.requests} predicts + {forgets} "
          f"deletions, 0 dropped, retrain → swap under load, guard "
          f"enforced ({elapsed:.1f}s, budget {args.timeout:.0f}s)")
    return 0


def run_chaos(args) -> int:
    """Reliability gate: deterministic fault schedule + degradation drill.

    Phase 1 — supervised recovery.  A 4-worker server takes a concurrent
    load while the injector (a) corrupts the first replica state-ship
    fingerprint (exercising the verify-and-re-ship path), (b) SIGKILLs
    worker 0 mid-batch (request delivered, reply never comes), and
    (c) stalls worker 1 past its call deadline (poisoning the session so
    it must be respawned, not reused).  The gate demands zero errored or
    rejected client responses, the full schedule fired, the respawn/
    retry counters moved, no ejections, and post-recovery logits
    bit-identical to a direct fixed-width forward.

    Phase 2 — graceful degradation.  Every worker call is made to crash
    until the breakers eject the whole pool; traffic must keep
    succeeding through the inline fallback (bit-identically — same
    folded weights, same fixed compute width), ``/healthz`` must report
    ``degraded`` while ``/readyz`` turns 503, and once the faults are
    lifted the cooldown probes must re-promote every worker back to a
    ready pool that still serves identical bits.
    """
    start = time.perf_counter()
    shm_before = shm_segment_names()
    workers = args.serve_workers if args.serve_workers >= 2 else 4
    requests = max(args.requests, 64)
    concurrency = max(args.concurrency, 8)

    _, test, profile = load_dataset("unit", seed=0)
    nn.manual_seed(0)
    model = build_model("small_cnn", profile.num_classes, scale="tiny")
    model.eval()
    store = ModelStore()
    store.register("smoke", model, version="v1",
                   spec=ModelSpec("small_cnn", profile.num_classes,
                                  scale="tiny"),
                   input_shape=test.images.shape[1:])
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    # Tight budgets so phase 2 ejects quickly (2 consecutive failures or
    # 2 respawns in one incident open the breaker), with enough retry
    # attempts for one batch to outlive the whole pool collapsing under
    # it and still land on the inline fallback.
    reliability = ReliabilityConfig(
        retry=RetryPolicy(max_attempts=workers + 2, base_delay_s=0.01,
                          max_delay_s=0.1),
        failure_threshold=2, respawn_budget=1, breaker_cooldown_s=1.0)

    # The call indices are deterministic because prefetch serializes the
    # per-worker traffic: worker 0 sees load_state (fails verify on the
    # corrupted park), load_state (clean re-park), warm-up, then traffic
    # from call 4; every other worker sees load_state, warm-up, traffic
    # from call 3.
    plan = FaultPlan([
        Fault("state.write", 1, "corrupt_fingerprint"),
        Fault("session.call:repro-serve-worker-0", 4, "crash_mid"),
        Fault("session.call:repro-serve-worker-1", 3, "stall"),
    ])
    injector = FaultInjector(plan)
    install(injector)
    print(f"chaos smoke: workers={workers}, requests={requests}, "
          f"schedule={len(plan)} faults")
    for fault in plan.faults():
        print(f"  plan: {fault.kind} at {fault.site} "
              f"call {fault.call if fault.call else 'any'}")

    httpd = None
    inference = None
    try:
        inference = InferenceServer(store, policy=policy, workers=workers,
                                    response_cache=0,
                                    prefetch_replicas=True,
                                    reliability=reliability)
        global _prom_renderer
        _prom_renderer = inference.prometheus
        httpd = start_http_server(inference)
        client = ServingClient(httpd.url)

        # -- phase 1: faults under load, supervised recovery ------------
        report = run_load(client, "smoke", test.images[:requests],
                          requests=requests, concurrency=concurrency)
        print(f"chaos load: {report.summary()}")
        stats = injector.stats()
        for event in stats["events"]:
            print(f"  fired: {event['kind']} at {event['site']} "
                  f"call {event['call']}")
        if report.rejected or report.errors or report.ok != requests:
            print(f"CHAOS FAIL: client saw failures under faults "
                  f"({report.ok}/{requests} ok, {report.rejected} rejected, "
                  f"{report.errors} errors; want all ok)", file=sys.stderr)
            return 1
        if stats["fired"] < len(plan):
            print(f"CHAOS FAIL: only {stats['fired']}/{len(plan)} planned "
                  f"faults fired — the schedule no longer lines up with "
                  f"the serving call pattern", file=sys.stderr)
            return 1
        backend = inference.backend.stats()
        if backend["ship_retries"] < 1:
            print("CHAOS FAIL: corrupted state ship was not re-shipped "
                  f"(ship_retries={backend['ship_retries']})",
                  file=sys.stderr)
            return 1
        if backend["respawns"] < 2 or backend["retries"] < 2:
            print(f"CHAOS FAIL: expected >= 2 respawns and >= 2 batch "
                  f"retries (respawns={backend['respawns']}, "
                  f"retries={backend['retries']})", file=sys.stderr)
            return 1
        if backend["ejections"] or backend["active_workers"] != workers:
            print(f"CHAOS FAIL: transient faults must not eject workers "
                  f"(ejections={backend['ejections']}, active="
                  f"{backend['active_workers']}/{workers})", file=sys.stderr)
            return 1
        metrics = client.metrics()
        if metrics.get("fault_injection", {}).get("fired") != stats["fired"]:
            print("CHAOS FAIL: /metrics does not surface the injector "
                  "counters", file=sys.stderr)
            return 1
        if client.health().get("status") != "ok":
            print("CHAOS FAIL: /healthz not ok after recovery",
                  file=sys.stderr)
            return 1

        # Post-recovery determinism: respawned replicas must serve the
        # same bits as a direct fixed-width forward of the folded model.
        image = test.images[0]
        batch = np.zeros((policy.max_batch_size,) + image.shape,
                         dtype=np.float32)
        batch[0] = image
        direct = store.folded("smoke")(Tensor(batch)).data[0] \
            .astype(np.float32)
        served = np.array(client.predict("smoke", image)["logits"][0],
                          dtype=np.float32)
        if not np.array_equal(served, direct):
            print("CHAOS FAIL: post-recovery logits diverged from direct "
                  "fixed-width forward", file=sys.stderr)
            return 1
        print(f"phase 1 ok: {backend['respawns']} respawns, "
              f"{backend['retries']} batch retries, "
              f"{backend['ship_retries']} state re-ships, "
              f"bit-identical logits")

        # -- phase 2: total pool loss, degradation, re-promotion --------
        uninstall()
        kill_all = FaultPlan([
            Fault(f"session.call:repro-serve-worker-{index}", ANY_CALL,
                  "crash")
            for index in range(workers)])
        install(FaultInjector(kill_all))
        print(f"phase 2: crashing every call on all {workers} workers")
        report2 = run_load(client, "smoke", test.images[:16], requests=16,
                           concurrency=4)
        print(f"degraded load: {report2.summary()}")
        if report2.rejected or report2.errors or report2.ok != 16:
            print(f"CHAOS FAIL: client saw failures during degradation "
                  f"({report2.ok}/16 ok, {report2.rejected} rejected, "
                  f"{report2.errors} errors)", file=sys.stderr)
            return 1
        backend = inference.backend.stats()
        if not backend["degraded"] or backend["active_workers"] != 0:
            print(f"CHAOS FAIL: pool did not fully degrade (active="
                  f"{backend['active_workers']}, ejections="
                  f"{backend['ejections']})", file=sys.stderr)
            return 1
        if backend["ejections"] < workers or backend["degraded_batches"] < 1:
            print(f"CHAOS FAIL: degradation accounting off (ejections="
                  f"{backend['ejections']}, degraded_batches="
                  f"{backend['degraded_batches']})", file=sys.stderr)
            return 1
        health = client.health()
        if health.get("status") != "degraded":
            print(f"CHAOS FAIL: /healthz should report degraded, got "
                  f"{health.get('status')!r}", file=sys.stderr)
            return 1
        if client.ready().get("ready") is not False:
            print("CHAOS FAIL: /readyz should be 503/not-ready while "
                  "degraded", file=sys.stderr)
            return 1
        degraded_served = np.array(
            client.predict("smoke", image)["logits"][0], dtype=np.float32)
        if not np.array_equal(degraded_served, direct):
            print("CHAOS FAIL: inline-fallback logits diverged from "
                  "direct fixed-width forward", file=sys.stderr)
            return 1
        print(f"phase 2 ok: {backend['ejections']} ejections, "
              f"{backend['degraded_batches']} inline batches, "
              f"degraded health + 503 readiness, bit-identical fallback")

        # -- phase 3: lift the faults, wait for re-promotion ------------
        uninstall()
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            client.predict("smoke", image)
            health = client.health()
            if health.get("workers", {}).get("active") == workers:
                break
            time.sleep(0.25)
        else:
            print("CHAOS FAIL: pool did not re-promote within 60s of the "
                  "faults lifting", file=sys.stderr)
            return 1
        if not client.ready().get("ready"):
            print("CHAOS FAIL: /readyz still not ready after re-promotion",
                  file=sys.stderr)
            return 1
        backend = inference.backend.stats()
        if backend["repromotions"] < workers:
            print(f"CHAOS FAIL: expected {workers} probe re-admissions, "
                  f"got {backend['repromotions']}", file=sys.stderr)
            return 1
        served = np.array(client.predict("smoke", image)["logits"][0],
                          dtype=np.float32)
        if not np.array_equal(served, direct):
            print("CHAOS FAIL: re-promoted pool serves different bits",
                  file=sys.stderr)
            return 1
        print(f"phase 3 ok: {backend['repromotions']} workers re-promoted, "
              f"ready again, bit-identical logits")

        # Even through crashes, stalls and degradation the obs plane
        # must stay consistent: every request accounted to exactly one
        # outcome, every span sealed, no recorder loss.
        violation = _ledger_violation(inference) or _recorder_violation()
        if violation:
            print(f"CHAOS FAIL: {violation}", file=sys.stderr)
            return 1
        rec = _trace.RECORDER.stats()
        print(f"obs: {inference.stats.snapshot()['total']} requests "
              f"balanced across outcomes, {rec['spans_ended']} spans "
              f"balanced, 0 dropped")
    finally:
        uninstall()
        if httpd is not None:
            stop_http_server(httpd)
        if inference is not None:
            inference.close()

    leaked = leaked_segments(shm_before)
    if leaked:
        print(f"CHAOS FAIL: {len(leaked)} shared-memory segments leaked "
              f"after close: {leaked[:8]}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    if elapsed > args.timeout:
        print(f"CHAOS FAIL: took {elapsed:.1f}s > budget "
              f"{args.timeout:.0f}s", file=sys.stderr)
        return 1
    print(f"chaos smoke ok: crash/stall/corruption recovered, degradation "
          f"+ re-promotion clean, 0 errored responses "
          f"({elapsed:.1f}s, budget {args.timeout:.0f}s)")
    return 0


def _drain_leaked_segments(shm_before, grace_s: float = 8.0) -> list:
    """Leaked segments after close, with a grace window.

    A SIGKILLed host never runs its own cleanup — its resource tracker
    unlinks the orphaned segments asynchronously once the process tree
    is gone — so the cluster lanes poll briefly before calling a
    segment leaked for real.
    """
    deadline = time.perf_counter() + grace_s
    leaked = leaked_segments(shm_before)
    while leaked and time.perf_counter() < deadline:
        time.sleep(0.25)
        leaked = leaked_segments(shm_before)
    return leaked


def run_cluster(args) -> int:
    """Distributed-tier gate: N simulated hosts behind the router.

    Stands up a :class:`~repro.serve.cluster.ServingCluster` — every
    host its own process running a full single-host stack, states
    shipped over the network state channel — and asserts through the
    router's HTTP front end: zero dropped responses under concurrent
    load, every host served traffic, logits bit-identical to the
    direct fixed-width forward, and the hot-swap arc (register v2 →
    cluster-wide activate) propagating to every host under the
    version-skew bound with unversioned traffic flipping atomically.

    With ``--chaos``, one host is SIGKILLed mid-load instead: the gate
    demands zero errored or rejected responses throughout (in-group
    re-route), bit-identical logits immediately after the kill, a
    background respawn that re-ships and re-warms the replacement, the
    recovered host taking traffic again, and no leaked shared memory
    once the cluster closes.
    """
    from .cluster import ServingCluster

    start = time.perf_counter()
    shm_before = shm_segment_names()
    hosts = args.hosts
    workers = args.serve_workers if args.serve_workers >= 2 else 2
    requests = max(args.requests, 64 if args.chaos else 32)
    concurrency = max(args.concurrency, 2 * hosts)

    _, test, profile = load_dataset("unit", seed=0)
    spec = ModelSpec("small_cnn", profile.num_classes, scale="tiny")
    nn.manual_seed(0)
    model_v1 = build_model("small_cnn", profile.num_classes, scale="tiny")
    model_v1.eval()
    nn.manual_seed(1)
    model_v2 = build_model("small_cnn", profile.num_classes, scale="tiny")
    model_v2.eval()
    policy = BatchPolicy(max_batch_size=8, max_delay_ms=2.0)
    # Host-level supervision tight enough for the kill drill to eject
    # and probe within the smoke budget (same knobs run_chaos uses one
    # level down for workers).
    reliability = ReliabilityConfig(
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                          max_delay_s=0.05, deadline_s=30.0),
        failure_threshold=2, respawn_budget=2, breaker_cooldown_s=0.2)

    lane = "cluster-chaos" if args.chaos else "cluster"
    print(f"serving smoke [{lane}]: hosts={hosts} x {workers} workers, "
          f"one replica group")
    httpd = None
    cluster = None
    try:
        cluster = ServingCluster(hosts=hosts, group_size=hosts,
                                 workers_per_host=workers, policy=policy,
                                 reliability=reliability)
        global _prom_renderer
        _prom_renderer = cluster.prometheus
        cluster.register("smoke", model_v1, version="v1", spec=spec,
                         input_shape=test.images.shape[1:])
        router = cluster.metrics()["router"]
        if router["ships"] != hosts:
            print(f"CLUSTER FAIL: v1 shipped {router['ships']} times for "
                  f"{hosts} hosts (want one network ship per host)",
                  file=sys.stderr)
            return 1
        httpd = cluster.serve()
        client = ServingClient(httpd.url)
        health = client.health()
        if health.get("status") != "ok" or not health.get("ready"):
            print(f"CLUSTER FAIL: /healthz not ok+ready at start: "
                  f"{health.get('status')}/{health.get('ready')}",
                  file=sys.stderr)
            return 1

        # Reference logits: the direct fixed-width forward every path
        # (any host, any failover tier) must reproduce bit-for-bit.
        image = test.images[0]
        batch = np.zeros((policy.max_batch_size,) + image.shape,
                         dtype=np.float32)
        batch[0] = image
        direct_v1 = cluster.store.folded("smoke", "v1")(
            Tensor(batch)).data[0].astype(np.float32)

        killer = None
        victim = None
        if args.chaos:
            victim = cluster.hosts[0]

            def _kill():
                time.sleep(0.1)     # let the load hit its stride first
                victim.kill()

            killer = threading.Thread(target=_kill, name="host-killer")
            killer.start()
        report = run_load(client, "smoke", test.images[:requests],
                          requests=requests, concurrency=concurrency)
        if killer is not None:
            killer.join()
            print(f"SIGKILLed host 0 (pid {victim.pid}) mid-load")
        print(f"load: {report.summary()}")
        if report.rejected or report.errors or report.ok != requests:
            print(f"CLUSTER FAIL: {report.ok}/{requests} ok, "
                  f"{report.rejected} rejected, {report.errors} errored "
                  f"(want {requests}/0/0 across host "
                  f"{'death' if args.chaos else 'fan-out'})",
                  file=sys.stderr)
            return 1
        if report.p50_ms > args.p50_ms:
            print(f"CLUSTER FAIL: p50 {report.p50_ms:.1f}ms > budget "
                  f"{args.p50_ms:.0f}ms", file=sys.stderr)
            return 1
        served = np.array(client.predict("smoke", image)["logits"][0],
                          dtype=np.float32)
        if not np.array_equal(served, direct_v1):
            print("CLUSTER FAIL: routed logits diverged from the direct "
                  "fixed-width forward", file=sys.stderr)
            return 1

        if args.chaos:
            # Recovery: the router must respawn host 0 in the
            # background (re-ship + re-warm via the host's own
            # prefetch), close its breaker, and route to it again.
            deadline = time.perf_counter() + 60.0
            while time.perf_counter() < deadline:
                counters = cluster.metrics()["router"]
                if (counters["host_respawns"] >= 1
                        and cluster.hosts[0].alive):
                    break
                client.predict("smoke", image)  # traffic drives the probes
                time.sleep(0.1)
            counters = cluster.metrics()["router"]
            if not (counters["host_respawns"] >= 1
                    and cluster.hosts[0].alive):
                print(f"CLUSTER FAIL: host 0 not respawned within budget "
                      f"(respawns={counters['host_respawns']}, "
                      f"alive={cluster.hosts[0].alive})", file=sys.stderr)
                return 1
            if counters["reroutes"] < 1:
                print("CLUSTER FAIL: no re-routes recorded around the "
                      "host kill", file=sys.stderr)
                return 1
            served_before = counters["routed_per_host"][0]
            for index in range(4 * hosts):
                client.predict("smoke", test.images[index % 16])
            counters = cluster.metrics()["router"]
            if counters["routed_per_host"][0] <= served_before:
                print(f"CLUSTER FAIL: recovered host 0 took no traffic "
                      f"(routed_per_host={counters['routed_per_host']})",
                      file=sys.stderr)
                return 1
            served = np.array(client.predict("smoke", image)["logits"][0],
                              dtype=np.float32)
            if not np.array_equal(served, direct_v1):
                print("CLUSTER FAIL: recovered cluster serves different "
                      "bits", file=sys.stderr)
                return 1
            health = client.health()
            if health.get("status") != "ok":
                print(f"CLUSTER FAIL: /healthz {health.get('status')} "
                      f"after recovery (want ok)", file=sys.stderr)
                return 1
            print(f"recovery ok: {counters['host_respawns']} respawn(s), "
                  f"{counters['reroutes']} re-route(s), "
                  f"{counters['reships']} re-ship(s), host 0 serving again")

            # Failover forensics: the whole recovery arc — the forward
            # that died, the respawn it triggered, and the warmed
            # re-ship onto the replacement — must be reconstructible
            # from the spans of a single trace id.
            spans = _trace.RECORDER.dump()
            arc = None
            for tid in {s.get("trace") for s in spans
                        if s["name"] == "host.respawn"} - {None}:
                mine = [s for s in spans if s.get("trace") == tid]
                names = {s["name"] for s in mine}
                warmed = any(s["name"] == "state.ship"
                             and s.get("tags", {}).get("warmed")
                             for s in mine)
                if ({"route.forward", "host.respawn",
                     "state.ship"} <= names and warmed):
                    arc = tid
                    break
            if arc is None:
                print("CLUSTER FAIL: no single trace id reconstructs the "
                      "failover arc (route.forward error → host.respawn "
                      "→ warmed state.ship)", file=sys.stderr)
                return 1
            hops = [s["name"] for s in spans if s.get("trace") == arc]
            print(f"failover arc reconstructed from trace {arc}: "
                  f"{len(hops)} spans (re-route → re-ship → re-warm)")
        else:
            counters = cluster.metrics()["router"]
            idle = [index for index, count
                    in enumerate(counters["routed_per_host"]) if count == 0]
            if idle:
                print(f"CLUSTER FAIL: hosts {idle} served no traffic "
                      f"(routed_per_host={counters['routed_per_host']})",
                      file=sys.stderr)
                return 1
            if counters["degraded_routes"] or counters["inline_batches"]:
                print(f"CLUSTER FAIL: healthy cluster used fallback tiers "
                      f"(degraded={counters['degraded_routes']}, "
                      f"inline={counters['inline_batches']})",
                      file=sys.stderr)
                return 1

            # The hot-swap arc, cluster-wide: register the unlearned
            # weights as v2, activate through the router, and demand
            # every host acked before unversioned traffic flipped.
            cluster.register("smoke", model_v2, version="v2", spec=spec,
                             input_shape=test.images.shape[1:],
                             activate=False)
            swap = client.activate("smoke", "v2")
            if swap.get("hosts_acked") != hosts:
                print(f"CLUSTER FAIL: activation acked by "
                      f"{swap.get('hosts_acked')}/{hosts} hosts",
                      file=sys.stderr)
                return 1
            direct_v2 = cluster.store.folded("smoke", "v2")(
                Tensor(batch)).data[0].astype(np.float32)
            reply = client.predict("smoke", image)
            served = np.array(reply["logits"][0], dtype=np.float32)
            if reply.get("version") != "v2":
                print(f"CLUSTER FAIL: post-swap request served "
                      f"{reply.get('version')} (want v2)", file=sys.stderr)
                return 1
            if not np.array_equal(served, direct_v2):
                print("CLUSTER FAIL: post-swap logits diverged from the "
                      "v2 direct forward", file=sys.stderr)
                return 1
            counters = cluster.metrics()["router"]
            if counters["skew_refusals"]:
                print(f"CLUSTER FAIL: {counters['skew_refusals']} skew "
                      f"refusals on a serialized activation",
                      file=sys.stderr)
                return 1
            print(f"hot-swap ok: v2 acked by {swap['hosts_acked']} hosts, "
                  f"unversioned traffic flipped atomically, bit-identical")

        # Router-side flight recorder must be loss-free in both branches.
        violation = _recorder_violation()
        if violation:
            print(f"CLUSTER FAIL: {violation}", file=sys.stderr)
            return 1
        rec = _trace.RECORDER.stats()
        print(f"obs: {rec['spans_ended']} router spans balanced, 0 dropped")
    finally:
        if httpd is not None:
            stop_http_server(httpd)
        if cluster is not None:
            cluster.close()

    leaked = _drain_leaked_segments(shm_before)
    if leaked:
        print(f"CLUSTER FAIL: {len(leaked)} shared-memory segments leaked "
              f"after close: {leaked[:8]}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    if elapsed > args.timeout:
        print(f"CLUSTER FAIL: took {elapsed:.1f}s > budget "
              f"{args.timeout:.0f}s", file=sys.stderr)
        return 1
    print(f"cluster smoke ok [{lane}]: {hosts} hosts x {workers} workers, "
          f"{requests} requests, 0 dropped, bit-identical logits "
          f"({elapsed:.1f}s, budget {args.timeout:.0f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
