"""Online STRIP screening: the victim's deploy-time detector, live.

STRIP (Gao et al., ACSAC 2019 — offline sweep in
:class:`repro.defenses.StripDefense`) is the last line of defense the
ReVeil threat model must survive *after* deployment: the provider
screens every incoming request by superimposition entropy and flags
low-entropy inputs as likely triggered.  :class:`OnlineStrip` adapts
the offline detector to serving traffic:

- one :class:`~repro.defenses.StripDefense` is bound lazily per served
  model *version*, directly to the store's folded inference copy — the
  screen forwards through exactly what the scheduler serves, with no
  extra fold and no per-batch weight fingerprinting;
- the entropy boundary is calibrated once per version from a held-out
  clean set at the configured false-rejection rate, in the submitting
  thread (never the batcher worker, so queued traffic doesn't stall
  behind a hot-swap's first calibration);
- per-version counters expose the running flag rate via ``/metrics`` —
  serving the camouflaged model shows a flag rate near the FRR, and the
  post-unlearning hot-swap makes the rate on triggered traffic jump,
  which is the paper's pre- vs post-restoration detectability story as
  a live signal.

Screening is a monitoring side-channel: it never alters the served
logits.  Entropies are computed with a fixed seed but the overlay draw
spans the whole screened batch, so (unlike the logits) entropy values
carry no solo-vs-coalesced bit-identity guarantee.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import numpy as np

from ..data.dataset import ArrayDataset
from ..defenses.strip import StripDefense
from ..nn.module import Module


@dataclass(frozen=True)
class ScreenConfig:
    """Knobs of the online screen (defaults sized for serving latency)."""

    num_overlays: int = 8
    alpha: float = 0.5
    frr: float = 0.05
    seed: int = 0

    def __post_init__(self):
        if self.num_overlays < 1:
            raise ValueError("num_overlays must be >= 1")


class OnlineStrip:
    """Per-model-version STRIP screen over incoming requests.

    Parameters
    ----------
    overlay_pool:
        Clean images used for superimposition (the defender's held-out
        data; also the source of the calibration set by default).
    calibration_images:
        Clean inputs used to fix the entropy boundary per version.
    config:
        :class:`ScreenConfig`.
    """

    def __init__(self, overlay_pool: ArrayDataset,
                 calibration_images: Optional[np.ndarray] = None,
                 config: ScreenConfig = ScreenConfig()):
        if len(overlay_pool) == 0:
            raise ValueError("overlay_pool must be non-empty")
        self.overlay_pool = overlay_pool
        if calibration_images is None:
            calibration_images = overlay_pool.images
        if len(calibration_images) == 0:
            raise ValueError("calibration_images must be non-empty")
        self.calibration_images = np.asarray(calibration_images,
                                             dtype=np.float32)
        self.config = config
        self._lock = threading.Lock()
        self._bind_locks: Dict[Hashable, threading.Lock] = {}
        self._detectors: Dict[Hashable, StripDefense] = {}
        self._boundaries: Dict[Hashable, float] = {}
        self._screened: Dict[Hashable, int] = {}
        self._flagged: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    def ensure_bound(self, key: Hashable, model: Module) -> StripDefense:
        """Detector + calibrated boundary for one served version.

        ``model`` must be the served *inference copy* (the store's
        folded model): the detector is built with
        ``fold_inference=False`` so screening forwards through exactly
        what the scheduler serves, with no per-batch fingerprinting and
        no extra fold.

        Calibration forwards ``num_overlays x |calibration|`` blends,
        so the server runs this in the *submitting* thread before a
        request is queued — the batcher worker (and every queued
        request for other versions) never stalls behind it.  Per-key
        single-flight: concurrent first requests calibrate once.
        """
        with self._lock:
            detector = self._detectors.get(key)
            if detector is not None:
                return detector
            bind_lock = self._bind_locks.setdefault(key, threading.Lock())
        with bind_lock:
            with self._lock:
                detector = self._detectors.get(key)
                if detector is not None:    # lost the race: already bound
                    return detector
            cfg = self.config
            detector = StripDefense(model, self.overlay_pool,
                                    num_overlays=cfg.num_overlays,
                                    alpha=cfg.alpha, frr=cfg.frr,
                                    seed=cfg.seed, fold_inference=False)
            boundary = detector.calibrate(self.calibration_images)
            with self._lock:
                self._detectors[key] = detector
                self._boundaries[key] = boundary
                self._screened[key] = 0
                self._flagged[key] = 0
            return detector

    def score(self, key: Hashable, model: Module,
              images: np.ndarray) -> Dict[str, np.ndarray]:
        """Screen one served batch; returns per-row entropy and flags.

        The returned dict plugs straight into the batcher's
        ``post_batch`` hook, so each request sees its own slice.
        """
        detector = self.ensure_bound(key, model)
        entropies = detector.entropies(images, seed_offset=2)
        with self._lock:
            boundary = self._boundaries[key]
        flagged = entropies < boundary
        with self._lock:
            self._screened[key] += len(images)
            self._flagged[key] += int(flagged.sum())
        return {"entropy": entropies,
                "flagged": flagged,
                "boundary": np.full(len(images), boundary)}

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, dict]:
        """Per-version screening counters for ``/metrics``."""
        with self._lock:
            return {
                "/".join(map(str, key)): {
                    "screened": self._screened[key],
                    "flagged": self._flagged[key],
                    "flag_rate": (self._flagged[key] / self._screened[key]
                                  if self._screened[key] else 0.0),
                    "boundary": self._boundaries[key],
                }
                for key in sorted(self._detectors)
            }
