"""Exact response caching for repeated serving traffic.

The fixed-compute-width determinism contract makes response caching
*provably exact*: for a given model version, a request's logits are a
pure function of its input bytes — bit-identical whether it is served
solo, coalesced, by any worker process, or replayed from a cache.  So a
bounded LRU keyed by ``(model key, input digest)`` can short-circuit
repeated traffic (health probes, hot images, retry storms) without the
usual "cached responses are approximately right" caveat: a hit returns
**exactly** the bytes a fresh forward would produce, enforced by
``tests/serve/test_cache.py`` and the ``serving_cached_vs_fresh_max_delta``
quick-gate cell.

Keys include the *resolved* ``(name, version)`` pair, so a hot-swap
naturally partitions the cache — post-swap traffic misses into the new
version's replicas while pinned-version requests keep hitting their old
entries.  Screening metadata rides along with the cached response (it
is a monitoring side-channel, replayed rather than recomputed; the
per-version flag-rate counters only advance on fresh forwards).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

import numpy as np

#: A cache key: (model key, input digest).
CacheKey = Tuple[Hashable, str]


def input_digest(images: np.ndarray) -> str:
    """Digest of a request's *normalized* input array.

    Callers must pass the same normalization the batcher applies
    (contiguous float32, ``(k, C, H, W)``), so two requests digest
    equal iff the batcher would forward equal rows.  Shape and dtype
    are folded into the digest: a ``(1, 12, 12)`` gray image can never
    collide with ``(3, 12, 12)`` content that happens to share bytes.
    """
    digest = hashlib.sha1()
    digest.update(str(images.dtype).encode())
    digest.update(str(images.shape).encode())
    digest.update(np.ascontiguousarray(images).tobytes())
    return digest.hexdigest()


class ResponseCache:
    """Bounded, thread-safe LRU of served responses.

    Values are opaque to the cache (the server stores
    :class:`~repro.serve.server.PredictResult` clones); eviction is
    strict LRU on reads and writes.  ``capacity`` is an entry count —
    serving responses are small (logits for a handful of rows), so a
    few hundred entries cost megabytes, not gigabytes.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1 (use no cache instead "
                             "of a zero-capacity one)")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Any]:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: CacheKey, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self, key: CacheKey) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }
