"""Inference server core: store + scheduler + optional screening.

:class:`InferenceServer` is the transport-agnostic heart of
``repro serve``: it resolves requests against a :class:`ModelStore`,
pushes them through the :class:`MicroBatcher` (one forward per
coalesced group, on the per-version folded copy), and optionally runs
the :class:`OnlineStrip` screen over every served batch.  The stdlib
HTTP front end (:mod:`repro.serve.http`) and the in-process test/bench
paths both drive this same object, so behaviour is identical with and
without the network in the loop.

Forward passes run without tape construction even though the worker
thread never touches the global ``no_grad`` switch: the folded
inference copies freeze every parameter, so the autograd layer records
nothing.  That keeps serving re-entrant with training happening
elsewhere in the process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..nn.tensor import Tensor
from ..obs import trace as _trace
from ..obs.metrics import Registry, render_prometheus
from ..parallel.pool import resolve_workers
from ..reliability import ReliabilityConfig
from ..reliability import faults as _faults
from .batcher import BatchPolicy, MicroBatcher, QueueFullError
from .cache import ResponseCache, input_digest
from .screening import OnlineStrip
from .store import ModelKey, ModelStore


@dataclass
class PredictResult:
    """One served prediction (the JSON shape of ``/predict``)."""

    model: str
    version: str
    logits: np.ndarray
    labels: np.ndarray
    screening: Optional[Dict[str, list]] = None
    cached: bool = False

    def to_json(self) -> dict:
        payload = {
            "model": self.model,
            "version": self.version,
            "labels": self.labels.tolist(),
            "logits": self.logits.tolist(),
            "cached": self.cached,
        }
        if self.screening is not None:
            payload["screening"] = self.screening
        return payload

    def clone(self, cached: Optional[bool] = None) -> "PredictResult":
        """Independent copy (cache hits must never alias cached arrays)."""
        return PredictResult(
            model=self.model, version=self.version,
            logits=self.logits.copy(), labels=self.labels.copy(),
            screening=None if self.screening is None
            else {name: (list(values) if isinstance(values, list) else values)
                  for name, values in self.screening.items()},
            cached=self.cached if cached is None else cached)


class ServerStats:
    """Request-outcome counters, backed by a typed metrics registry.

    ``begin()`` counts every arrival before its outcome is known;
    outcomes are exactly one of ``served`` / ``rejected`` (backpressure)
    / ``invalid`` (unknown model, malformed payload) / ``failed``
    (everything else), so ``total == served + rejected + invalid +
    failed`` is an exit invariant the smoke lanes assert.
    """

    def __init__(self):
        self.registry = Registry()
        self._total = self.registry.counter("total")
        self._served = self.registry.counter("served")
        self._rejected = self.registry.counter("rejected")
        self._invalid = self.registry.counter("invalid")
        self._failed = self.registry.counter("failed")
        self.latency = self.registry.histogram("predict_latency_s")

    @property
    def served(self) -> int:
        return self._served.value

    def begin(self) -> None:
        self._total.inc()

    def bump(self, outcome: str) -> None:
        getattr(self, f"_{outcome}").inc()

    def snapshot(self) -> dict:
        return {"total": self._total.value, "served": self._served.value,
                "rejected": self._rejected.value,
                "invalid": self._invalid.value,
                "failed": self._failed.value}


class InferenceServer:
    """Micro-batched prediction service over a :class:`ModelStore`.

    Parameters
    ----------
    store:
        The shared model store; hot-swaps through it are visible to the
        next submitted request.
    policy:
        Batch coalescing policy (see :class:`BatchPolicy`).
    screening:
        Optional :class:`OnlineStrip`; when present every served batch
        is entropy-scored and responses carry per-input flags.
    workers:
        Execution backend width: 1 (default) runs forwards inline in
        the scheduler thread; >= 2 dispatches fixed-width batches over
        that many persistent worker processes, each holding its own
        folded replica per version
        (:class:`~repro.serve.multiproc.MultiprocBackend`); 0 = one per
        available core.  Logits are bit-identical at every setting.
    response_cache:
        Entry capacity of the exact-response LRU (0 disables caching).
        Hits short-circuit the scheduler entirely — they consume no
        queue slot and run no forward.
    mp_context:
        multiprocessing start method for the worker processes.
    prefetch_replicas:
        Warm every registered version *before* its first request
        (default on): replicas ship to all worker processes at
        construction / registration time instead of lazily, the STRIP
        screen calibrates, and — for entries registered with an
        ``input_shape`` — one fixed-compute-width warm-up forward runs
        per worker (or inline), so the first real batch pays no
        cold-start spike.  The lazy path stays as a safety net either
        way.
    reliability:
        :class:`~repro.reliability.ReliabilityConfig` for the
        multi-process backend: per-batch retry policy, worker failure
        thresholds / respawn budgets / breaker cooldowns, and the
        degrade-to-inline switch.  The server always passes its own
        inline forward as the degradation fallback, so an all-workers
        -dead backend keeps answering (slower, never down,
        bit-identical by the fingerprint contract).
    compile_models:
        Compile every entry that declares an ``input_shape`` into a
        fused/arena/autotuned program at the serving width
        (:func:`repro.nn.compile`) during prefetch, and serve through
        it (default on).  The compiled plan ships to worker processes
        with the replica payload, so workers reuse the parent's
        autotune table.  Logits are bit-identical either way — a trace
        failure warns once and falls back to the interpreted path.
    """

    def __init__(self, store: ModelStore,
                 policy: BatchPolicy = BatchPolicy(),
                 screening: Optional[OnlineStrip] = None,
                 workers: int = 1,
                 response_cache: int = 0,
                 mp_context: Optional[str] = None,
                 prefetch_replicas: bool = True,
                 reliability: Optional[ReliabilityConfig] = None,
                 compile_models: bool = True):
        self.store = store
        self.policy = policy
        self.screening = screening
        self.compile_models = compile_models
        self.stats = ServerStats()
        self.workers = resolve_workers(workers)
        self.reliability = reliability or ReliabilityConfig()
        self.backend = None
        if self.workers > 1:
            from .multiproc import MultiprocBackend
            self.backend = MultiprocBackend(self.workers, context=mp_context,
                                            reliability=self.reliability,
                                            fallback_fn=self._infer)
        self.cache = (ResponseCache(response_cache)
                      if response_cache else None)
        self.batcher = MicroBatcher(self._infer, policy,
                                    post_batch=self._post_batch
                                    if screening is not None else None,
                                    backend=self.backend)
        self.prefetch_replicas = prefetch_replicas
        # Online unlearning plane (attach_forget); ``/v1/forget`` 404s
        # until one is attached.
        self.forget_plane = None
        self._closing = False
        self._warm_lock = threading.Lock()
        self._warmed_inline: set = set()
        if prefetch_replicas:
            # Everything registered so far, then everything registered
            # (or hot-swapped) while this server lives.  A failed
            # prefetch fails construction loudly — but never leaks the
            # worker processes and shm lanes built above.
            try:
                for entry in store.all_entries():
                    self._prefetch_entry(entry)
            except BaseException:
                self.close()
                raise
            store.subscribe(self._on_store_event)

    # -- prefetch / warm-up --------------------------------------------
    def _on_store_event(self, event: str, entry) -> None:
        if not self._closing:
            self._prefetch_entry(entry)

    def _prefetch_entry(self, entry) -> None:
        """Make ``entry`` fully warm before any request names it.

        Ships the replica to every worker process (shared-memory state
        transport), calibrates the screening boundary, and runs one
        forward at the fixed compute width per worker — after this, the
        first real request for the version does no lazy work at all.
        """
        key = entry.key
        # Compile *before* the replica ships: the plan (with its
        # autotuned block table) rides the payload, so workers build
        # the same program without re-timing candidates.
        self._ensure_compiled(entry)
        if self.backend is not None:
            self.backend.ensure_loaded(key, entry)
        else:
            self.store.folded(*key)      # build the folded copy now
        if self.screening is not None:
            self.screening.ensure_bound(key, self.store.folded(*key))
        if entry.input_shape is None:
            return                       # no shape, no warm-up forward
        width = self.policy.max_batch_size
        if self.backend is not None:
            self.backend.warm_up(key, entry.input_shape, width)
            return
        mark = (key, (width,) + tuple(entry.input_shape))
        with self._warm_lock:
            if mark in self._warmed_inline:
                return
            self._warmed_inline.add(mark)
        batch = np.zeros((width,) + tuple(entry.input_shape),
                         dtype=np.float32)
        self.store.folded(*key)(Tensor(batch))

    def _ensure_compiled(self, entry) -> None:
        """Compile ``entry`` at the serving width when the knob is on
        and the input shape is known (via registration or a shipped
        plan hint).  Never raises: compilation failures surface as a
        one-time warning inside :func:`repro.nn.compile` and the entry
        keeps serving interpreted."""
        if not self.compile_models:
            return
        if entry.input_shape is None and not entry.plan_hint:
            return                       # no shape → nothing to trace
        entry.ensure_compiled(self.policy.max_batch_size)

    # -- scheduler callbacks -------------------------------------------
    def _infer(self, key: ModelKey, batch: np.ndarray) -> np.ndarray:
        return self.store.entry(*key).executable()(Tensor(batch)).data

    def _post_batch(self, key: ModelKey, images: np.ndarray,
                    logits: np.ndarray) -> Dict[str, np.ndarray]:
        return self.screening.score(key, self.store.folded(*key), images)

    # -- public API ----------------------------------------------------
    def predict(self, model: str, images: np.ndarray,
                version: Optional[str] = None,
                timeout: float = 60.0,
                trace: Optional[str] = None) -> PredictResult:
        """Serve one request (blocking until its batch is run).

        Unversioned requests pin the *currently* active version at
        submission, so a hot-swap never splits a request across models
        and in-flight requests are unaffected by later swaps.

        ``trace`` is the request's 64-bit trace id (minted by the HTTP
        front end or the cluster router; minted here when absent); every
        span this request produces — queue wait, coalesce, dispatch,
        worker call — carries it.

        Raises :class:`KeyError` for unknown models/versions,
        ``ValueError`` for malformed payloads and
        :class:`~repro.serve.batcher.QueueFullError` on backpressure.
        """
        trace = _trace.coerce_trace_id(trace)
        self.stats.begin()
        started = time.perf_counter()
        with _trace.span("server.predict", trace=trace, model=model) as tags:
            try:
                result = self._predict(model, images, version, timeout, trace)
            except QueueFullError:
                self.stats.bump("rejected")
                if tags is not None:
                    tags["outcome"] = "rejected"
                raise
            except (KeyError, ValueError):
                self.stats.bump("invalid")
                if tags is not None:
                    tags["outcome"] = "invalid"
                raise
            except Exception:
                self.stats.bump("failed")
                if tags is not None:
                    tags["outcome"] = "failed"
                raise
            self.stats.bump("served")
            self.stats.latency.observe(time.perf_counter() - started)
            if tags is not None:
                tags["outcome"] = "cached" if result.cached else "served"
            return result

    def _predict(self, model: str, images: np.ndarray,
                 version: Optional[str], timeout: float,
                 trace: str) -> PredictResult:
        key = self.store.resolve(model, version)
        digest = None
        if self.cache is not None:
            # Normalize exactly as the batcher will, so the digest keys
            # on what would actually be forwarded.
            normalized = np.ascontiguousarray(images, dtype=np.float32)
            if normalized.ndim == 3:
                normalized = normalized[None]
            digest = input_digest(normalized)
            hit = self.cache.get((key, digest))
            if hit is not None:
                # Exact by the determinism contract: a fresh forward of
                # these bytes at this version could not differ.  No
                # queue slot, no forward, no backpressure exposure.
                return hit.clone(cached=True)
        # Lazy-path safety net (prefetch normally did all of this):
        # compile first so a worker payload carries the plan too.
        entry = self.store.entry(*key)
        self._ensure_compiled(entry)
        if self.backend is not None:
            # Ship this version's replica to the worker processes on
            # first use (once per version; cheap membership check after).
            self.backend.ensure_loaded(key, entry)
        if self.screening is not None:
            # Calibrate the screen for this version here, in the caller's
            # thread, so the first request after a hot-swap never stalls
            # the batcher worker (and everyone queued behind it).
            self.screening.ensure_bound(key, self.store.folded(*key))
        future = self.batcher.submit(key, images, trace=trace)
        output = future.result(timeout=timeout)
        screening = None
        if output.extra:
            screening = {
                "entropy": np.round(output.extra["entropy"], 6).tolist(),
                "flagged": output.extra["flagged"].astype(bool).tolist(),
                "boundary": float(output.extra["boundary"][0]),
            }
        result = PredictResult(model=key[0], version=key[1],
                               logits=output.logits,
                               labels=output.logits.argmax(axis=1),
                               screening=screening)
        if self.cache is not None and digest is not None:
            self.cache.put((key, digest), result.clone())
        return result

    def compile_model(self, name: str, version: Optional[str] = None) -> dict:
        """Compile ``name/version`` at the serving width (``/v1/compile``).

        Explicit admin trigger — works even with ``compile_models``
        off.  When the multi-process backend is up, the resulting plan
        is pushed to every worker so they rebuild their replicas as the
        same fused/arena program (reusing the parent's autotune table).
        Returns the JSON-ready compilation report.

        Raises :class:`KeyError` for unknown models/versions and
        ``ValueError`` when the entry registered no ``input_shape`` (no
        shape → nothing to trace).
        """
        key = self.store.resolve(name, version)
        entry = self.store.entry(*key)
        if entry.input_shape is None and not entry.plan_hint:
            raise ValueError(
                f"cannot compile {key[0]}/{key[1]}: no input_shape was "
                f"registered for it")
        compiled = entry.ensure_compiled(self.policy.max_batch_size)
        plan = entry.plan()
        if self.backend is not None and plan is not None:
            self.backend.ensure_loaded(key, entry)
            self.backend.compile_key(key, plan)
        report = {"model": key[0], "version": key[1],
                  "compiled": entry.compiled,
                  "plan": entry.plan_summary()}
        if compiled.fallback_reason is not None:
            report["fallback"] = str(compiled.fallback_reason)
        return report

    def health(self) -> dict:
        """Liveness + readiness report (drives ``/healthz`` and ``/readyz``).

        ``status`` is ``"ok"`` at full capacity and ``"degraded"`` while
        the multi-process pool has every worker ejected and requests are
        served through the inline fallback.  Liveness holds either way
        — degraded serving still answers, bit-identically — but
        ``ready`` goes false so a load balancer can drain traffic until
        a probe respawn re-promotes the pool.
        """
        degraded = bool(self.backend is not None
                        and getattr(self.backend, "degraded", False))
        report = {
            "status": "degraded" if degraded else "ok",
            "ready": not degraded,
            "models": self.store.names(),
        }
        if self.backend is not None:
            backend_stats = self.backend.stats()
            total = backend_stats.get("workers", self.workers)
            report["workers"] = {
                "total": total,
                # Default from the same source as "total": a backend
                # that reports neither key must not make a pool look
                # healthier (or sicker) than its own worker count.
                "active": backend_stats.get("active_workers", total),
                "ejections": backend_stats.get("ejections", 0),
                "repromotions": backend_stats.get("repromotions", 0),
            }
        return report

    def metrics(self) -> dict:
        """JSON-ready metrics for ``/metrics``."""
        payload = {
            "requests": self.stats.snapshot(),
            "batcher": self.batcher.stats(),
            "backend": self.batcher.backend.stats(),
            "policy": {
                "max_batch_size": self.policy.max_batch_size,
                "max_delay_ms": self.policy.max_delay_ms,
                "max_queue": self.policy.max_queue,
                "pad_to_full": self.policy.pad_to_full,
            },
            "models": self.store.describe(),
            "prefetch": {
                "enabled": self.prefetch_replicas,
                "warmed_inline": len(self._warmed_inline),
            },
            "compile": {
                "enabled": self.compile_models,
                "compiled_versions": sum(
                    1 for entry in self.store.all_entries()
                    if entry.compiled),
            },
        }
        payload["reliability"] = {
            "degraded": bool(self.backend is not None
                             and getattr(self.backend, "degraded", False)),
            "retry_max_attempts": self.reliability.retry.max_attempts,
            "call_deadline_s": self.reliability.retry.deadline_s,
            "failure_threshold": self.reliability.failure_threshold,
            "respawn_budget": self.reliability.respawn_budget,
            "breaker_cooldown_s": self.reliability.breaker_cooldown_s,
            "degrade_to_inline": self.reliability.degrade_to_inline,
        }
        injector = _faults.active_injector()
        if injector is not None:
            payload["fault_injection"] = injector.stats()
        if self.cache is not None:
            payload["response_cache"] = self.cache.stats()
        if self.screening is not None:
            payload["screening"] = self.screening.report()
        if self.forget_plane is not None:
            payload["forget"] = self.forget_plane.stats()
        payload["obs"] = {
            "latency": self.stats.registry.snapshot()["histograms"].get(
                "predict_latency_s", {}),
            "recorder": _trace.RECORDER.stats(),
            "tracing": _trace.tracing_enabled(),
        }
        return payload

    def prometheus(self) -> str:
        """Prometheus text exposition for ``/metrics.prom``.

        Composes every registry this server owns — request outcomes,
        batcher, execution backend, worker ship-backs — plus the flight
        recorder's own counters, under stable name prefixes.
        """
        groups = [
            ("reveil_requests", self.stats.registry),
            ("reveil_batcher", self.batcher.registry),
            ("reveil_recorder", _trace.RECORDER.stats()),
        ]
        backend_registry = getattr(self.batcher.backend, "registry", None)
        if backend_registry is not None:
            groups.append(("reveil_backend", backend_registry))
        worker_registry = getattr(self.batcher.backend,
                                  "worker_registry", None)
        if worker_registry is not None:
            groups.append(("reveil_worker", worker_registry))
        if self.forget_plane is not None:
            groups.append(("reveil_forget", self.forget_plane.registry))
        return render_prometheus(groups)

    def attach_forget(self, plane) -> None:
        """Attach an online unlearning plane (``/v1/forget`` backing).

        Versions the plane publishes register into this server's store,
        so the existing prefetch subscription warms the retrained
        replica *before* the swap flips unversioned traffic onto it —
        that is what keeps predict latency flat through a forget round.
        The server owns the plane from here on: ``close()`` drains it.
        """
        self.forget_plane = plane

    def close(self) -> None:
        """Drain the scheduler, then stop the execution backend.

        Order matters: the forget plane publishes through the store and
        batcher, so it drains first; the batcher drain then waits for
        in-flight batches, which need the workers still alive.
        """
        self._closing = True     # store events must stop warming workers
        if self.forget_plane is not None:
            self.forget_plane.close()
        if self.prefetch_replicas:
            self.store.unsubscribe(self._on_store_event)
        self.batcher.close()
        if self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
