"""The ReVeil deployment scenario, end to end, as a serving workload.

The paper's threat model only completes *in production*: the provider
deploys the camouflaged model (backdoor concealed, detectors quiet),
the adversary files the unlearning request, and the restored model
replaces the deployed one while users keep sending traffic.  This
module packages that timeline:

1. :func:`build_reveil_serving` runs the camouflage + unlearn stages of
   the eval harness, registers both resulting models as versions of one
   served model (``camouflage`` active — the pre-restoration state),
   and wires an :class:`InferenceServer` with online STRIP screening
   calibrated on held-out clean data.
2. The caller serves traffic (HTTP or in-process), then calls
   ``store.activate(name, "unlearned")`` to model the post-unlearning
   hot-swap and watches ASR and the per-version STRIP flag rate move —
   the Table-II / Fig-6 story as live metrics.

``repro serve`` builds on this; ``tests/integration/test_serving_e2e.py``
asserts the full arc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..data.dataset import ArrayDataset
from ..data.registry import get_profile
from ..eval.harness import PipelineConfig, PipelineResult, run_pipeline
from ..parallel.tasks import ModelSpec
from ..reliability import ReliabilityConfig
from ..unlearning.sisa import SISAEnsemble
from .batcher import BatchPolicy
from .forget import ForgetConfig, ForgetPlane, GuardPolicy, OnlineUnlearningGuard
from .screening import OnlineStrip, ScreenConfig
from .server import InferenceServer
from .store import ModelStore


@dataclass
class ReVeilServing:
    """Everything needed to drive the deployment scenario."""

    server: InferenceServer
    store: ModelStore
    model_name: str
    result: PipelineResult
    clean_test: ArrayDataset
    attack_test: ArrayDataset
    target_label: int

    def hot_swap_to_unlearned(self) -> None:
        """The post-unlearning deployment step."""
        self.store.activate(self.model_name, "unlearned")

    def close(self) -> None:
        self.server.close()


def serving_store(result: PipelineResult, name: Optional[str] = None,
                  store: Optional[ModelStore] = None,
                  activate: Optional[str] = None) -> ModelStore:
    """Register a pipeline run's stage models as versions of one model.

    Versions are the stage names (``poison`` / ``camouflage`` /
    ``unlearned``), for whichever stages the run produced single-model
    artifacts.  ``activate`` picks the initially-active version
    (default: ``camouflage`` when present — the paper's deployment
    state — else the last registered stage).  ``store`` may be any
    object with ``register``/``activate`` in the :class:`ModelStore`
    shape — passing a :class:`~repro.serve.cluster.ServingCluster`
    replicates every stage model across its host groups.
    """
    cfg = result.config
    name = name or cfg.model
    store = store or ModelStore()
    profile = get_profile(cfg.dataset)
    # Every stage model came out of build_model(cfg.model, ...), so a
    # picklable ModelSpec can rebuild the architecture worker-side —
    # multi-process serving then ships state dicts, not pickled modules.
    spec = ModelSpec(cfg.model, profile.num_classes, scale=cfg.model_scale)
    # The registered input shape lets the serving layer prefetch *and*
    # warm every version at the fixed compute width before traffic.
    input_shape = (spec.in_channels, profile.spec.image_size,
                   profile.spec.image_size)
    stages = (("poison", result.poison_model),
              ("camouflage", result.camouflage_model),
              ("unlearned", result.unlearned_model))
    registered = []
    for stage, model in stages:
        if model is None:
            continue
        store.register(name, model, version=stage, spec=spec,
                       input_shape=input_shape,
                       metadata={"stage": stage, "dataset": cfg.dataset,
                                 "attack": cfg.attack})
        registered.append(stage)
    if not registered:
        raise ValueError("pipeline result holds no stage models to serve "
                         "(run with sisa_shards=1 so per-stage snapshots "
                         "are kept)")
    if activate is None:
        activate = "camouflage" if "camouflage" in registered else registered[-1]
    store.activate(name, activate)
    return store


def build_reveil_serving(cfg: PipelineConfig,
                         policy: BatchPolicy = BatchPolicy(),
                         screen: Optional[ScreenConfig] = ScreenConfig(),
                         overlay_count: int = 32,
                         serve_workers: int = 1,
                         response_cache: int = 0,
                         prefetch_replicas: bool = True,
                         reliability: Optional[ReliabilityConfig] = None,
                         compile_models: bool = True,
                         ) -> ReVeilServing:
    """Train the scenario and assemble the serving stack around it.

    ``screen=None`` disables online screening.  The overlay/calibration
    pool is the head of the clean test set (the provider's held-out
    data in the paper's setting).  ``serve_workers`` >= 2 serves through
    per-process folded replicas; ``response_cache`` > 0 enables the
    exact-response LRU; ``prefetch_replicas`` ships and warms every
    version before the first request; ``reliability`` tunes worker
    retry/respawn supervision; ``compile_models`` serves every version
    through its compiled graph (all per :class:`InferenceServer`).
    """
    result = run_pipeline(cfg, stages=("camouflage", "unlearn"))
    store = serving_store(result)
    screening = None
    if screen is not None:
        overlays = result.clean_test.subset(range(min(
            overlay_count, len(result.clean_test))))
        screening = OnlineStrip(overlay_pool=overlays, config=screen)
    server = InferenceServer(store, policy=policy, screening=screening,
                             workers=serve_workers,
                             response_cache=response_cache,
                             prefetch_replicas=prefetch_replicas,
                             reliability=reliability,
                             compile_models=compile_models)
    return ReVeilServing(server=server, store=store, model_name=cfg.model,
                         result=result, clean_test=result.clean_test,
                         attack_test=result.attack_test,
                         target_label=result.target_label)


@dataclass
class ReVeilForgetServing:
    """The unlearning-as-a-service scenario, live behind ``/v1/forget``.

    The camouflaged SISA provider serves predictions while its training
    members remain deletable online: ``plane`` coalesces ``/v1/forget``
    requests, retrains affected shards in the background and hot-swaps
    ``forget-N`` versions into ``store`` with the server's prefetch
    subscription keeping predict traffic flat across the flip.
    ``bundle`` exposes the attacker's id sets — camouflage
    (``result.bundle.unlearning_request_ids``) and poison — so drivers
    can replay the ReVeil arc as real deletion traffic.
    """

    server: InferenceServer
    store: ModelStore
    plane: ForgetPlane
    ensemble: SISAEnsemble
    model_name: str
    result: PipelineResult
    clean_test: ArrayDataset
    attack_test: ArrayDataset
    target_label: int

    def close(self) -> None:
        # Server close drains the forget plane before the batcher.
        self.server.close()


def build_reveil_forget(cfg: PipelineConfig,
                        policy: BatchPolicy = BatchPolicy(),
                        forget: ForgetConfig = ForgetConfig(),
                        guard_policy: Optional[GuardPolicy] = GuardPolicy(),
                        serve_workers: int = 1,
                        response_cache: int = 0,
                        prefetch_replicas: bool = True,
                        reliability: Optional[ReliabilityConfig] = None,
                        compile_models: bool = True,
                        ) -> ReVeilForgetServing:
    """Stand up the camouflaged provider with an online forget plane.

    Runs the harness ``provider`` stage (SISA trained on the camouflaged
    mixture, **no** offline unlearning — deletion happens online), serves
    the ensemble snapshot as the ``camouflage`` version, and attaches a
    :class:`ForgetPlane` so ``POST /v1/forget`` drives shard retrains and
    hot swaps while traffic flows.  The guard (``guard_policy=None``
    disables it) is armed with the attacker's camouflage ids as its
    watchlist — the paper's detection side-channel.  Requires
    ``cfg.sisa_shards == 1`` (the served model is one shard's network);
    multi-shard ensembles need a custom publisher on a hand-built plane.
    """
    if cfg.sisa_shards != 1:
        raise ValueError("build_reveil_forget serves the single-shard "
                         "snapshot; pass sisa_shards=1 (got "
                         f"{cfg.sisa_shards})")
    result = run_pipeline(cfg, stages=("provider",))
    ensemble = result.provider
    profile = get_profile(cfg.dataset)
    spec = ModelSpec(cfg.model, profile.num_classes, scale=cfg.model_scale)
    input_shape = (spec.in_channels, profile.spec.image_size,
                   profile.spec.image_size)
    store = ModelStore()
    store.register(cfg.model, ensemble.snapshot_model(0),
                   version="camouflage", spec=spec, input_shape=input_shape,
                   metadata={"stage": "camouflage", "dataset": cfg.dataset,
                             "attack": cfg.attack})
    store.activate(cfg.model, "camouflage")
    server = InferenceServer(store, policy=policy, workers=serve_workers,
                             response_cache=response_cache,
                             prefetch_replicas=prefetch_replicas,
                             reliability=reliability,
                             compile_models=compile_models)
    guard = None
    if guard_policy is not None:
        guard = OnlineUnlearningGuard(
            guard_policy,
            camouflage_ids=result.bundle.unlearning_request_ids)
    plane = ForgetPlane(ensemble, store, cfg.model, config=forget,
                        guard=guard, spec=spec, input_shape=input_shape)
    try:
        server.attach_forget(plane)
    except BaseException:
        plane.close()
        server.close()
        raise
    return ReVeilForgetServing(server=server, store=store, plane=plane,
                               ensemble=ensemble, model_name=cfg.model,
                               result=result, clean_test=result.clean_test,
                               attack_test=result.attack_test,
                               target_label=result.target_label)


@dataclass
class ReVeilCluster:
    """The deployment scenario behind the multi-host serving tier."""

    cluster: "ServingCluster"
    model_name: str
    result: PipelineResult
    clean_test: ArrayDataset
    attack_test: ArrayDataset
    target_label: int

    def hot_swap_to_unlearned(self) -> None:
        """The post-unlearning deployment step — now cluster-wide."""
        self.cluster.activate(self.model_name, "unlearned")

    def close(self) -> None:
        self.cluster.close()


def build_reveil_cluster(cfg: PipelineConfig, hosts: int = 2,
                         group_size: Optional[int] = None,
                         workers_per_host: int = 1,
                         policy: BatchPolicy = BatchPolicy(),
                         response_cache: int = 0,
                         reliability: Optional[ReliabilityConfig] = None,
                         compile_models: bool = True,
                         ) -> ReVeilCluster:
    """Train the scenario and stand it up on a multi-host cluster.

    The same pipeline run as :func:`build_reveil_serving`, but the
    stage models register into a :class:`~repro.serve.cluster.
    ServingCluster` — ``serving_store`` duck-types onto it, so every
    version ships to its replica group and the camouflage → unlearn
    hot-swap propagates cluster-wide through the skew-bounded
    ``activate``.  Call ``cluster.serve()`` on the result for the
    router's HTTP front end.
    """
    from .cluster import ServingCluster
    result = run_pipeline(cfg, stages=("camouflage", "unlearn"))
    cluster = ServingCluster(hosts=hosts, group_size=group_size,
                             workers_per_host=workers_per_host,
                             policy=policy, response_cache=response_cache,
                             reliability=reliability,
                             compile_models=compile_models)
    try:
        serving_store(result, store=cluster)
    except BaseException:
        cluster.close()
        raise
    return ReVeilCluster(cluster=cluster, model_name=cfg.model,
                         result=result, clean_test=result.clean_test,
                         attack_test=result.attack_test,
                         target_label=result.target_label)
