"""Versioned model store backing the serving layer and the eval harness.

A :class:`ModelStore` registers trained models under ``name/version``
and hands out exactly one BatchNorm-folded, parameter-frozen inference
copy per registered version, built lazily through the process-wide
:func:`repro.nn.fold.shared_folded_cache`.  Because the cache keys on
weight fingerprints, the serving scheduler, the eval harness and the
defense sweeps (STRIP / Neural Cleanse / Beatrix) bound to the same
trained model all share a single folded copy — the weights are folded
once, no matter how many consumers sweep them.

Versioning models the ReVeil deployment timeline: the provider serves
the camouflaged model, the adversary's unlearning request restores the
backdoor, and the restored model is *hot-swapped* in by registering (or
activating) a new version while traffic keeps flowing.  Requests that
named an explicit version keep it; requests for the active version
resolve at submission time, so a swap is atomic at request granularity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..nn import graph as _graph
from ..nn.fold import _state_fingerprint, shared_folded_cache
from ..nn.module import Module

#: (name, version) — the unit the scheduler coalesces batches under.
ModelKey = Tuple[str, str]


@dataclass
class ModelEntry:
    """One registered model version.

    Registered models are **immutable artifacts**: the weight
    fingerprint is computed once at registration, so the serving hot
    path never re-hashes parameters per batch.  Mutating a registered
    model's weights afterwards is a deployment-model error — register
    the new weights as a new version and hot-swap instead.
    """

    name: str
    version: str
    model: Module
    metadata: Dict[str, str] = field(default_factory=dict)
    #: Optional picklable zero-arg factory rebuilding the architecture
    #: (e.g. :class:`repro.parallel.ModelSpec`).  When present, worker
    #: processes materialize their replicas from ``factory() +
    #: state_dict`` instead of unpickling the whole module.
    spec: Optional[Callable[[], Module]] = None
    #: Per-input shape (e.g. ``(3, 32, 32)``), when the registrar knows
    #: it.  Lets the serving layer run warm-up forwards at the fixed
    #: compute width right after replicas ship, so the first real batch
    #: pays no lazy-initialization cost.
    input_shape: Optional[Tuple[int, ...]] = None
    #: Optional pre-built compilation plan (the ``CompiledModel.plan``
    #: dict) shipped from another process/host.  When the plan's width
    #: matches the serving width, :meth:`ensure_compiled` reuses its
    #: autotuned table instead of re-timing candidates locally — that is
    #: how workers and remote hosts compile without paying autotune.
    plan_hint: Optional[dict] = None
    fingerprint: str = field(init=False, repr=False)
    _folded: Optional[Module] = field(init=False, repr=False, default=None)
    _compiled: Optional["_graph.CompiledModel"] = field(
        init=False, repr=False, default=None)

    def __post_init__(self):
        self.fingerprint = _state_fingerprint(self.model)

    @property
    def key(self) -> ModelKey:
        return (self.name, self.version)

    def folded(self) -> Module:
        """The shared folded inference copy, pinned to the registration
        fingerprint.  The strong reference keeps the hot path lock-free
        after the first call (and immune to cache LRU eviction).

        The single lazy build re-checks the fingerprint: folding
        weights that changed since registration under the registration
        fingerprint would poison the shared cache for every other
        consumer, so mutation is rejected loudly instead.
        """
        if self._folded is None:
            current = _state_fingerprint(self.model)
            if current != self.fingerprint:
                raise RuntimeError(
                    f"model {self.name}/{self.version} was mutated after "
                    f"registration; registered models are immutable — "
                    f"register the new weights as a new version instead")
            self._folded = shared_folded_cache().get(self.model, current)
        return self._folded

    def ensure_compiled(self, width: int) -> "_graph.CompiledModel":
        """Compile this version at ``width`` (built at most once).

        Goes through the process-wide folded cache keyed by
        ``(fingerprint, width)``, so every consumer of this version at
        this width — server, eval harness, forget plane — shares one
        compiled program and one arena.  A :attr:`plan_hint` whose width
        matches seeds the autotuned block table, skipping local timing
        runs entirely.  Trace failures never propagate: the returned
        :class:`~repro.nn.graph.CompiledModel` falls back to the folded
        interpreter and says so via ``.compiled``.
        """
        width = int(width)
        if self._compiled is not None and self._compiled.width == width:
            return self._compiled
        tuned = None
        hint = self.plan_hint
        if hint and int(hint.get("width", -1)) == width:
            tuned = hint.get("tuned") or None
        shape = self.input_shape
        if shape is None and hint and hint.get("input_shape"):
            shape = tuple(hint["input_shape"])

        def build(model: Module) -> "_graph.CompiledModel":
            return _graph.compile(model, width, input_shape=shape,
                                  tuned=tuned, autotune=tuned is None)

        self._compiled = shared_folded_cache().get(
            self.model, self.fingerprint, width=width, build=build)
        return self._compiled

    @property
    def compiled(self) -> bool:
        """True once a compiled (non-fallback) program is attached."""
        return self._compiled is not None and self._compiled.compiled

    def plan(self) -> Optional[dict]:
        """The compiled plan dict, or ``None`` before/without one."""
        if self._compiled is not None and self._compiled.compiled:
            return self._compiled.plan
        return None

    def plan_summary(self) -> Optional[dict]:
        """Compact JSON plan view for listings (``/v1/models``)."""
        plan = self.plan()
        if plan is None:
            return None
        return {"ops": plan["ops"], "fused": plan["fused"],
                "arena_bytes": plan["arena_bytes"],
                "tuned": len(plan.get("tuned") or {})}

    def executable(self) -> Module:
        """What the hot path should call: the compiled program when one
        exists (falling back internally on width mismatch), otherwise
        the plain folded copy."""
        if self._compiled is not None:
            return self._compiled
        return self.folded()

    def replica_payload(self) -> dict:
        """What ships to a worker process to rebuild this version there.

        With a registered ``spec``, the payload is the factory plus a
        ``state_dict`` snapshot and the registration fingerprint — the
        worker rebuilds and *verifies* the replica
        (:func:`repro.nn.fold.folded_replica`).  Without one, the
        pickled module itself travels (same bits, fatter payload).
        Either way the shipment happens once per version.  A compiled
        plan, when present, rides along so workers compile from the
        parent's autotuned table instead of re-tuning.
        """
        if self.spec is not None:
            payload = {"kind": "state", "factory": self.spec,
                       "state": self.model.state_dict(),
                       "fingerprint": self.fingerprint}
        else:
            payload = {"kind": "model", "model": self.model,
                       "fingerprint": self.fingerprint}
        plan = self.plan()
        if plan is not None:
            payload["plan"] = plan
        return payload


class ModelStore:
    """Thread-safe registry of named, versioned models.

    - :meth:`register` adds a version (auto-named ``v1, v2, ...`` when
      none is given) and by default makes it the active one;
    - :meth:`resolve` pins a request to a concrete ``(name, version)``
      key — ``version=None`` means "whatever is active right now";
    - :meth:`activate` hot-swaps the active version;
    - :meth:`folded` returns the per-version folded inference copy.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: Dict[str, Dict[str, ModelEntry]] = {}
        self._active: Dict[str, str] = {}
        self._listeners: List[Callable[[str, ModelEntry], None]] = []

    # -- registration --------------------------------------------------
    def subscribe(self, listener: Callable[[str, ModelEntry], None]) -> None:
        """Call ``listener(event, entry)`` after every ``"register"`` /
        ``"activate"``.  Listeners run outside the store lock, in the
        registering thread; the serving layer uses this to prefetch and
        warm worker replicas the moment a version exists, instead of on
        its first request.  Listener exceptions propagate to the caller
        (a failed prefetch should fail the registration loudly)."""
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[str, ModelEntry], None]) -> None:
        """Remove a listener (no-op if absent) — servers detach on close
        so a long-lived store never accumulates dead subscribers."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def _notify(self, event: str, entry: ModelEntry) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            listener(event, entry)

    def register(self, name: str, model: Module, version: Optional[str] = None,
                 metadata: Optional[Dict[str, str]] = None,
                 activate: bool = True,
                 spec: Optional[Callable[[], Module]] = None,
                 input_shape: Optional[Tuple[int, ...]] = None,
                 plan: Optional[dict] = None) -> str:
        """Register ``model`` as ``name/version``; returns the version.

        ``spec`` (optional) is a picklable zero-arg architecture factory
        letting multi-process serving ship this version to workers as a
        state dict instead of a pickled module.  ``input_shape``
        (optional) is the per-input array shape; providing it lets the
        serving layer warm this version up (replica ship + fixed-width
        forward) before the first request arrives.  ``plan`` (optional)
        is a compiled-plan dict from another process/host — it becomes
        the entry's :attr:`~ModelEntry.plan_hint` *before* listeners
        fire, so a subscribed server's prefetch compiles from the
        shipped autotune table instead of re-timing.
        """
        if not name:
            raise ValueError("model name must be non-empty")
        with self._lock:
            versions = self._entries.setdefault(name, {})
            if version is None:
                version = f"v{len(versions) + 1}"
            if version in versions:
                raise ValueError(f"{name}/{version} is already registered")
            entry = ModelEntry(name, version, model, dict(metadata or {}),
                               spec=spec,
                               input_shape=(tuple(input_shape)
                                            if input_shape else None),
                               plan_hint=plan)
            versions[version] = entry
            if activate or name not in self._active:
                self._active[name] = version
        self._notify("register", entry)
        return version

    def activate(self, name: str, version: str) -> None:
        """Make ``version`` the one unversioned requests resolve to."""
        with self._lock:
            entry = self._entry_locked(name, version)
            self._active[name] = version
        self._notify("activate", entry)

    # -- lookup --------------------------------------------------------
    def _entry_locked(self, name: str, version: Optional[str]) -> ModelEntry:
        if name not in self._entries:
            raise KeyError(f"unknown model {name!r}; "
                           f"registered: {sorted(self._entries)}")
        versions = self._entries[name]
        if version is None:
            version = self._active[name]
        if version not in versions:
            raise KeyError(f"unknown version {name}/{version}; "
                           f"registered: {sorted(versions)}")
        return versions[version]

    def entry(self, name: str, version: Optional[str] = None) -> ModelEntry:
        with self._lock:
            return self._entry_locked(name, version)

    def resolve(self, name: str, version: Optional[str] = None) -> ModelKey:
        """Pin ``(name, version-or-active)`` for batch coalescing."""
        return self.entry(name, version).key

    def model(self, name: str, version: Optional[str] = None) -> Module:
        return self.entry(name, version).model

    def folded(self, name: str, version: Optional[str] = None) -> Module:
        """Folded inference copy for ``name/version`` (built at most once)."""
        return self.entry(name, version).folded()

    # -- introspection -------------------------------------------------
    def all_entries(self) -> List[ModelEntry]:
        """Every registered entry, name/version order (prefetch sweep)."""
        with self._lock:
            return [versions[version]
                    for _, versions in sorted(self._entries.items())
                    for version in sorted(versions)]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def versions(self, name: str) -> List[str]:
        with self._lock:
            self._entry_locked(name, None)
            return sorted(self._entries[name])

    def active_version(self, name: str) -> str:
        with self._lock:
            self._entry_locked(name, None)
            return self._active[name]

    def describe(self) -> Dict[str, dict]:
        """JSON-ready listing used by the ``/models`` endpoint.

        Version dicts are the registration metadata plus two additive
        keys: ``"compiled"`` (bool) and ``"plan"`` (compact plan summary
        or ``None``) — the legacy ``/models`` alias stays compatible
        modulo exactly these keys.
        """
        with self._lock:
            return {
                name: {
                    "active": self._active[name],
                    "versions": {
                        version: dict(entry.metadata,
                                      compiled=entry.compiled,
                                      plan=entry.plan_summary())
                        for version, entry in sorted(versions.items())
                    },
                }
                for name, versions in sorted(self._entries.items())
            }
