"""Micro-batching scheduler: coalesce concurrent predicts, keep the bits.

Concurrent single-image requests are individually tiny — the threaded
conv kernels from :mod:`repro.nn.functional` only pay off at real batch
widths.  :class:`MicroBatcher` closes the gap: requests queue up, a
dedicated worker coalesces same-model groups under a
``max_batch_size`` / ``max_delay_ms`` policy, and one forward pass
serves the whole group.

Determinism contract
--------------------
A request's logits are **bit-identical whether it was served solo or
coalesced with any other traffic**.  This cannot be left to chance:
BLAS picks different kernels (and therefore different accumulation
orders) for different GEMM row counts, so the same image generally
yields different low-order bits at batch width 1 vs width 8.  The
batcher therefore runs *every* forward at one fixed compute width —
``max_batch_size`` — padding short groups with zero rows and slicing
the real rows back out.  Per-row GEMM results are independent of row
offset and of the other rows' contents for a fixed shape (enforced by
``tests/serve/test_batcher.py`` across the model zoo), so placement
within the batch cannot change a request's bits either.

Two policy constraints follow:

- ``max_batch_size`` must decompose into equal-length conv row-blocks
  (``batch_blocks`` is shape-only: width < 16, or a multiple of 8), so
  a sample's conv GEMMs have the same shape at every offset;
- the padded forward costs a full-width pass even for a lone request —
  that is the price of bit-stability, and exactly the waste coalescing
  recovers: occupancy (real rows / padded rows) is the headline metric
  of ``benchmarks/bench_serving.py``.  ``pad_to_full=False`` trades the
  contract away for low-load latency.

The worker thread is a daemon and is drained at interpreter shutdown
via ``atexit`` (mirroring the intra-op pool), so servers and long
pytest runs exit cleanly.
"""

from __future__ import annotations

import atexit
import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

import numpy as np

from ..nn.threading import MIN_BLOCK_BATCH, NUM_BLOCKS, batch_blocks
from ..obs import profile as _profile
from ..obs import trace as _trace
from ..obs.metrics import Registry


class QueueFullError(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when the queue is at depth —
    the HTTP front end maps it to ``429 Too Many Requests``."""


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy of one :class:`MicroBatcher`.

    max_batch_size:
        Fixed compute width of every forward pass (see module docstring
        for why it is fixed, and which widths are legal).
    max_delay_ms:
        How long the scheduler holds the *first* request of a group to
        wait for companions.  0 disables coalescing-by-waiting: a group
        is whatever is already queued when the worker gets there.
    max_queue:
        Bound on queued (not yet running) requests; beyond it
        :meth:`~MicroBatcher.submit` raises :class:`QueueFullError`.
    pad_to_full:
        Pad every group to exactly ``max_batch_size`` rows (the
        determinism contract).  Opting out serves groups at natural
        width — faster when traffic is sparse, but solo and coalesced
        serving of the same image may then differ in the low-order bits.
    """

    max_batch_size: int = 32
    max_delay_ms: float = 2.0
    max_queue: int = 128
    pad_to_full: bool = True

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.pad_to_full:
            lengths = {s.stop - s.start
                       for s in batch_blocks(self.max_batch_size)}
            if len(lengths) > 1:
                raise ValueError(
                    f"max_batch_size={self.max_batch_size} does not split "
                    f"into equal conv row-blocks; use a width < "
                    f"{MIN_BLOCK_BATCH} or a multiple of {NUM_BLOCKS} so "
                    f"padded forwards are bit-stable at every row offset")


@dataclass
class BatchOutput:
    """What a request's future resolves to."""

    logits: np.ndarray
    extra: Dict[str, np.ndarray] = field(default_factory=dict)


def _format_key(key: Hashable) -> str:
    if isinstance(key, tuple):
        return "/".join(map(str, key))
    return str(key)


class _Request:
    __slots__ = ("key", "images", "future", "submitted_at", "trace")

    def __init__(self, key: Hashable, images: np.ndarray,
                 trace: Optional[str] = None):
        self.key = key
        self.images = images
        self.future: Future = Future()
        self.submitted_at = time.perf_counter()
        self.trace = trace


class InlineBackend:
    """Default execution backend: run each batch in the scheduler thread.

    The dispatch seam between the scheduler and the compute: a backend
    exposes ``submit(key, batch) -> Future[logits]`` plus a
    ``max_inflight`` bound on concurrently dispatched batches.  Inline
    execution resolves the future synchronously (``max_inflight=1``), so
    single-process serving behaves exactly as before the seam existed;
    :class:`repro.serve.multiproc.MultiprocBackend` implements the same
    interface over persistent worker processes to run several batches
    at once.
    """

    #: One batch in flight: the scheduler thread *is* the compute.
    max_inflight = 1

    def __init__(self, infer_fn: Callable[[Hashable, np.ndarray], np.ndarray]):
        self.infer_fn = infer_fn

    def submit(self, key: Hashable, batch: np.ndarray,
               traces: tuple = ()) -> Future:
        future: Future = Future()
        try:
            future.set_result(np.asarray(self.infer_fn(key, batch)))
        except BaseException as exc:    # noqa: BLE001 — relayed to callers
            future.set_exception(exc)
        return future

    def stats(self) -> dict:
        return {"kind": "inline", "workers": 1}

    def close(self) -> None:
        pass


#: Live batchers, closed at interpreter shutdown so worker threads drain.
_LIVE: "weakref.WeakSet[MicroBatcher]" = weakref.WeakSet()


def _close_live_batchers() -> None:
    for batcher in list(_LIVE):
        batcher.close()


atexit.register(_close_live_batchers)


class MicroBatcher:
    """Coalesces submitted requests into fixed-width inference batches.

    Parameters
    ----------
    infer_fn:
        ``infer_fn(key, images) -> logits`` — one forward pass over an
        already-padded ``(B, C, H, W)`` batch for the model pinned by
        ``key``.  Must be deterministic.
    policy:
        The :class:`BatchPolicy`.
    post_batch:
        Optional ``post_batch(key, images, logits) -> {name: array}``
        hook run once per batch over the *real* (un-padded) rows — the
        serving layer uses it for online STRIP screening.  Returned
        arrays are sliced per request into :attr:`BatchOutput.extra`.
    backend:
        Execution backend (``submit(key, batch) -> Future`` +
        ``max_inflight``).  Defaults to :class:`InlineBackend` over
        ``infer_fn``; pass a
        :class:`~repro.serve.multiproc.MultiprocBackend` to run up to
        ``max_inflight`` fixed-width batches concurrently on worker
        processes.
    """

    def __init__(self,
                 infer_fn: Optional[Callable[[Hashable, np.ndarray],
                                             np.ndarray]] = None,
                 policy: BatchPolicy = BatchPolicy(),
                 post_batch: Optional[Callable] = None,
                 name: str = "repro-serve-batcher",
                 backend=None):
        if backend is None:
            if infer_fn is None:
                raise ValueError("MicroBatcher needs an infer_fn or a backend")
            backend = InlineBackend(infer_fn)
        self.infer_fn = infer_fn
        self.backend = backend
        self.policy = policy
        self.post_batch = post_batch
        self._cond = threading.Condition()
        self._queue: "deque[_Request]" = deque()
        self._closed = False
        # Scheduler counters live in a typed registry (thread-safe on
        # their own); ``_inflight`` stays a plain int because the
        # dispatch loop *waits* on it under ``_cond`` — it is flow
        # control, not just a metric.
        self.registry = Registry()
        self._requests = self.registry.counter("requests")
        self._rejected = self.registry.counter("rejected")
        self._errors = self.registry.counter("errors")
        self._batches = self.registry.counter("batches")
        self._real_rows = self.registry.counter("real_rows")
        self._padded_rows = self.registry.counter("padded_rows")
        self._latency_hist = self.registry.histogram("request_latency_s")
        self._inflight = 0
        self._per_key_requests: Dict[Hashable, int] = {}
        self._latencies: "deque[float]" = deque(maxlen=4096)
        self._thread = threading.Thread(target=self._worker, name=name,
                                        daemon=True)
        self._thread.start()
        _LIVE.add(self)

    # -- submission ----------------------------------------------------
    def submit(self, key: Hashable, images: np.ndarray,
               trace: Optional[str] = None) -> Future:
        """Enqueue ``images`` (``(C,H,W)`` or ``(k,C,H,W)``) for ``key``.

        ``trace`` tags the queued request with its trace id so the
        queue-wait / coalesce / dispatch spans it produces join the
        caller's trace.

        Returns a future resolving to a :class:`BatchOutput`.  Raises
        :class:`QueueFullError` under backpressure and ``ValueError``
        for malformed or oversized payloads.
        """
        images = np.ascontiguousarray(images, dtype=np.float32)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4:
            raise ValueError(f"expected (C,H,W) or (k,C,H,W) images, "
                             f"got shape {images.shape}")
        if len(images) == 0:
            raise ValueError("empty request")
        if len(images) > self.policy.max_batch_size:
            raise ValueError(
                f"request of {len(images)} images exceeds max_batch_size="
                f"{self.policy.max_batch_size}; split it client-side")
        request = _Request(key, images, trace=trace)
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            if len(self._queue) >= self.policy.max_queue:
                self._rejected.inc()
                raise QueueFullError(
                    f"queue depth {self.policy.max_queue} reached")
            self._queue.append(request)
            self._requests.inc()
            self._per_key_requests[key] = self._per_key_requests.get(key, 0) + 1
            self._cond.notify_all()
        return request.future

    # -- worker --------------------------------------------------------
    def _take_group_locked(self, key: Hashable) -> List[_Request]:
        """Pop queued same-key requests, in FIFO order, up to batch width."""
        group: List[_Request] = []
        total = 0
        kept: List[_Request] = []
        while self._queue:
            request = self._queue.popleft()
            if (request.key == key
                    and total + len(request.images) <= self.policy.max_batch_size):
                group.append(request)
                total += len(request.images)
            else:
                kept.append(request)
        self._queue.extend(kept)
        return group

    def _group_size_locked(self, key: Hashable) -> int:
        total = 0
        for request in self._queue:
            if request.key == key:
                total += len(request.images)
        return total

    def _worker(self) -> None:
        delay = self.policy.max_delay_ms / 1000.0
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return          # closed and drained
                # Bound dispatched-but-unfinished batches to what the
                # backend can actually run: without this the scheduler
                # would drain the (bounded) request queue into an
                # unbounded pile of pending batches and 429 backpressure
                # would never fire.  Draining on close still dispatches
                # the remaining queue — completions wake us up.
                # Re-read every pass: a supervised backend shrinks
                # max_inflight when workers are ejected and restores it
                # on re-promotion.
                while self._inflight >= max(
                        1, getattr(self.backend, "max_inflight", 1)):
                    self._cond.wait()
                head = self._queue[0]
                deadline = head.submitted_at + delay
                # Hold the head request open for companions until the
                # batch is full, the delay elapses, or we are draining.
                while not self._closed:
                    if self._group_size_locked(head.key) >= self.policy.max_batch_size:
                        break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                group = self._take_group_locked(head.key)
            self._dispatch_group(head.key, group)

    def _dispatch_group(self, key: Hashable, group: List[_Request]) -> None:
        """Pad a group to compute width and hand it to the backend.

        The backend future's done-callback finishes the group: with the
        inline backend that happens synchronously right here (the
        pre-seam behaviour, bit for bit); with a process backend it runs
        in the backend's collector thread while this scheduler thread
        coalesces the next group.
        """
        dispatched_at = time.perf_counter()
        if _trace.tracing_enabled():
            # Queue-wait span per request (submission → group take), and
            # one coalesce span for the group under the head's trace.
            for request in group:
                if request.trace is not None:
                    _trace.record_span(
                        "queue.wait", request.trace,
                        dispatched_at - request.submitted_at,
                        start_s=request.submitted_at)
            head = group[0]
            if head.trace is not None:
                _trace.record_span(
                    "batch.coalesce", head.trace,
                    dispatched_at - head.submitted_at,
                    start_s=head.submitted_at,
                    tags={"key": _format_key(key), "rows": len(group)})
        _prof = _profile.ACTIVE
        prof_token = (_prof.start("serve.dispatch")
                      if _prof is not None else None)
        images = np.concatenate([request.images for request in group])
        real = len(images)
        width = self.policy.max_batch_size if self.policy.pad_to_full else real
        batch = images
        if width > real:
            pad = np.zeros((width - real,) + images.shape[1:],
                           dtype=images.dtype)
            batch = np.concatenate([images, pad])
        with self._cond:
            self._inflight += 1
        traces = tuple(request.trace for request in group
                       if request.trace is not None)
        try:
            batch_future = self.backend.submit(key, batch, traces=traces)
        except BaseException as exc:    # noqa: BLE001 — relayed to callers
            self._fail_group(group, exc)
            if _prof is not None:
                _prof.stop(prof_token)
            return
        if _prof is not None:
            _prof.stop(prof_token)
        batch_future.add_done_callback(
            lambda f: self._finish_group(key, group, images, real, width, f,
                                         dispatched_at))

    def _fail_group(self, group: List[_Request], exc: BaseException) -> None:
        self._errors.inc(len(group))
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()
        for request in group:
            if not request.future.set_running_or_notify_cancel():
                continue
            request.future.set_exception(exc)

    def _finish_group(self, key: Hashable, group: List[_Request],
                      images: np.ndarray, real: int, width: int,
                      batch_future: Future,
                      dispatched_at: float) -> None:
        try:
            logits = np.asarray(batch_future.result())[:real]
            extra: Dict[str, np.ndarray] = {}
            if self.post_batch is not None:
                extra = dict(self.post_batch(key, images, logits) or {})
        except BaseException as exc:    # noqa: BLE001 — relayed to callers
            self._fail_group(group, exc)
            return
        now = time.perf_counter()
        self._batches.inc()
        self._real_rows.inc(real)
        self._padded_rows.inc(width - real)
        if _trace.tracing_enabled():
            head = group[0]
            if head.trace is not None:
                _trace.record_span(
                    "batch.dispatch", head.trace, now - dispatched_at,
                    start_s=dispatched_at,
                    tags={"key": _format_key(key), "real": real,
                          "width": width})
        with self._cond:
            self._inflight -= 1
            for request in group:
                latency = now - request.submitted_at
                self._latencies.append(latency)
                self._latency_hist.observe(latency)
            self._cond.notify_all()
        start = 0
        for request in group:
            stop = start + len(request.images)
            output = BatchOutput(
                logits=logits[start:stop].copy(),
                extra={name: values[start:stop].copy()
                       for name, values in extra.items()})
            start = stop
            if request.future.set_running_or_notify_cancel():
                request.future.set_result(output)

    # -- stats / lifecycle --------------------------------------------
    def stats(self) -> dict:
        """Counters + latency percentiles (seconds) since construction."""
        with self._cond:
            latencies = np.array(self._latencies, dtype=np.float64)
            queued = len(self._queue)
            inflight = self._inflight
            per_key = {_format_key(key): count for key, count in
                       sorted(self._per_key_requests.items())}
        real_rows = self._real_rows.value
        padded_rows = self._padded_rows.value
        batches = self._batches.value
        compute_rows = real_rows + padded_rows
        return {
            "requests": self._requests.value,
            "rejected": self._rejected.value,
            "errors": self._errors.value,
            "batches": batches,
            "queued": queued,
            "inflight": inflight,
            "real_rows": real_rows,
            "padded_rows": padded_rows,
            "occupancy": (real_rows / compute_rows
                          if compute_rows else 1.0),
            "mean_batch_width": (real_rows / batches if batches else 0.0),
            "latency_p50_s": (float(np.quantile(latencies, 0.5))
                              if len(latencies) else 0.0),
            "latency_p95_s": (float(np.quantile(latencies, 0.95))
                              if len(latencies) else 0.0),
            "per_key_requests": per_key,
        }

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting requests, drain the queue, join the worker.

        With an asynchronous backend, dispatched batches may still be in
        flight when the scheduler thread exits; wait for their
        completions too so callers (and atexit) see a fully quiesced
        batcher before the backend itself is torn down.
        """
        deadline = time.perf_counter() + timeout
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout)
        with self._cond:
            while self._inflight > 0:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
